#!/usr/bin/env python3
"""Warehouse-scale placement: co-location as a cluster-efficiency tool.

The paper's pitch is that safely co-locating multiple LC jobs with
batch work is how datacenters reclaim idle machines.  This example
plays a stream of nine service/batch placement requests against three
generations of placement policy and prints the operator's view:
machines used, QoS safety, and batch throughput.

* dedicated  — one job per machine (no co-location, the conservative
  baseline the paper's introduction starts from);
* first-fit  — dense structural packing, blind to QoS;
* clite      — pack only where a CLITE run proves a QoS-safe partition
  exists, opening a fresh machine otherwise.
"""

from repro.cluster import (
    CLITEPlacement,
    Cluster,
    DedicatedPlacement,
    FirstFitPlacement,
    JobRequest,
    utilization_summary,
)
from repro.experiments import format_table
from repro.resources import default_server
from repro.workloads import parsec_catalog, tailbench_catalog

N_NODES = 10


def request_stream(server):
    lc = tailbench_catalog(server)
    bg = parsec_catalog()
    return [
        JobRequest(lc["memcached"], 0.9, name="mc-frontend"),
        JobRequest(lc["img-dnn"], 0.8, name="vision-api"),
        JobRequest(lc["xapian"], 0.7, name="search"),
        JobRequest(lc["masstree"], 0.8, name="kv-store"),
        JobRequest(lc["specjbb"], 0.7, name="middleware"),
        JobRequest(lc["memcached"], 0.4, name="mc-sessions"),
        JobRequest(bg["streamcluster"], name="analytics"),
        JobRequest(bg["blackscholes"], name="pricing-batch"),
        JobRequest(bg["canneal"], name="place-route"),
    ]


def main() -> None:
    server = default_server()
    policies = (
        DedicatedPlacement(),
        FirstFitPlacement(max_jobs_per_node=4),
        CLITEPlacement(max_jobs_per_node=4),
    )

    rows = []
    placements = {}
    for policy in policies:
        cluster = Cluster(n_nodes=N_NODES, spec=server)
        outcome = policy.place(cluster, request_stream(server), seed=0)
        summary = utilization_summary(outcome, N_NODES)
        rows.append(
            [
                policy.name,
                summary["machines_used"],
                "yes" if summary["all_qos_met"] else "NO",
                summary["mean_bg_performance"],
                summary["rejected"],
            ]
        )
        placements[policy.name] = outcome.placements

    print(f"Placing 9 requests on a {N_NODES}-node cluster:\n")
    print(
        format_table(
            ["policy", "machines", "all QoS met", "mean BG perf", "rejected"],
            rows,
        )
    )

    print("\nCLITE placement map (request -> node):")
    by_node = {}
    for name, node in sorted(placements["clite"].items(), key=lambda kv: kv[1]):
        by_node.setdefault(node, []).append(name)
    for node, names in sorted(by_node.items()):
        print(f"  node {node}: {', '.join(names)}")

    print(
        "\nReading: dedicated wastes the cluster to stay safe; first-fit"
        "\npacks densely but may break QoS; CLITE packs as densely as a"
        "\nproven-safe partition allows."
    )


if __name__ == "__main__":
    main()
