#!/usr/bin/env python3
"""Dynamic load adaptation — the paper's Fig. 16 scenario.

img-dnn and masstree run at a fixed 10% load while memcached's load
steps 10% -> 20% -> 30% over (simulated) time, with fluidanimate as the
batch job.  CLITE converges, the monitor notices each load step,
re-optimization kicks in, and the partition shifts: memcached gains
resources, fluidanimate gives some back.
"""

from repro import CLITEConfig, LoadSchedule
from repro.experiments import MixSpec, run_dynamic
from repro.resources import default_server


def main() -> None:
    ramp = LoadSchedule.steps([(0.0, 0.10), (240.0, 0.20), (480.0, 0.30)])
    mix = MixSpec.of(
        lc=[("img-dnn", 0.10), ("masstree", 0.10), ("memcached", ramp)],
        bg=["fluidanimate"],
    )
    print(f"Scenario: {mix.label()}; memcached load steps 10% -> 20% -> 30%\n")

    trace = run_dynamic(
        mix,
        total_time_s=720.0,
        engine_config=CLITEConfig(seed=0, max_iterations=30, refine_budget=10),
        seed=0,
    )

    print(f"Re-optimizations triggered at t = "
          f"{', '.join(f'{t:.0f}s' for t in trace.reinvocations) or 'never'}\n")

    server = default_server()
    memcached_index = 2  # order in the mix above
    print(f"{'t (s)':>7}  {'mc load':>7}  {'mc cores':>8}  "
          f"{'mc membw':>8}  {'FA perf':>7}  phase")
    for event in trace.events[:: max(1, len(trace.events) // 40)]:
        obs = event.observation
        cores = obs.config.get(memcached_index, server.resource_names.index("cores"))
        membw = obs.config.get(memcached_index, server.resource_names.index("membw"))
        print(
            f"{event.time_s:7.0f}  "
            f"{obs.job('memcached').load_fraction:7.0%}  "
            f"{cores:8d}  {membw:8d}  "
            f"{obs.job('fluidanimate').throughput_norm:7.1%}  "
            f"{event.phase}"
        )

    final = trace.events[-1].observation
    print(f"\nFinal state: all QoS met = {final.all_qos_met}, "
          f"fluidanimate at {final.job('fluidanimate').throughput_norm:.1%} "
          "of isolation")


if __name__ == "__main__":
    main()
