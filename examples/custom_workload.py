#!/usr/bin/env python3
"""Bring your own workload and server.

The library is not limited to the paper's Tailbench/PARSEC catalogs:
define a latency-critical service and a batch job from their resource
sensitivities, calibrate the LC job's QoS target from its own
QPS-vs-latency knee (the Fig. 6 methodology), and let CLITE partition a
custom server for them.
"""

from repro import CLITEEngine, CLITEConfig, Job, Node
from repro.resources import CORES, LLC_WAYS, MEMORY_BANDWIDTH, Resource, ServerSpec
from repro.workloads import (
    BGWorkload,
    LCWorkload,
    ResourceProfile,
    SensitivityCurve,
    calibrate,
    sweep_load,
)


def main() -> None:
    # A 16-core server with a 12-way LLC and 8 bandwidth slices.
    server = ServerSpec(
        resources=(
            Resource(CORES, 16, "core affinity", "taskset"),
            Resource(LLC_WAYS, 12, "way partitioning", "Intel CAT"),
            Resource(MEMORY_BANDWIDTH, 8, "bandwidth limiting", "Intel MBA"),
        ),
        description="custom 16-core box",
    )

    # A cache-hungry RPC service: a request is ~35% serialized on its
    # dispatcher thread, and it falls off a cliff without LLC ways.
    rpc = LCWorkload(
        name="rpc-service",
        description="cache-hungry RPC frontend",
        profile=ResourceProfile(
            {
                LLC_WAYS: SensitivityCurve(weight=1.4, shape=2.5, floor=0.15),
                MEMORY_BANDWIDTH: SensitivityCurve(weight=0.5, shape=4.0, floor=0.3),
            }
        ),
        base_service_rate=2500.0,
        serial_fraction=0.35,
    )

    # A bandwidth-streaming analytics job.
    analytics = BGWorkload(
        name="analytics",
        description="columnar scan batch job",
        profile=ResourceProfile(
            {
                MEMORY_BANDWIDTH: SensitivityCurve(weight=1.2, shape=1.5, floor=0.2),
                LLC_WAYS: SensitivityCurve(weight=0.3, shape=5.0, floor=0.4),
            }
        ),
        core_curve=SensitivityCurve(weight=1.0, shape=1.0, floor=0.0),
    )

    # Calibrate the service in isolation: sweep QPS, find the knee.
    sweep = sweep_load(rpc, server)
    print("QPS-vs-p95 sweep (isolated, every 10th point):")
    for qps, p95 in sweep.rows()[::10]:
        marker = "  <- knee" if qps == sweep.knee_qps else ""
        print(f"  {qps:9.0f} qps  ->  {p95:7.2f} ms{marker}")
    rpc = calibrate(rpc, server)
    print(f"\nCalibrated: QoS target {rpc.qos_latency_ms:.2f} ms, "
          f"max load {rpc.max_qps:.0f} qps\n")

    # Co-locate at 60% load and optimize the partition.
    node = Node(server, [Job.lc(rpc, 0.6), Job.bg(analytics)])
    result = CLITEEngine(node, CLITEConfig(seed=0)).optimize()

    print(f"CLITE sampled {result.samples_taken} configurations "
          f"(converged: {result.converged}).")
    truth = node.true_performance(result.best_config)
    rpc_obs = truth.job("rpc-service")
    print(f"rpc-service: p95 {rpc_obs.p95_ms:.2f} ms vs target "
          f"{rpc_obs.qos_target_ms:.2f} ms -> QoS met: {rpc_obs.qos_met}")
    print(f"analytics:   {truth.job('analytics').throughput_norm:.1%} "
          "of isolated throughput")
    print("\nPartition (units of cores / LLC ways / membw):")
    for j, name in enumerate(node.job_names()):
        print(f"  {name:12s} {result.best_config.job_allocation(j)}")


if __name__ == "__main__":
    main()
