#!/usr/bin/env python3
"""A day in the life of the warehouse service.

`repro.cluster` answers one placement question; `repro.warehouse` runs
the datacenter over simulated time.  This example drives a 2-shard,
60-node federation through a synthesized churn scenario — jobs arrive,
ramp their load through phases, and depart — and prints the operator's
rolling view: utilization, QoS health, and what migration cost.

Everything is deterministic: run it twice and the timelines match byte
for byte, concurrent shard probing included.
"""

from repro.telemetry import SimulatedClock, Telemetry
from repro.warehouse import (
    MigrationModel,
    ScenarioConfig,
    WarehouseFederation,
    load_into,
    synthesize,
)

REPORT_EVERY_S = 120.0


def main() -> None:
    clock = SimulatedClock()
    federation = WarehouseFederation(
        n_shards=2,
        nodes_per_shard=30,
        routing="least-loaded",
        concurrent_probes=True,
        recheck_period_s=60.0,
        migration=MigrationModel(cost_s=5.0),
        clock=clock,
        telemetry=Telemetry.enabled(clock=clock),
        seed=0,
    )

    config = ScenarioConfig(n_jobs=40, duration_s=720.0, lc_fraction=0.5, seed=11)
    with federation:
        n_events = load_into(federation, synthesize(config))
        print(
            f"2 shards x 30 nodes, {n_events} scheduled arrivals/departures, "
            f"{config.duration_s:.0f}s of simulated time:\n"
        )

        print("   t(s)  jobs  util   qos-met  migrations  cost(s)")
        t = 0.0
        while t < config.duration_s:
            t += REPORT_EVERY_S
            federation.run_until(t)
            status = federation.status()
            print(
                f"  {status['time_s']:5.0f}  {status['jobs_running']:4d}"
                f"  {status['utilization']:.2f}"
                f"  {status['qos_met_fraction']:7.2f}"
                f"  {status['migrations']:10d}"
                f"  {status['migration_cost_s']:7.1f}"
            )
        federation.run_to_completion()
        final = federation.status()

    admitted = sum(shard["admitted"] for shard in final["shards"])
    dropped = sum(shard["dropped"] for shard in final["shards"])
    print(
        f"\nFinal: {final['arrivals']} arrivals, {admitted} admitted,"
        f" {final['rejections']} rejected, {final['departures']} departed,"
        f"\n       {final['migrations']} migrations charged"
        f" {final['migration_cost_s']:.1f} simulated seconds,"
        f" {dropped} dropped."
    )
    for index, shard in enumerate(final["shards"]):
        print(
            f"  shard {index}: {shard['admitted']} admitted,"
            f" {shard['rechecks']} re-checks,"
            f" {shard['recheck_failures']} caught a ramp"
        )

    print(
        "\nReading: admission keeps every node provably QoS-safe at its"
        "\ncurrent load; re-checks catch jobs that ramp past what their"
        "\nnode can absorb and migrate the cheapest tenant away.  The"
        "\nsame run serves HTTP: repro-warehouse run --serve"
    )


if __name__ == "__main__":
    main()
