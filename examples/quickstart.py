#!/usr/bin/env python3
"""Quickstart: co-locate two latency-critical jobs with a batch job.

Builds the paper's Table 2 server, runs memcached (50% load) and
img-dnn (30% load) next to the bandwidth-hungry streamcluster batch
job, lets CLITE find a partition, and prints what it chose and how
every job fared.
"""

from repro import CLITEPolicy, MixSpec, NodeBudget, run_trial
from repro.experiments import allocation_snapshot
from repro.resources import default_server


def main() -> None:
    mix = MixSpec.of(
        lc=[("memcached", 0.5), ("img-dnn", 0.3)],
        bg=["streamcluster"],
    )
    print(f"Co-locating: {mix.label()}")

    trial = run_trial(mix, CLITEPolicy(seed=0), seed=0, budget=NodeBudget(80))

    print(f"\nCLITE sampled {trial.samples} configurations.")
    print(f"All QoS targets met: {trial.qos_met}")

    server = default_server()
    node = mix.build_node(server=server, seed=0)
    snapshot = allocation_snapshot(trial.result, server, node.job_names())
    print("\nChosen partition (share of each resource):")
    for job in snapshot.job_names:
        shares = "  ".join(
            f"{res}={snapshot.share(job, res):5.0%}"
            for res in snapshot.resource_names
        )
        print(f"  {job:14s} {shares}")

    print("\nGround-truth outcome of that partition:")
    for name, perf in trial.lc_performance.items():
        print(f"  {name:14s} LC latency at {perf:5.1%} of its isolated latency")
    for name, perf in trial.bg_performance.items():
        print(f"  {name:14s} BG throughput at {perf:5.1%} of isolation")


if __name__ == "__main__":
    main()
