#!/usr/bin/env python3
"""Head-to-head policy comparison on one co-location mix.

Runs every policy of the paper's Sec. 5 lineup — CLITE, PARTIES,
Heracles, RAND+, GENETIC, and the offline ORACLE — on the same
three-LC-plus-one-BG mix and prints a summary table: whether each
policy met every QoS target, the background job's normalized
throughput under its chosen partition, and how many configurations it
had to sample to get there.
"""

from repro import NodeBudget
from repro.experiments import MixSpec, STANDARD_POLICIES, format_table, run_trial


def main() -> None:
    mix = MixSpec.of(
        lc=[("img-dnn", 0.5), ("memcached", 0.5), ("masstree", 0.3)],
        bg=["streamcluster"],
    )
    budget = NodeBudget(90)
    print(f"Mix: {mix.label()}   (budget: {budget.max_samples} windows)\n")

    rows = []
    for name, factory in STANDARD_POLICIES.items():
        trial = run_trial(mix, factory(0), seed=0, budget=budget)
        bg = trial.mean_bg_performance if trial.qos_met else None
        rows.append(
            [
                name,
                "yes" if trial.qos_met else "NO",
                bg,
                trial.samples,
                trial.evaluations,
            ]
        )

    print(
        format_table(
            ["policy", "QoS met", "BG perf (norm)", "online samples", "total evals"],
            rows,
        )
    )
    print(
        "\nBG perf is streamcluster's throughput relative to running alone;"
        "\n'X' marks a policy that could not meet every LC job's QoS."
    )


if __name__ == "__main__":
    main()
