"""Fig. 16: adaptation to dynamic load changes (memcached 10% -> 30%)."""

from common import mean, save_report
from repro.core import CLITEConfig
from repro.experiments import MixSpec, format_table, run_dynamic
from repro.workloads import LoadSchedule

RAMP = LoadSchedule.steps([(0.0, 0.10), (200.0, 0.20), (400.0, 0.30)])
MIX = MixSpec.of(
    lc=[("img-dnn", 0.10), ("masstree", 0.10), ("memcached", RAMP)],
    bg=["fluidanimate"],
)
TOTAL_TIME_S = 620.0
ENGINE = CLITEConfig(seed=0, max_iterations=30, refine_budget=10, confirm_top=2)


def stable_bg(trace, lo: float, hi: float):
    """Mean fluidanimate perf over monitor windows in a time range."""
    values = [
        e.observation.job("fluidanimate").throughput_norm
        for e in trace.events
        if e.phase == "monitor" and lo <= e.time_s < hi
    ]
    return mean(values) if values else None


def test_fig16_dynamic_adaptation(benchmark):
    trace = run_dynamic(MIX, TOTAL_TIME_S, engine_config=ENGINE, seed=0)

    phases = [
        ("10% load", 0.0, 200.0),
        ("20% load", 200.0, 400.0),
        ("30% load", 400.0, TOTAL_TIME_S),
    ]
    rows = [
        [label, stable_bg(trace, lo, hi)] for label, lo, hi in phases
    ]
    report = format_table(["memcached load phase", "stable fluidanimate perf"], rows)
    report += "\n\nre-optimizations at t = " + (
        ", ".join(f"{t:.0f}s" for t in trace.reinvocations) or "none"
    )
    qos_ok = [
        e.observation.all_qos_met
        for e in trace.events
        if e.phase == "monitor"
    ]
    report += f"\nQoS met in {sum(qos_ok)}/{len(qos_ok)} monitoring windows"
    save_report("fig16_dynamic", report)

    small = MixSpec.of(lc=[("memcached", RAMP)], bg=["fluidanimate"])
    benchmark.pedantic(
        run_dynamic,
        args=(small, 120.0),
        kwargs={"engine_config": ENGINE, "seed": 1},
        rounds=1,
        iterations=1,
    )

    # Shape 1: each load step triggers a re-optimization shortly after
    # it happens.
    assert len(trace.reinvocations) >= 2
    assert any(200 <= t <= 280 for t in trace.reinvocations)
    assert any(400 <= t <= 480 for t in trace.reinvocations)

    # Shape 2: the stabilized BG performance decreases as memcached's
    # load (and thus its resource share) grows.
    values = [v for _, v in ((r[0], r[1]) for r in rows)]
    assert all(v is not None for v in values)
    assert values[0] > values[2]

    # Shape 3: the monitored partitions keep every LC job inside QoS
    # almost always (re-exploration windows excluded).
    assert sum(qos_ok) / len(qos_ok) > 0.9
