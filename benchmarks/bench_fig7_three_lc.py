"""Fig. 7: maximum memcached load when co-located with masstree and
img-dnn, per policy (no BG job)."""

import numpy as np

from common import BUDGET, fast_clite, heracles, oracle, parties, save_report
from repro.experiments import (
    MixSpec,
    format_heatmap,
    max_load_grid,
    run_trial,
)

ROW_LOADS = (0.1, 0.5, 0.9)  # img-dnn
COL_LOADS = (0.1, 0.5, 0.9)  # masstree
TARGET_LOADS = (0.2, 0.4, 0.6, 0.8, 1.0)  # memcached

BASE_MIX = MixSpec.of(
    lc=[("img-dnn", 0.1), ("masstree", 0.1), ("memcached", 0.1)]
)

POLICIES = (
    ("Heracles", heracles),
    ("PARTIES", parties),
    ("CLITE", fast_clite),
    ("ORACLE", oracle),
)


def compute_grids():
    grids = {}
    for name, factory in POLICIES:
        grids[name] = max_load_grid(
            BASE_MIX,
            row_job="img-dnn",
            col_job="masstree",
            target_job="memcached",
            policy_factory=factory,
            policy_name=name,
            row_loads=ROW_LOADS,
            col_loads=COL_LOADS,
            target_loads=TARGET_LOADS,
            seed=0,
            budget=BUDGET,
        )
    return grids


def grid_total(grid) -> float:
    return sum(v or 0.0 for row in grid.cells for v in row)


def test_fig7_three_lc_colocations(benchmark):
    grids = compute_grids()
    report = "\n\n".join(
        format_heatmap(grids[name]) for name, _ in POLICIES
    )
    totals = {
        name: grid_total(grids[name]) for name, _ in POLICIES
    }
    report += "\n\ntotal supported memcached load (sum over cells): " + ", ".join(
        f"{k}={v:.1f}" for k, v in totals.items()
    )
    save_report("fig7_three_lc", report)

    # Benchmark one representative cell trial.
    mix = BASE_MIX.with_lc_load("img-dnn", 0.5).with_lc_load("masstree", 0.5)
    benchmark.pedantic(
        run_trial,
        args=(mix, parties(0)),
        kwargs={"seed": 0, "budget": BUDGET},
        rounds=1,
        iterations=1,
    )

    # Shape 1: the paper's ordering of total co-location capacity.
    assert totals["ORACLE"] >= totals["CLITE"] >= totals["PARTIES"]
    assert totals["CLITE"] > totals["Heracles"]

    # Shape 2: CLITE is close to ORACLE (Fig. 7's "close to ORACLE").
    assert totals["CLITE"] >= 0.7 * totals["ORACLE"]

    # Shape 3: capacity shrinks (weakly) as the co-runner loads grow.
    oracle_grid = np.array(
        [[v or 0.0 for v in row] for row in grids["ORACLE"].cells]
    )
    assert oracle_grid[0, 0] == oracle_grid.max()
    assert oracle_grid[-1, -1] == oracle_grid.min()
