"""Ablations of CLITE's design choices (DESIGN.md's call-outs).

Each row disables or swaps one Sec. 4 mechanism: the Matérn-5/2 kernel,
the EI acquisition (vs PI and UCB), the informed bootstrap, dropout-copy,
and constrained execution.  The bench prints each variant's outcome and
asserts the full design is never dominated by the ablated ones on this
representative mix.
"""

from dataclasses import replace

from common import mean, save_report
from repro.core import (
    CLITEConfig,
    ProbabilityOfImprovement,
    RBF,
    UpperConfidenceBound,
)
from repro.experiments import MixSpec, format_table, run_trial
from repro.schedulers import CLITEPolicy
from repro.server import NodeBudget

MIX = MixSpec.of(
    lc=[("img-dnn", 0.5), ("memcached", 0.5), ("masstree", 0.3)],
    bg=["streamcluster"],
)
BUDGET = NodeBudget(90)
BASE = CLITEConfig(seed=0)

ABLATIONS = {
    "full CLITE": BASE,
    "RBF kernel": replace(BASE, kernel=RBF()),
    "PI acquisition": replace(BASE, acquisition=ProbabilityOfImprovement()),
    "UCB acquisition": replace(BASE, acquisition=UpperConfidenceBound()),
    "random bootstrap": replace(BASE, informed_bootstrap=False),
    "no dropout": replace(BASE, dropout_enabled=False),
    "no constrained execution": replace(BASE, constrained_execution=False),
    "no refinement": replace(BASE, refine_budget=0),
}

SEEDS = (0, 1, 2)


def compute():
    results = {}
    for name, config in ABLATIONS.items():
        perfs = []
        qos = 0
        for seed in SEEDS:
            trial = run_trial(
                MIX,
                CLITEPolicy(config=replace(config, seed=seed)),
                seed=seed,
                budget=BUDGET,
            )
            qos += trial.qos_met
            perfs.append(trial.mean_bg_performance if trial.qos_met else 0.0)
        results[name] = (mean(perfs), qos / len(SEEDS))
    return results


def test_design_ablations(benchmark):
    results = compute()
    rows = [
        [name, perf, rate] for name, (perf, rate) in results.items()
    ]
    report = format_table(["variant", "mean BG perf", "QoS rate"], rows)
    save_report("ablations", report)

    benchmark.pedantic(
        run_trial,
        args=(MIX, CLITEPolicy(seed=9)),
        kwargs={"seed": 9, "budget": BUDGET},
        rounds=1,
        iterations=1,
    )

    full_perf, full_rate = results["full CLITE"]
    # Shape 1: the full design always meets QoS on this mix.
    assert full_rate == 1.0
    # Shape 2: no ablation clearly dominates the full design (allowing
    # noise-level wiggle); at least one mechanism matters materially.
    for name, (perf, rate) in results.items():
        assert full_perf >= perf - 0.06, name
    assert any(
        full_perf > perf + 0.03 or rate < 1.0
        for name, (perf, rate) in results.items()
        if name != "full CLITE"
    )
