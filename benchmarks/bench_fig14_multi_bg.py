"""Fig. 14: multiple BG jobs co-located with multiple LC jobs."""

from common import BUDGET, full_clite, genetic, mean, oracle, parties, rand_plus, save_report
from repro.experiments import MixSpec, format_table, run_trial

#: Two LC jobs with three BG jobs each (Table 3 acronyms: BS/CN/FA/FM/SC/SW).
MIXES = {
    "BS+FA+SC": MixSpec.of(
        lc=[("memcached", 0.3), ("xapian", 0.3)],
        bg=["blackscholes", "fluidanimate", "streamcluster"],
    ),
    "CN+FM+SW": MixSpec.of(
        lc=[("img-dnn", 0.3), ("specjbb", 0.3)],
        bg=["canneal", "freqmine", "swaptions"],
    ),
}

POLICIES = (
    ("CLITE", full_clite),
    ("PARTIES", parties),
    ("RAND+", rand_plus),
    ("GENETIC", genetic),
)


def compute():
    results = {}
    for mix_name, mix in MIXES.items():
        oracle_trial = run_trial(mix, oracle(0), seed=0, budget=BUDGET)
        baseline = oracle_trial.mean_bg_performance
        for name, factory in POLICIES:
            trial = run_trial(mix, factory(0), seed=0, budget=BUDGET)
            results[(mix_name, name)] = (
                trial.mean_bg_performance / baseline if trial.qos_met else 0.0
            )
    return results


def test_fig14_multi_bg(benchmark):
    results = compute()
    rows = [
        [mix_name] + [results[(mix_name, p)] for p, _ in POLICIES]
        for mix_name in MIXES
    ]
    averages = {
        p: mean(results[(m, p)] for m in MIXES) for p, _ in POLICIES
    }
    report = format_table(["BG mix"] + [p for p, _ in POLICIES], rows)
    report += "\n\naverage fraction of ORACLE: " + ", ".join(
        f"{k}={v:.2f}" for k, v in averages.items()
    )
    save_report("fig14_multi_bg", report)

    mix = MIXES["BS+FA+SC"]
    benchmark.pedantic(
        run_trial,
        args=(mix, parties(0)),
        kwargs={"seed": 0, "budget": BUDGET},
        rounds=1,
        iterations=1,
    )

    # Shape: with multiple BG jobs CLITE's multi-BG-aware objective
    # (the Eq. 3 geometric mean over all BG jobs) wins; the paper
    # reports ~88% of ORACLE for CLITE vs < 75% for the next best.
    assert averages["CLITE"] == max(averages.values())
    assert averages["CLITE"] > 0.7
    others = [v for k, v in averages.items() if k != "CLITE"]
    assert averages["CLITE"] > max(others)
