"""Shared helpers for the per-figure benchmark harness.

Every bench regenerates one of the paper's tables or figures: it runs
the experiment (scaled to finish in minutes, not the testbed-days the
originals took), prints the same rows/series the paper reports, saves
them under ``benchmarks/results/``, and asserts the figure's *shape* —
who wins, roughly by how much, where the crossovers fall.
"""

from __future__ import annotations

from pathlib import Path

from repro.telemetry import WallClock

from repro.core import CLITEConfig
from repro.schedulers import (
    CLITEPolicy,
    GeneticPolicy,
    HeraclesPolicy,
    OraclePolicy,
    PartiesPolicy,
    RandomPlusPolicy,
)
from repro.server import NodeBudget

RESULTS_DIR = Path(__file__).parent / "results"

#: Shared online sampling budget for grid benches.
BUDGET = NodeBudget(80)

#: The benches' one wall-clock boundary.  Timing reads go through the
#: injectable :class:`repro.telemetry.clock.Clock` interface rather
#: than ad-hoc ``time.perf_counter()`` calls, matching the repro-lint
#: RPL104 discipline the library itself follows.
WALL_CLOCK = WallClock()


def save_report(name: str, text: str) -> None:
    """Print a bench's report and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}")


def fast_clite(seed):
    """CLITE tuned for grid sweeps: fewer iterations, same mechanisms."""
    return CLITEPolicy(
        config=CLITEConfig(
            seed=seed,
            max_iterations=30,
            post_qos_iterations=12,
            refine_budget=12,
            confirm_top=2,
            n_restarts=5,
        )
    )


def full_clite(seed):
    """CLITE at its default settings (headline comparisons)."""
    return CLITEPolicy(seed=seed)


def parties(seed):
    return PartiesPolicy()


def heracles(seed):
    return HeraclesPolicy()


def rand_plus(seed):
    return RandomPlusPolicy(seed=seed)


def genetic(seed):
    return GeneticPolicy(seed=seed)


def oracle(seed):
    return OraclePolicy(max_enumeration=60_000, climb_seeds=10)


def mean(values) -> float:
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)
