"""Tracked perf benchmark for the BO hot path.

Unlike the figure benches (which reproduce the paper's *results*), this
bench tracks the *speed* of the reproduction itself: how many CLITE
iterations per second the engine sustains end to end, how fast the
acquisition optimizer proposes, and GP fit/predict microbenchmarks.

A full run writes ``BENCH_perf.json`` at the repo root with three
sections:

* ``baseline`` — the pre-optimization numbers, frozen in this file as
  constants (measured on the seed revision with the same methodology);
* ``current``  — this run's numbers;
* ``speedup``  — current / baseline rates, so regressions in later PRs
  show up as a ratio drifting down rather than an absolute number that
  depends on the machine of the day.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf.py          # full, writes JSON
    PYTHONPATH=src python benchmarks/bench_perf.py --quick  # CI smoke, no JSON

``--quick`` shrinks every workload so the whole script finishes in a few
seconds and skips the JSON write — it exists to prove the harness runs,
not to produce stable numbers.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.core.engine import CLITEConfig, CLITEEngine
from repro.core.gp import GaussianProcess
from repro.core.optimizer import AcquisitionOptimizer
from repro.experiments import MixSpec
from repro.schedulers import CLITEPolicy
from repro.server import NodeBudget, ObservationStore
from repro.telemetry import Telemetry, WallClock
from repro.warehouse import (
    ScenarioConfig,
    WarehouseFederation,
    WarehouseService,
    load_into,
    synthesize,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: All timing goes through the injectable clock interface (the RPL104
#: boundary) rather than ad-hoc ``time.perf_counter()`` reads.
CLOCK = WallClock()
OUTPUT_PATH = REPO_ROOT / "BENCH_perf.json"

#: The workload every timing section runs against: two LC jobs at
#: moderate load sharing a node with one batch job — the paper's bread
#: and butter co-location, heavy enough that the BO loop dominates.
MIX = MixSpec.of(lc=[("img-dnn", 0.3), ("memcached", 0.3)], bg=["streamcluster"])

#: Pre-optimization rates, measured on the seed revision (commit before
#: this harness landed) with exactly the methodology below on the same
#: container.  Frozen so every future run reports speedup against the
#: same origin.
BASELINE = {
    "end_to_end": {
        "samples": 107,
        "seconds": 9.406007009000064,
        "iterations_per_sec": 11.375709150292774,
    },
    "propose": {
        "proposals": 20,
        "seconds": 2.431524070000023,
        "proposals_per_sec": 8.225293858596189,
    },
    "gp": {
        "fit_per_sec": 2831.448673893597,
        "predict_batch256_per_sec": 310.5317784245153,
        # The seed GP had no add_sample(); incremental conditioning is
        # compared against repeated batch refits of the same stream.
        "incremental_build_seconds": None,
    },
    # The seed had neither a persistent store (every sweep repaid the
    # full physics cost) nor batching (strictly sequential Algorithm 1),
    # so both ratios were definitionally 1.0 before this harness landed.
    "obstore": {"warm_speedup": 1.0},
    "batch": {"k4_speedup_vs_k1": 1.0},
    # The seed had no event-driven service either: events/sec has no
    # baseline rate (None keeps it out of the speedup table), and the
    # warm-store probe ratio was definitionally 1.0 pre-subsystem.
    "warehouse": {"events_per_sec": None, "warm_probe_speedup": 1.0},
    # Before the density-bucket/dirty-set indices every admission and
    # re-check scanned the fleet, so indexed-vs-scan was by definition
    # a wash.
    "warehouse_scale": {"index_speedup": 1.0},
}


def bench_end_to_end(seeds=(0, 1), budget_units=80, enable_telemetry=False):
    """Full CLITEPolicy.partition runs; the headline iterations/sec.

    With ``enable_telemetry`` every run gets a live wall-clock
    :class:`Telemetry` threaded through the engine, so the rate measures
    the *enabled* path — spans, counters, and histogram observes all
    active — instead of the null-object fast path.
    """
    samples = 0
    t0 = CLOCK.now()
    for seed in seeds:
        node = MIX.build_node(seed=seed)
        policy = CLITEPolicy(seed=seed)
        if enable_telemetry:
            policy = policy.instrument(Telemetry.enabled(clock=WallClock()))
        result = policy.partition(node, NodeBudget(budget_units))
        samples += len(result.trace)
    dt = CLOCK.now() - t0
    return {"samples": samples, "seconds": dt, "iterations_per_sec": samples / dt}


def bench_propose(n=20, warmup_iterations=12):
    """AcquisitionOptimizer.propose against a realistically-sized GP."""
    node = MIX.build_node(seed=0)
    engine = CLITEEngine(node, CLITEConfig(seed=0, max_iterations=warmup_iterations))
    result = engine.optimize()
    records = result.samples
    x = np.array([node.space.to_unit_cube(r.config) for r in records])
    y = np.array([r.score for r in records])
    gp = GaussianProcess()
    gp.fit(x, y)
    best = max(records, key=lambda r: r.score)
    sampled = {r.config.flat() for r in records}
    opt = AcquisitionOptimizer(node.space, rng=np.random.default_rng(0))
    t0 = CLOCK.now()
    for _ in range(n):
        opt.propose(gp, best_score=best.score, sampled=sampled, incumbent=best.config)
    dt = CLOCK.now() - t0
    return {"proposals": n, "seconds": dt, "proposals_per_sec": n / dt}


def bench_gp(n_train=60, d=9, n_query=256, reps=30):
    """GP microbenchmarks: batch fit, batch predict, incremental build."""
    rng = np.random.default_rng(0)
    x = rng.random((n_train, d))
    y = rng.random(n_train)
    xq = rng.random((n_query, d))
    gp = GaussianProcess()
    t0 = CLOCK.now()
    for _ in range(reps):
        gp.fit(x, y)
    fit_dt = CLOCK.now() - t0
    t0 = CLOCK.now()
    for _ in range(reps):
        gp.predict(xq)
    pred_dt = CLOCK.now() - t0
    incr_reps = max(reps // 3, 1)
    t0 = CLOCK.now()
    for _ in range(incr_reps):
        g = GaussianProcess()
        g.fit(x[:5], y[:5])
        for i in range(5, n_train):
            g.add_sample(x[i], y[i])
    incr_dt = (CLOCK.now() - t0) / incr_reps
    return {
        "fit_per_sec": reps / fit_dt,
        "predict_batch256_per_sec": reps / pred_dt,
        "incremental_build_seconds": incr_dt,
    }


def bench_obstore(n_configs=300, seed=7):
    """Cold vs warm repeated sweep through a persistent store.

    The cold pass observes ``n_configs`` random partitions against an
    empty store; the warm pass replays the *same* partitions through a
    fresh node and a fresh :class:`ObservationStore` object that reloads
    the file the cold pass wrote — so the speedup measured is the full
    persist-reload path, not in-process memoization.  ``warm_physics``
    must come out 0: a warm store makes repeated sweeps observation-free.
    """
    rng = np.random.default_rng(12345)
    probe = MIX.build_node(seed=seed)
    configs = [probe.space.random(rng) for _ in range(n_configs)]

    def sweep(store):
        node = MIX.build_node(seed=seed, store=store)
        t0 = CLOCK.now()
        for config in configs:
            node.observe(config)
        return CLOCK.now() - t0, node.physics_computations

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "observations.jsonl"
        with ObservationStore(path) as store:
            cold_dt, cold_physics = sweep(store)
            store.flush()
        with ObservationStore(path) as store:
            warm_dt, warm_physics = sweep(store)
    return {
        "configs": n_configs,
        "cold_seconds": cold_dt,
        "warm_seconds": warm_dt,
        "cold_physics": cold_physics,
        "warm_physics": warm_physics,
        "warm_speedup": cold_dt / warm_dt,
    }


def bench_batch(ks=(1, 2, 4, 8), max_samples=60, seed=0):
    """Equal-budget wall-clock across acquisition batch sizes.

    EI termination is disabled (``post_qos_iterations`` effectively
    infinite) so every batch size observes exactly ``max_samples``
    windows; the k > 1 speedup then isolates what batching is for —
    amortizing the SLSQP acquisition maximization, the engine's dominant
    CPU cost, over k observations — instead of rewarding earlier
    termination on an easier trajectory.
    """
    runs = {}
    for k in ks:
        node = MIX.build_node(seed=seed)
        engine = CLITEEngine(
            node,
            CLITEConfig(
                seed=seed,
                max_samples=max_samples,
                max_iterations=10**6,
                post_qos_iterations=10**6,
                batch_k=k,
                parallel_observe=k > 1,
            ),
        )
        t0 = CLOCK.now()
        result = engine.optimize()
        dt = CLOCK.now() - t0
        runs[str(k)] = {
            "seconds": dt,
            "samples": len(result.samples),
            "samples_per_sec": len(result.samples) / dt,
        }
    out = {"max_samples": max_samples, "runs": runs}
    if "1" in runs and "4" in runs:
        out["k4_speedup_vs_k1"] = runs["1"]["seconds"] / runs["4"]["seconds"]
    return out


def bench_warehouse(n_jobs=120, probe_jobs=24, seed=31):
    """Event-driven service throughput plus cold/warm admission probes.

    Part one plays a synthetic scenario against the issue's reference
    topology — 200 nodes split across 2 shards with quick probes and
    periodic QoS re-checks — and reports simulated scheduler events per
    wall second.  The topology is fixed; quick/full modes only scale the
    job count, so the per-event rate stays comparable.

    Part two replays one small arrival stream through full-CLITE
    admission probes twice against the same observation-store file (a
    fresh service and a fresh store object each pass, as in
    :func:`bench_obstore`), isolating what the shared store buys a
    *service*: recurring job-set probes with the physics already paid.
    """
    events = synthesize(
        ScenarioConfig(n_jobs=n_jobs, duration_s=900.0, seed=seed)
    )
    with WarehouseFederation(
        2, 100, recheck_period_s=120.0, seed=seed
    ) as federation:
        load_into(federation, events)
        horizon = federation.loop.queue.last_time()
        t0 = CLOCK.now()
        # run_until counts everything processed, re-check ticks included.
        processed = federation.run_until(horizon)
        events_dt = CLOCK.now() - t0

    probe_events = synthesize(
        ScenarioConfig(n_jobs=probe_jobs, duration_s=600.0, seed=seed)
    )
    probe_engine = CLITEConfig(
        max_iterations=8, post_qos_iterations=2, refine_budget=3,
        confirm_top=1, n_restarts=2,
    )

    def sweep(store):
        service = WarehouseService(
            16, probe="clite", engine_config=probe_engine, seed=seed,
            store=store,
        )
        load_into(service, probe_events)
        t0 = CLOCK.now()
        service.run_to_completion()
        return CLOCK.now() - t0

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "warehouse-observations.jsonl"
        with ObservationStore(path) as store:
            cold_dt = sweep(store)
            cold_misses = store.stats().misses
            store.flush()
        with ObservationStore(path) as store:
            warm_dt = sweep(store)
            warm_stats = store.stats()
    return {
        "events": processed,
        "seconds": events_dt,
        "events_per_sec": processed / events_dt,
        "probe_cold_seconds": cold_dt,
        "probe_warm_seconds": warm_dt,
        "probe_cold_misses": cold_misses,
        "probe_warm_misses": warm_stats.misses,
        "probe_warm_hits": warm_stats.hits,
        "warm_probe_speedup": cold_dt / warm_dt,
    }


class IndexFreeService(WarehouseService):
    """The pre-index read paths: full-fleet candidate scans for
    admission and the recheck walking every used node — the code
    repro-cost's RPL1001 findings evicted.  Only the two scan-shaped
    readers are restored; commits still maintain the (unused) indices,
    so the comparison isolates exactly what the buckets buy."""

    def _find_target(self, job, t, exclude=frozenset()):
        from repro.warehouse.service import _request_at

        request = _request_at(job, t)
        verified = []
        candidates = {
            node_state.index
            for node_state in self.cluster.nodes
            if 0 < node_state.n_jobs < self.max_jobs_per_node
            and node_state.index not in exclude
            and node_state.can_host(request)
        }
        occupied = sorted(
            candidates,
            key=lambda i: (-self.cluster.nodes[i].n_jobs, i),
        )
        for index in occupied[: self.max_probe_nodes]:
            node_state = self.cluster.nodes[index]
            tentative = self._refreshed(node_state, t).with_request(request)
            if not tentative.lc_requests:
                return node_state.index, tentative, tuple(verified)
            if self._check_node(tentative, verified):
                return node_state.index, tentative, tuple(verified)
        for node_state in self.cluster.nodes:
            if (
                node_state.n_jobs == 0
                and node_state.index not in exclude
                and node_state.can_host(request)
            ):
                return (
                    node_state.index,
                    node_state.with_request(request),
                    tuple(verified),
                )
        return None, None, tuple(verified)

    def _on_recheck(self, t, seq):
        from repro.warehouse.service import TimelineEntry

        self._counts["rechecks"] += 1
        self.telemetry.metrics.counter("warehouse.rechecks").add()
        checked = 0
        failed = 0
        verified_all = []
        for node_state in self.cluster.used_nodes():
            if not node_state.lc_requests:
                continue
            loads = self._loads_of(node_state.index, t)
            if self._last_verified.get(node_state.index) == loads:
                continue
            checked += 1
            verified = self._rebalance_node(node_state.index, t, seq, loads)
            verified_all.extend(verified)
            if self._last_verified.get(node_state.index) != loads:
                failed += 1
        if failed:
            self._counts["recheck_failures"] += failed
        self._record(
            TimelineEntry(
                time_s=t,
                seq=seq,
                kind="recheck",
                detail=f"checked={checked} failed={failed}",
                verified=tuple(verified_all),
            )
        )


def bench_warehouse_scale(n_nodes=2000, n_jobs=2000, seed=47):
    """Scheduler-structure throughput at warehouse scale.

    Plays one all-background scenario through the indexed service and
    through :class:`IndexFreeService` (the pre-index full-scan read
    paths) on the same ``n_nodes``-machine cluster.  Background jobs
    admit structurally — no QoS probe physics, which ``bench_warehouse``
    already times — so events/sec here is purely the bookkeeping cost
    per scheduling decision: exactly the term the density buckets and
    the dirty-set recheck turned fleet-size-independent.  Both runs
    must replay to bit-identical timelines; ``index_speedup`` is the
    fullscan-to-indexed wall-time ratio.
    """
    events = synthesize(
        ScenarioConfig(
            n_jobs=n_jobs, duration_s=900.0, lc_fraction=0.0, seed=seed
        )
    )

    def play(cls):
        service = cls(n_nodes, recheck_period_s=60.0, seed=seed)
        load_into(service, events)
        horizon = service.loop.queue.last_time()
        t0 = CLOCK.now()
        processed = service.run_until(horizon)
        dt = CLOCK.now() - t0
        return processed, dt, service.timeline

    indexed_events, indexed_dt, indexed_timeline = play(WarehouseService)
    scan_events, scan_dt, scan_timeline = play(IndexFreeService)
    return {
        "nodes": n_nodes,
        "events": indexed_events,
        "indexed_seconds": indexed_dt,
        "fullscan_seconds": scan_dt,
        "indexed_events_per_sec": indexed_events / indexed_dt,
        "fullscan_events_per_sec": scan_events / scan_dt,
        "index_speedup": scan_dt / indexed_dt,
        "identical": (
            indexed_events == scan_events
            and indexed_timeline == scan_timeline
        ),
    }


def speedups(current):
    """current/baseline for every rate both sections report."""
    out = {}
    for section, metrics in BASELINE.items():
        for key, base in metrics.items():
            if base is None or not (
                key.endswith("_per_sec") or "speedup" in key
            ):
                continue
            now = current.get(section, {}).get(key)
            if now:
                out[f"{section}.{key}"] = now / base
    return out


#: ``--check`` fails when the quick-mode end-to-end rate falls below
#: this fraction of the tracked ``BENCH_perf.json`` rate.  Generous
#: (30% headroom) because quick mode runs seconds, not minutes — the
#: guard exists to catch order-of-magnitude regressions (an accidental
#: O(n²) in the hot loop, telemetry overhead leaking into the disabled
#: path), not single-digit drift.
CHECK_THRESHOLD = 0.70

#: ``--check`` also budgets the *enabled*-telemetry path: the measured
#: enabled/disabled rate ratio must stay within 10% of the tracked
#: ratio from ``BENCH_perf.json``.  Comparing ratios (both rates from
#: the same run) keeps the budget machine-independent — a slower CI box
#: slows both paths alike, but telemetry overhead creeping into spans
#: or counters drags only the enabled rate down.
ENABLED_BUDGET = 0.90

#: ``--check`` budgets the store and batch ratios the same way: the
#: quick-mode ratio must stay within this fraction of the tracked
#: full-run ratio.  Ratios (both halves timed in the same run) stay
#: machine-independent; the generous floors absorb quick mode's smaller
#: sweeps, where fixed per-observe costs weigh more than in the tracked
#: full run.
OBSTORE_BUDGET = 0.55
BATCH_BUDGET = 0.65

#: The warehouse events/sec floor vs the tracked rate.  More generous
#: than CHECK_THRESHOLD: quick mode schedules fewer jobs over the same
#: 200-node topology, so fixed per-run costs (calibration, fleet
#: construction) weigh more heavily on the quick rate.
WAREHOUSE_BUDGET = 0.50

#: The indexed-vs-fullscan ratio floor.  The quick topology (600 nodes)
#: gives the full scan less to lose than the tracked 2000-node run, so
#: the ratio-of-ratios budget is generous — but the measured speedup
#: must also clear an absolute 2x floor even in quick mode: that is the
#: acceptance bar the density-bucket/dirty-set refactor shipped under.
SCALE_BUDGET = 0.35
SCALE_FLOOR = 2.0


def check_regression(current) -> int:
    """Compare quick-mode rates against the tracked full-run numbers."""
    if not OUTPUT_PATH.exists():
        print(f"check: no {OUTPUT_PATH.name} to compare against; skipping")
        return 0
    tracked = json.loads(OUTPUT_PATH.read_text())
    reference = tracked["current"]["end_to_end"]["iterations_per_sec"]
    measured = current["end_to_end"]["iterations_per_sec"]
    ratio = measured / reference
    verdict = "ok" if ratio >= CHECK_THRESHOLD else "REGRESSION"
    print(
        f"check: end_to_end {measured:.1f} it/s vs tracked "
        f"{reference:.1f} it/s (x{ratio:.2f}, floor x{CHECK_THRESHOLD}): "
        f"{verdict}"
    )
    failed = ratio < CHECK_THRESHOLD

    tracked_enabled = tracked["current"].get("end_to_end_enabled")
    if tracked_enabled is None:
        print("check: no tracked end_to_end_enabled section; enabled budget skipped")
    else:
        tracked_overhead = (
            tracked_enabled["iterations_per_sec"]
            / tracked["current"]["end_to_end"]["iterations_per_sec"]
        )
        measured_overhead = (
            current["end_to_end_enabled"]["iterations_per_sec"]
            / current["end_to_end"]["iterations_per_sec"]
        )
        floor = tracked_overhead * ENABLED_BUDGET
        enabled_verdict = "ok" if measured_overhead >= floor else "REGRESSION"
        print(
            f"check: enabled/disabled ratio x{measured_overhead:.2f} vs tracked "
            f"x{tracked_overhead:.2f} (floor x{floor:.2f}): {enabled_verdict}"
        )
        failed = failed or measured_overhead < floor

    # A warm store must serve every truth — any physics here means the
    # persist-reload path is silently broken, whatever the timings say.
    warm_physics = current["obstore"]["warm_physics"]
    physics_verdict = "ok" if warm_physics == 0 else "REGRESSION"
    print(f"check: warm-store physics runs {warm_physics} (must be 0): {physics_verdict}")
    failed = failed or warm_physics != 0

    tracked_warehouse = tracked["current"].get("warehouse")
    if tracked_warehouse is None:
        print("check: no tracked warehouse section; events/sec budget skipped")
    else:
        reference = tracked_warehouse["events_per_sec"]
        measured = current["warehouse"]["events_per_sec"]
        ratio = measured / reference
        verdict = "ok" if ratio >= WAREHOUSE_BUDGET else "REGRESSION"
        print(
            f"check: warehouse {measured:.0f} events/s vs tracked "
            f"{reference:.0f} events/s (x{ratio:.2f}, floor "
            f"x{WAREHOUSE_BUDGET}): {verdict}"
        )
        failed = failed or ratio < WAREHOUSE_BUDGET

    # Same-seed warm probes must replay entirely from the store: any
    # miss means the service's probe path stopped being deterministic
    # (or stopped consulting the store), whatever the timings say.
    warm_misses = current["warehouse"]["probe_warm_misses"]
    misses_verdict = "ok" if warm_misses == 0 else "REGRESSION"
    print(
        f"check: warehouse warm-probe store misses {warm_misses} "
        f"(must be 0): {misses_verdict}"
    )
    failed = failed or warm_misses != 0

    # The fullscan reference must still replay bit-identically — a
    # divergence means the indices changed scheduling decisions, which
    # no speedup excuses.
    identical = current["warehouse_scale"]["identical"]
    identical_verdict = "ok" if identical else "REGRESSION"
    print(
        f"check: warehouse_scale indexed/fullscan timelines identical "
        f"{identical} (must be True): {identical_verdict}"
    )
    failed = failed or not identical

    scale_speedup = current["warehouse_scale"]["index_speedup"]
    scale_verdict = "ok" if scale_speedup >= SCALE_FLOOR else "REGRESSION"
    print(
        f"check: warehouse_scale index_speedup x{scale_speedup:.2f} "
        f"(absolute floor x{SCALE_FLOOR}): {scale_verdict}"
    )
    failed = failed or scale_speedup < SCALE_FLOOR

    for section, key, budget in (
        ("obstore", "warm_speedup", OBSTORE_BUDGET),
        ("batch", "k4_speedup_vs_k1", BATCH_BUDGET),
        ("warehouse", "warm_probe_speedup", OBSTORE_BUDGET),
        ("warehouse_scale", "index_speedup", SCALE_BUDGET),
    ):
        tracked_section = tracked["current"].get(section)
        if tracked_section is None or key not in tracked_section:
            print(f"check: no tracked {section}.{key}; budget skipped")
            continue
        reference = tracked_section[key]
        measured = current[section][key]
        floor = reference * budget
        verdict = "ok" if measured >= floor else "REGRESSION"
        print(
            f"check: {section}.{key} x{measured:.2f} vs tracked "
            f"x{reference:.2f} (floor x{floor:.2f}): {verdict}"
        )
        failed = failed or measured < floor

    return 1 if failed else 0


def cache_smoke() -> int:
    """CI smoke for the persistent store: sweep twice, expect free replay.

    Runs a tiny sweep against an empty store, then replays it through a
    fresh node and a fresh store object reloading the same file.  Fails
    unless the second pass runs zero physics — i.e. unless warm
    observations are actually free.
    """
    result = bench_obstore(n_configs=40)
    ok = result["cold_physics"] > 0 and result["warm_physics"] == 0
    print(
        f"cache-smoke: cold {result['cold_physics']} physics, warm "
        f"{result['warm_physics']} physics (warm x{result['warm_speedup']:.1f} "
        f"faster): {'ok' if ok else 'FAILED'}"
    )
    return 0 if ok else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: tiny workloads, prints results, does not write JSON",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="quick workloads + fail (exit 1) if iterations/sec drops "
        f"more than {1 - CHECK_THRESHOLD:.0%} below BENCH_perf.json, or if "
        f"the enabled-telemetry rate ratio regresses more than "
        f"{1 - ENABLED_BUDGET:.0%}, the store/batch speedup ratios fall "
        "below their budgets, or a warm store runs any physics",
    )
    parser.add_argument(
        "--cache-smoke",
        action="store_true",
        help="store-only CI smoke: sweep twice through one store file and "
        "fail unless the second pass runs zero physics",
    )
    args = parser.parse_args()

    if args.cache_smoke:
        return cache_smoke()

    if args.quick or args.check:
        current = {
            "end_to_end": bench_end_to_end(seeds=(0,), budget_units=25),
            "end_to_end_enabled": bench_end_to_end(
                seeds=(0,), budget_units=25, enable_telemetry=True
            ),
            "propose": bench_propose(n=3, warmup_iterations=6),
            "gp": bench_gp(n_train=20, reps=5),
            "obstore": bench_obstore(n_configs=80),
            "batch": bench_batch(ks=(1, 4), max_samples=24),
            "warehouse": bench_warehouse(n_jobs=40, probe_jobs=10),
            "warehouse_scale": bench_warehouse_scale(
                n_nodes=600, n_jobs=600
            ),
        }
    else:
        current = {
            "end_to_end": bench_end_to_end(),
            "end_to_end_enabled": bench_end_to_end(enable_telemetry=True),
            "propose": bench_propose(),
            "gp": bench_gp(),
            "obstore": bench_obstore(),
            "batch": bench_batch(),
            "warehouse": bench_warehouse(),
            "warehouse_scale": bench_warehouse_scale(),
        }

    report = {
        "mode": "quick" if (args.quick or args.check) else "full",
        "baseline": BASELINE,
        "current": current,
        "speedup": speedups(current),
    }
    print(json.dumps(report, indent=2))
    if args.check:
        return check_regression(current)
    if args.quick:
        print("\n(quick mode: BENCH_perf.json not updated)")
        return 0
    OUTPUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {OUTPUT_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
