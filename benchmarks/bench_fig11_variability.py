"""Fig. 11: run-to-run variability of each scheme's chosen partition."""

from common import BUDGET, full_clite, genetic, parties, rand_plus, save_report
from repro.experiments import (
    MixSpec,
    format_table,
    run_repeats,
    variability_percent,
)

#: The paper's two repeat-trial mixes.
MIXES = {
    "img-dnn+xapian+memcached": MixSpec.of(
        lc=[("img-dnn", 0.6), ("xapian", 0.6), ("memcached", 0.6)]
    ),
    "specjbb+masstree+xapian": MixSpec.of(
        lc=[("specjbb", 0.6), ("masstree", 0.6), ("xapian", 0.6)]
    ),
}

POLICIES = (
    ("CLITE", full_clite),
    ("PARTIES", parties),
    ("RAND+", rand_plus),
    ("GENETIC", genetic),
)

N_TRIALS = 4


def compute():
    table = {}
    for mix_name, mix in MIXES.items():
        for policy_name, factory in POLICIES:
            trials = run_repeats(
                mix, factory, n_trials=N_TRIALS, budget=BUDGET, base_seed=10
            )
            table[(mix_name, policy_name)] = variability_percent(trials)
    return table


def test_fig11_variability(benchmark):
    table = compute()

    rows = [
        [mix_name] + [table[(mix_name, p)] for p, _ in POLICIES]
        for mix_name in MIXES
    ]
    report = format_table(
        ["mix"] + [f"{p} (std %)" for p, _ in POLICIES], rows
    )
    save_report("fig11_variability", report)

    mix = MIXES["img-dnn+xapian+memcached"]
    benchmark.pedantic(
        run_repeats,
        args=(mix, parties),
        kwargs={"n_trials": 2, "budget": BUDGET},
        rounds=1,
        iterations=1,
    )

    # Shape: CLITE's variability is modest (paper: < 7%) and far below
    # the heavily stochastic baselines.  Our PARTIES is near-
    # deterministic (the simulator's 1% counter noise rarely flips its
    # FSM decisions, unlike real-hardware noise), so the comparison
    # that carries the figure's meaning is CLITE vs RAND+/GENETIC.
    means = {
        p: sum(table[(m, p)] for m in MIXES) / len(MIXES) for p, _ in POLICIES
    }
    assert means["CLITE"] < 10.0
    assert means["RAND+"] > means["CLITE"]
    assert means["GENETIC"] > means["CLITE"]
