"""Fig. 2: when coordinate descent can and cannot reach the overlap."""

import numpy as np

from common import save_report
from repro.experiments import (
    coordinate_descent_reaches,
    overlap_region,
    qos_region,
)


def render(overlaps) -> str:
    lines = []
    for label, overlap, start, reached in overlaps:
        lines.append(
            f"{label}: overlap cells={int(overlap.sum())}, "
            f"equal-split start reaches overlap: {reached}"
        )
    return "\n".join(lines)


def test_fig2_coordinate_descent(benchmark):
    region_a = qos_region("memcached", 0.4)
    region_b = qos_region("img-dnn", 0.4)
    overlap = benchmark(overlap_region, region_a, region_b)

    cases = []
    for load_a, load_b, label in (
        (0.2, 0.2, "case (a): light loads"),
        (0.4, 0.6, "case (b): mixed loads"),
        (0.8, 0.9, "case (c): heavy loads"),
    ):
        o = overlap_region(
            qos_region("memcached", load_a), qos_region("img-dnn", load_b)
        )
        start = (o.shape[0] // 2, o.shape[1] // 2)  # equal division
        cases.append((label, o, start, coordinate_descent_reaches(o, start)))
    save_report("fig2_coordinate_descent", render(cases))

    # Shape: the overlap exists at light loads and shrinks (possibly to
    # nothing) as loads rise — the regime where one-dimension-at-a-time
    # exploration runs out of road.
    sizes = [int(o.sum()) for _, o, _, _ in cases]
    assert sizes[0] > 0
    assert sizes == sorted(sizes, reverse=True)
    assert cases[0][3]  # light loads: reachable from the equal split
    assert int(overlap.sum()) > 0
    assert isinstance(overlap, np.ndarray)
