"""Fig. 13: different BG jobs under three-LC mixes, per policy,
normalized to ORACLE."""

from common import BUDGET, full_clite, genetic, mean, oracle, parties, rand_plus, save_report
from repro.experiments import MixSpec, format_table, run_trial

LC_MIX = [("img-dnn", 0.4), ("xapian", 0.4), ("memcached", 0.4)]
BG_JOBS = ("streamcluster", "canneal", "fluidanimate")

POLICIES = (
    ("CLITE", full_clite),
    ("PARTIES", parties),
    ("RAND+", rand_plus),
    ("GENETIC", genetic),
)


def compute():
    results = {}
    for bg in BG_JOBS:
        mix = MixSpec.of(lc=LC_MIX, bg=[bg])
        oracle_trial = run_trial(mix, oracle(0), seed=0, budget=BUDGET)
        baseline = oracle_trial.bg_performance[bg]
        for name, factory in POLICIES:
            trial = run_trial(mix, factory(0), seed=0, budget=BUDGET)
            results[(bg, name)] = (
                trial.bg_performance[bg] / baseline if trial.qos_met else 0.0
            )
    return results


def test_fig13_bg_jobs(benchmark):
    results = compute()
    rows = [
        [bg] + [results[(bg, p)] for p, _ in POLICIES] for bg in BG_JOBS
    ]
    averages = {p: mean(results[(bg, p)] for bg in BG_JOBS) for p, _ in POLICIES}
    report = format_table(["BG job"] + [p for p, _ in POLICIES], rows)
    report += "\n\naverage fraction of ORACLE: " + ", ".join(
        f"{k}={v:.2f}" for k, v in averages.items()
    )
    save_report("fig13_bg_jobs", report)

    mix = MixSpec.of(lc=LC_MIX, bg=["streamcluster"])
    benchmark.pedantic(
        run_trial,
        args=(mix, parties(0)),
        kwargs={"seed": 0, "budget": BUDGET},
        rounds=1,
        iterations=1,
    )

    # Shape: CLITE gives every BG job the best (non-oracle) performance
    # and averages > 75% of ORACLE (the paper's claim); a wide margin
    # separates it from the rest, and a policy that fails QoS scores 0.
    assert averages["CLITE"] == max(averages.values())
    assert averages["CLITE"] > 0.75
    others = [v for k, v in averages.items() if k != "CLITE"]
    assert averages["CLITE"] > max(others) + 0.05
