"""Fig. 8: max memcached load with three LC jobs *plus* blackscholes."""

from common import BUDGET, fast_clite, oracle, parties, save_report
from repro.experiments import MixSpec, format_heatmap, max_load_grid, run_trial

ROW_LOADS = (0.1, 0.5, 0.9)  # img-dnn
COL_LOADS = (0.1, 0.5, 0.9)  # masstree
TARGET_LOADS = (0.2, 0.5, 0.8)  # memcached

BASE_MIX = MixSpec.of(
    lc=[("img-dnn", 0.1), ("masstree", 0.1), ("memcached", 0.1)],
    bg=["blackscholes"],
)

POLICIES = (("PARTIES", parties), ("CLITE", fast_clite), ("ORACLE", oracle))


def compute_grids():
    return {
        name: max_load_grid(
            BASE_MIX,
            row_job="img-dnn",
            col_job="masstree",
            target_job="memcached",
            policy_factory=factory,
            policy_name=name,
            row_loads=ROW_LOADS,
            col_loads=COL_LOADS,
            target_loads=TARGET_LOADS,
            seed=0,
            budget=BUDGET,
        )
        for name, factory in POLICIES
    }


def grid_total(grid) -> float:
    return sum(v or 0.0 for row in grid.cells for v in row)


def test_fig8_three_lc_one_bg(benchmark):
    grids = compute_grids()
    totals = {name: grid_total(grids[name]) for name, _ in POLICIES}
    report = "\n\n".join(format_heatmap(g) for g in grids.values())
    report += "\n\ntotals: " + ", ".join(f"{k}={v:.1f}" for k, v in totals.items())
    save_report("fig8_three_lc_one_bg", report)

    benchmark.pedantic(
        run_trial,
        args=(BASE_MIX.with_lc_load("img-dnn", 0.5), parties(0)),
        kwargs={"seed": 0, "budget": BUDGET},
        rounds=1,
        iterations=1,
    )

    # Shape 1: same policy ordering as Fig. 7.
    assert totals["ORACLE"] >= totals["CLITE"] >= totals["PARTIES"] - 0.2
    # Shape 2: the extra BG job costs capacity — more X cells / lower
    # totals than the Fig. 7 values for the same load points would give
    # (the hard corner must be infeasible for everyone).
    for name, _ in POLICIES:
        assert grids[name].cell(2, 2) is None or grids[name].cell(2, 2) <= 0.2
    # Shape 3: CLITE still co-locates at high loads where it matters.
    assert (grids["CLITE"].cell(2, 0) or 0) >= 0.5
