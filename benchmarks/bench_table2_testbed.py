"""Table 2: the testbed configuration, plus the Sec. 2 search-space math."""

from common import save_report
from repro.experiments import format_table
from repro.resources import ConfigurationSpace, default_server


def render_table2() -> str:
    server = default_server()
    rows = [
        ["CPU model", server.cpu_model],
        ["sockets", server.sockets],
        ["frequency", f"{server.frequency_ghz} GHz"],
        ["memory", f"{server.memory_gb} GB"],
        ["partitionable resources", ", ".join(server.resource_names)],
        ["cores (units)", server.resource("cores").units],
        ["LLC ways (units)", server.resource("llc_ways").units],
        ["membw slices (units)", server.resource("membw").units],
    ]
    space_rows = [
        [n, ConfigurationSpace(server, n).size()] for n in range(2, 5)
    ]
    return (
        format_table(["component", "specification"], rows)
        + "\n\nconfiguration-space size (Sec. 2 formula):\n"
        + format_table(["co-located jobs", "configurations"], space_rows)
    )


def test_table2_testbed(benchmark):
    server = default_server()

    def space_math():
        return [ConfigurationSpace(server, n).size() for n in range(2, 5)]

    sizes = benchmark(space_math)
    save_report("table2_testbed", render_table2())

    # Shape: the space explodes combinatorially with the job count.
    assert sizes[0] < sizes[1] < sizes[2]
    assert sizes[1] == 36 * 45 * 36  # 3 jobs on the Table 2 box
