"""Fig. 15: sampling overhead per scheme (a) and post-QoS improvement (b)."""

from common import (
    BUDGET,
    full_clite,
    genetic,
    heracles,
    oracle,
    parties,
    rand_plus,
    save_report,
)
from repro.experiments import (
    MixSpec,
    best_bg_performance_series,
    first_qos_met_sample,
    format_table,
    overhead_table,
    run_trial,
)

#: Mixes of growing size for the overhead sweep.
OVERHEAD_MIXES = (
    MixSpec.of(lc=[("memcached", 0.3), ("xapian", 0.3)]),
    MixSpec.of(lc=[("img-dnn", 0.3), ("memcached", 0.3)], bg=["streamcluster"]),
    MixSpec.of(
        lc=[("img-dnn", 0.3), ("memcached", 0.3), ("masstree", 0.3)],
        bg=["blackscholes"],
    ),
)

POLICIES = {
    "CLITE": full_clite,
    "PARTIES": parties,
    "RAND+": rand_plus,
    "GENETIC": genetic,
    "ORACLE": oracle,
}

#: Fig. 15(b)'s mix: three LC jobs plus fluidanimate.
FIG15B_MIX = MixSpec.of(
    lc=[("img-dnn", 0.3), ("memcached", 0.3), ("masstree", 0.3)],
    bg=["fluidanimate"],
)


def test_fig15a_overhead(benchmark):
    rows = overhead_table(OVERHEAD_MIXES, POLICIES, seeds=(0, 1), budget=BUDGET)
    table = format_table(
        ["mix", "policy", "avg samples", "avg total evals", "QoS success"],
        [
            [r.mix_label, r.policy, r.mean_samples, r.mean_evaluations, r.qos_success_rate]
            for r in rows
        ],
    )
    save_report("fig15a_overhead", table)

    benchmark.pedantic(
        run_trial,
        args=(OVERHEAD_MIXES[0], parties(0)),
        kwargs={"seed": 0, "budget": BUDGET},
        rounds=1,
        iterations=1,
    )

    by_policy = {}
    for r in rows:
        by_policy.setdefault(r.policy, []).append(r)

    def avg(policy, attr):
        entries = by_policy[policy]
        return sum(getattr(e, attr) for e in entries) / len(entries)

    # Shape 1: RAND+/GENETIC spend their preset budgets — the highest
    # online overhead; PARTIES stops earliest; CLITE sits in between
    # (slightly above PARTIES, far below the preset schemes' budgets).
    assert avg("RAND+", "mean_samples") >= avg("CLITE", "mean_samples")
    assert avg("GENETIC", "mean_samples") >= avg("CLITE", "mean_samples")
    assert avg("CLITE", "mean_samples") > avg("PARTIES", "mean_samples")

    # Shape 2: ORACLE's offline sweep is orders of magnitude larger.
    assert avg("ORACLE", "mean_evaluations") > 20 * avg("CLITE", "mean_evaluations")

    # Shape 3: only CLITE and ORACLE met QoS on every mix and seed.
    assert avg("CLITE", "qos_success_rate") == 1.0
    assert avg("ORACLE", "qos_success_rate") == 1.0


def test_fig15b_post_qos_improvement(benchmark):
    parties_trial = run_trial(FIG15B_MIX, parties(0), seed=0, budget=BUDGET)
    clite_trial = run_trial(FIG15B_MIX, full_clite(0), seed=0, budget=BUDGET)

    p_series = best_bg_performance_series(parties_trial.result, "fluidanimate")
    c_series = best_bg_performance_series(clite_trial.result, "fluidanimate")
    rows = []
    for i in range(0, max(len(p_series), len(c_series)), 5):
        rows.append(
            [
                i,
                p_series[i] if i < len(p_series) else p_series[-1],
                c_series[i] if i < len(c_series) else c_series[-1],
            ]
        )
    report = format_table(
        ["sample", "PARTIES best-so-far BG", "CLITE best-so-far BG"], rows
    )
    report += (
        f"\n\nfirst QoS-met sample: PARTIES="
        f"{first_qos_met_sample(parties_trial.result)}, "
        f"CLITE={first_qos_met_sample(clite_trial.result)}"
    )
    save_report("fig15b_improvement", report)

    benchmark.pedantic(
        run_trial,
        args=(FIG15B_MIX, parties(1)),
        kwargs={"seed": 1, "budget": BUDGET},
        rounds=1,
        iterations=1,
    )

    # Shape 1: both meet QoS early (within a comparable window).
    p_first = first_qos_met_sample(parties_trial.result)
    c_first = first_qos_met_sample(clite_trial.result)
    assert p_first is not None and c_first is not None
    assert c_first <= p_first + 5

    # Shape 2: PARTIES plateaus once stable, while CLITE keeps
    # improving fluidanimate well past its first QoS-met sample.
    final_p = next(v for v in reversed(p_series) if v is not None)
    final_c = next(v for v in reversed(c_series) if v is not None)
    assert final_c > final_p
    first_c_value = c_series[c_first]
    assert final_c > first_c_value * 1.2
