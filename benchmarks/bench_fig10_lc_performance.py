"""Fig. 10: mean LC performance (normalized to ORACLE) for three
co-located LC jobs as the third job's load varies, no BG jobs."""

from common import BUDGET, full_clite, genetic, mean, oracle, parties, rand_plus, save_report
from repro.experiments import MixSpec, format_table, run_trial

#: The paper's two mixes: (img-dnn, xapian, memcached) and
#: (specjbb, masstree, xapian); the first two jobs stay at 10% load.
MIXES = {
    "img-dnn+xapian+memcached": ("memcached", MixSpec.of(
        lc=[("img-dnn", 0.1), ("xapian", 0.1), ("memcached", 0.1)]
    )),
    "specjbb+masstree+xapian": ("xapian", MixSpec.of(
        lc=[("specjbb", 0.1), ("masstree", 0.1), ("xapian", 0.1)]
    )),
}

VARIED_LOADS = (0.3, 0.6, 0.9)

POLICIES = (
    ("CLITE", full_clite),
    ("PARTIES", parties),
    ("RAND+", rand_plus),
    ("GENETIC", genetic),
)


def compute():
    results = {}
    for mix_name, (varied_job, base_mix) in MIXES.items():
        for load in VARIED_LOADS:
            mix = base_mix.with_lc_load(varied_job, load)
            oracle_trial = run_trial(mix, oracle(0), seed=0, budget=BUDGET)
            baseline = oracle_trial.mean_lc_performance
            for policy_name, factory in POLICIES:
                trial = run_trial(mix, factory(0), seed=0, budget=BUDGET)
                normalized = (
                    trial.mean_lc_performance / baseline if trial.qos_met else 0.0
                )
                results[(mix_name, load, policy_name)] = normalized
    return results


def test_fig10_lc_performance(benchmark):
    results = compute()

    rows = []
    for mix_name in MIXES:
        for load in VARIED_LOADS:
            rows.append(
                [mix_name, f"{load:.0%}"]
                + [results[(mix_name, load, p)] for p, _ in POLICIES]
            )
    report = format_table(
        ["mix", "varied load"] + [p for p, _ in POLICIES], rows
    )
    averages = {
        p: mean(
            results[(m, load, p)] for m in MIXES for load in VARIED_LOADS
        )
        for p, _ in POLICIES
    }
    report += "\n\naverage vs ORACLE: " + ", ".join(
        f"{k}={v:.2f}" for k, v in averages.items()
    )
    save_report("fig10_lc_performance", report)

    mix = MIXES["img-dnn+xapian+memcached"][1]
    benchmark.pedantic(
        run_trial,
        args=(mix, parties(0)),
        kwargs={"seed": 0, "budget": BUDGET},
        rounds=1,
        iterations=1,
    )

    # Shape 1: CLITE sits close to ORACLE (paper: 96-98%) and clearly
    # above PARTIES (paper: 74-85%).  RAND+/GENETIC also score highly
    # here — at 10% fixed loads our substrate's LC-only metric is easy
    # for an 80-sample random search — so the robust contrast the paper
    # carries is CLITE vs the feedback controllers (see EXPERIMENTS.md).
    assert averages["CLITE"] >= 0.9
    assert averages["CLITE"] > averages["PARTIES"]
    assert averages["CLITE"] >= max(averages.values()) - 0.05
    # Shape 2: every CLITE point met QoS (normalized value positive).
    assert all(
        results[(m, load, "CLITE")] > 0 for m in MIXES for load in VARIED_LOADS
    )
