"""Sec. 5.2: CLITE's benefits are not sensitive to BO parameter tuning.

The paper reports CLITE staying "mostly within 2% of the observed
performance with reasonably well-chosen parameters"; we sweep ζ, the
dropout policy, and the bootstrap size knob and check the spread stays
small relative to the cross-policy gaps the other figures show.
"""

from dataclasses import replace

from common import mean, save_report
from repro.core import CLITEConfig
from repro.experiments import MixSpec, format_table, run_trial
from repro.schedulers import CLITEPolicy
from repro.server import NodeBudget

MIX = MixSpec.of(
    lc=[("img-dnn", 0.4), ("memcached", 0.4), ("masstree", 0.3)],
    bg=["streamcluster"],
)
BUDGET = NodeBudget(90)
BASE = CLITEConfig(seed=0)

VARIANTS = {
    "default (zeta=0.01)": BASE,
    "zeta=0.001": replace(BASE, zeta=0.001),
    "zeta=0.05": replace(BASE, zeta=0.05),
    "dropout random_prob=0.0": replace(BASE, dropout_random_prob=0.0),
    "dropout random_prob=0.3": replace(BASE, dropout_random_prob=0.3),
    "ei_threshold=0.002": replace(BASE, ei_threshold=0.002),
    "ei_threshold=0.02": replace(BASE, ei_threshold=0.02),
}

SEEDS = (0, 1)


def compute():
    results = {}
    for name, config in VARIANTS.items():
        perfs = []
        for seed in SEEDS:
            trial = run_trial(
                MIX,
                CLITEPolicy(config=replace(config, seed=seed)),
                seed=seed,
                budget=BUDGET,
            )
            perfs.append(trial.mean_bg_performance if trial.qos_met else 0.0)
        results[name] = mean(perfs)
    return results


def test_sec52_parameter_sensitivity(benchmark):
    results = compute()
    rows = [[name, perf] for name, perf in results.items()]
    spread = max(results.values()) - min(results.values())
    report = format_table(["variant", "mean BG perf"], rows)
    report += f"\n\nspread across variants: {spread:.3f}"
    save_report("sec52_param_sensitivity", report)

    benchmark.pedantic(
        run_trial,
        args=(MIX, CLITEPolicy(seed=5)),
        kwargs={"seed": 5, "budget": BUDGET},
        rounds=1,
        iterations=1,
    )

    # Shape 1: every variant still meets QoS (non-zero performance).
    assert all(v > 0 for v in results.values())
    # Shape 2: the spread across reasonable parameter choices is small
    # compared to the CLITE-vs-PARTIES gaps elsewhere (paper: ~2%; we
    # allow simulator slack but demand the same "no tuning needed"
    # conclusion).
    assert spread <= 0.12
    assert min(results.values()) >= 0.6 * max(results.values())
