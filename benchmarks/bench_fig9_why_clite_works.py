"""Fig. 9: why CLITE beats PARTIES — allocations and convergence.

(a) the final per-job resource split of PARTIES vs CLITE on the
img-dnn + memcached + masstree + streamcluster mix, and the BG job's
resulting performance; (b) the same policies on a harder mix, where
PARTIES cycles through 100 samples without ever meeting QoS while
CLITE finds a feasible partition and stabilizes.
"""

from common import full_clite, parties, save_report
from repro.experiments import (
    MixSpec,
    allocation_snapshot,
    first_qos_met_sample,
    format_table,
    qos_met_series,
    run_trial,
)
from repro.resources import default_server
from repro.server import NodeBudget

MIX_A = MixSpec.of(
    lc=[("img-dnn", 0.3), ("memcached", 0.3), ("masstree", 0.3)],
    bg=["streamcluster"],
)
#: The Fig. 9(b) regime: joint multi-resource moves required.
MIX_B = MixSpec.of(
    lc=[("img-dnn", 0.7), ("masstree", 0.6), ("memcached", 0.3)],
    bg=["blackscholes"],
)


def render_snapshot(snapshots, perfs) -> str:
    server = default_server()
    rows = []
    for snap in snapshots:
        for job in snap.job_names:
            rows.append(
                [snap.policy, job]
                + [f"{snap.share(job, r):.0%}" for r in server.resource_names]
            )
    table = format_table(
        ["policy", "job"] + list(server.resource_names), rows
    )
    perf_line = ", ".join(f"{k} streamcluster={v:.1%}" for k, v in perfs.items())
    return table + "\n\n" + perf_line


def test_fig9a_allocation_snapshot(benchmark):
    budget = NodeBudget(90)
    trials = {
        "PARTIES": run_trial(MIX_A, parties(0), seed=0, budget=budget),
        "CLITE": run_trial(MIX_A, full_clite(0), seed=0, budget=budget),
    }
    node = MIX_A.build_node(seed=0)
    snapshots = [
        allocation_snapshot(t.result, default_server(), node.job_names())
        for t in trials.values()
    ]
    perfs = {k: t.bg_performance["streamcluster"] for k, t in trials.items()}
    save_report("fig9a_allocations", render_snapshot(snapshots, perfs))

    benchmark.pedantic(
        run_trial,
        args=(MIX_A, parties(1)),
        kwargs={"seed": 1, "budget": budget},
        rounds=1,
        iterations=1,
    )

    # Shape: both meet QoS, but CLITE's reshuffling leaves the BG job
    # better off (the paper's 89% vs 39% of ORACLE gap, directionally).
    assert trials["PARTIES"].qos_met and trials["CLITE"].qos_met
    assert perfs["CLITE"] > perfs["PARTIES"]
    # And the allocations genuinely differ — CLITE found a different
    # resource-equivalence point, not a tweak of PARTIES' answer.
    assert (
        trials["CLITE"].result.best_config
        != trials["PARTIES"].result.best_config
    )


def test_fig9b_convergence(benchmark):
    budget = NodeBudget(100)
    parties_trial = run_trial(MIX_B, parties(2), seed=2, budget=budget)
    clite_trial = run_trial(MIX_B, full_clite(2), seed=2, budget=budget)

    p_series = qos_met_series(parties_trial.result)
    c_first = first_qos_met_sample(clite_trial.result)
    report = format_table(
        ["policy", "samples", "ever met QoS", "first QoS sample", "final QoS"],
        [
            [
                "PARTIES",
                parties_trial.samples,
                any(p_series),
                first_qos_met_sample(parties_trial.result),
                parties_trial.qos_met,
            ],
            [
                "CLITE",
                clite_trial.samples,
                c_first is not None,
                c_first,
                clite_trial.qos_met,
            ],
        ],
    )
    save_report("fig9b_convergence", report)

    benchmark.pedantic(
        run_trial,
        args=(MIX_B, parties(3)),
        kwargs={"seed": 3, "budget": budget},
        rounds=1,
        iterations=1,
    )

    # Shape: PARTIES churns its budget without a QoS-meeting partition;
    # CLITE discovers one well inside its budget and keeps it.
    assert not parties_trial.qos_met
    assert clite_trial.qos_met
    assert c_first is not None and c_first < 60
