"""Fig. 6: QPS-vs-tail-latency curves and their knees for every LC job."""

from common import save_report
from repro.experiments import format_table
from repro.resources import default_server
from repro.workloads import LC_NAMES, lc_workload, sweep_load


def render(sweeps) -> str:
    sections = []
    summary_rows = []
    for sweep in sweeps:
        rows = [
            [f"{qps:,.0f}", f"{p95:.3f}"] for qps, p95 in sweep.rows()[::6]
        ]
        sections.append(
            f"{sweep.workload}:\n" + format_table(["QPS", "p95 (ms)"], rows)
        )
        summary_rows.append(
            [
                sweep.workload,
                f"{sweep.knee_qps:,.0f}",
                f"{sweep.knee_latency_ms:.3f}",
            ]
        )
    summary = "Knees (max load and QoS tail latency):\n" + format_table(
        ["workload", "knee QPS (=100% load)", "knee p95 (ms)"], summary_rows
    )
    return summary + "\n\n" + "\n\n".join(sections)


def test_fig6_knees(benchmark):
    server = default_server()
    raw = lc_workload("img-dnn", calibrated=False)
    benchmark(sweep_load, raw, server)

    sweeps = [
        sweep_load(lc_workload(name, calibrated=False), server)
        for name in LC_NAMES
    ]
    save_report("fig6_knees", render(sweeps))

    for sweep in sweeps:
        latencies = list(sweep.p95_ms)
        # Shape: monotone curve, flat then sharp — the knee sits in the
        # upper half of the swept load range and the post-knee latency
        # climbs steeply relative to the pre-knee plateau.
        assert latencies == sorted(latencies)
        assert sweep.knee_index > len(latencies) * 0.4
        assert latencies[-1] > 2.5 * sweep.knee_latency_ms
        assert sweep.knee_latency_ms < 6 * latencies[0]
