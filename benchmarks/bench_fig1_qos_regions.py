"""Fig. 1: QoS-safe regions and the resource-equivalence-class property."""

import numpy as np

from common import save_report
from repro.experiments import format_table, qos_region


def render_regions(regions) -> str:
    sections = []
    for region in regions:
        rows = [
            [a_units, b_units]
            for a_units, b_units in region.frontier()
        ]
        sections.append(
            f"{region.workload} @ {region.load:.0%} load — minimum "
            f"{region.resource_b} per {region.resource_a} allocation:\n"
            + format_table([region.resource_a, f"min {region.resource_b}"], rows)
        )
    return "\n\n".join(sections)


def test_fig1_qos_regions(benchmark):
    region = benchmark(qos_region, "img-dnn", 0.5)

    regions = [
        qos_region(name, 0.5) for name in ("img-dnn", "specjbb", "memcached")
    ]
    save_report("fig1_qos_regions", render_regions(regions))

    # Shape 1: multiple configurations meet QoS (the safe set is not a
    # single point) and the share of one resource depends on the other
    # (the frontier is not flat).
    frontier = region.frontier()
    assert len(frontier) >= 3
    min_ways = [b for _, b in frontier]
    assert max(min_ways) > min(min_ways)

    # Shape 2: fewer cores demand at least as many LLC ways.
    for (c1, w1), (c2, w2) in zip(frontier, frontier[1:]):
        assert c2 > c1
        assert w2 <= w1

    # Shape 3: the three workloads' regions differ (Fig. 1's point that
    # per-job sensitivity diversity is the co-location opportunity).
    sizes = {r.workload: int(np.array(r.safe).sum()) for r in regions}
    assert len(set(sizes.values())) >= 2
