"""Cluster-scope extension: machines saved by QoS-aware co-location.

Not a figure from the paper, but its headline motivation quantified:
a stream of heavy service + batch placement requests under three
placement generations — dedicated machines, QoS-blind first fit, and
CLITE-verified packing.
"""

from common import save_report
from repro.cluster import (
    CLITEPlacement,
    Cluster,
    DedicatedPlacement,
    FirstFitPlacement,
    JobRequest,
    utilization_summary,
    verify_node,
)
from repro.cluster.state import ClusterNode
from repro.experiments import format_table
from repro.resources import default_server
from repro.workloads import parsec_catalog, tailbench_catalog

N_NODES = 12


def request_stream(server):
    lc = tailbench_catalog(server)
    bg = parsec_catalog()
    return [
        JobRequest(lc["memcached"], 0.9, name="mc-frontend"),
        JobRequest(lc["img-dnn"], 0.8, name="vision-api"),
        JobRequest(lc["xapian"], 0.7, name="search"),
        JobRequest(lc["masstree"], 0.8, name="kv-store"),
        JobRequest(lc["specjbb"], 0.7, name="middleware"),
        JobRequest(lc["memcached"], 0.4, name="mc-sessions"),
        JobRequest(bg["streamcluster"], name="analytics"),
        JobRequest(bg["blackscholes"], name="pricing-batch"),
        JobRequest(bg["canneal"], name="place-route"),
    ]


def compute():
    server = default_server()
    outcomes = {}
    for policy in (
        DedicatedPlacement(),
        FirstFitPlacement(max_jobs_per_node=4),
        CLITEPlacement(max_jobs_per_node=4),
    ):
        cluster = Cluster(n_nodes=N_NODES, spec=server)
        outcomes[policy.name] = policy.place(cluster, request_stream(server), seed=0)
    return outcomes


def test_cluster_placement(benchmark):
    outcomes = compute()
    rows = []
    for name, outcome in outcomes.items():
        summary = utilization_summary(outcome, N_NODES)
        rows.append(
            [
                name,
                summary["machines_used"],
                "yes" if summary["all_qos_met"] else "NO",
                summary["mean_bg_performance"],
                summary["rejected"],
            ]
        )
    report = format_table(
        ["policy", "machines", "all QoS met", "mean BG perf", "rejected"], rows
    )
    save_report("cluster_placement", report)

    server = default_server()
    lc = tailbench_catalog(server)
    state = ClusterNode(0, server).with_request(
        JobRequest(lc["memcached"], 0.4, name="mc")
    )
    benchmark.pedantic(verify_node, args=(state,), rounds=1, iterations=1)

    dedicated = outcomes["dedicated"]
    first_fit = outcomes["first-fit"]
    clite = outcomes["clite"]

    # Shape 1: dedicated is safe but wasteful (one machine per request).
    assert dedicated.all_qos_met
    assert dedicated.machines_used == 9

    # Shape 2: blind packing is dense but violates QoS somewhere.
    assert first_fit.machines_used <= 4
    assert not first_fit.all_qos_met

    # Shape 3: CLITE packs far below dedicated while staying safe.
    assert clite.all_qos_met
    assert clite.machines_used <= first_fit.machines_used + 1
    assert clite.machines_used <= dedicated.machines_used // 2
    assert clite.rejected == ()
