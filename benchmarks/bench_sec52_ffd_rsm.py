"""Sec. 5.2: Fractional Factorial Designs and Response Surface Methods
need more samples than CLITE and still land on worse configurations."""

from common import full_clite, genetic, save_report
from repro.experiments import MixSpec, format_table, run_trial
from repro.schedulers import FFDPolicy, RSMPolicy
from repro.server import NodeBudget

#: The paper's example scenario: memcached 100%, xapian 10%,
#: streamcluster as BG (9 factors on the Table 2 box).
MIX = MixSpec.of(lc=[("memcached", 1.0), ("xapian", 0.1)], bg=["streamcluster"])
BUDGET = NodeBudget(200)  # DSE methods need room for their full designs

POLICIES = (
    ("FFD", lambda seed: FFDPolicy(seed=seed)),
    ("RSM (Box-Behnken)", lambda seed: RSMPolicy(seed=seed)),
    ("RSM (CCD)", lambda seed: RSMPolicy(design="central-composite", seed=seed)),
    ("GENETIC", genetic),
    ("CLITE", full_clite),
)


def compute():
    return {
        name: run_trial(MIX, factory(0), seed=0, budget=BUDGET)
        for name, factory in POLICIES
    }


def test_sec52_ffd_rsm(benchmark):
    trials = compute()
    rows = [
        [
            name,
            t.samples,
            "yes" if t.qos_met else "NO",
            t.mean_bg_performance if t.qos_met else None,
        ]
        for name, t in trials.items()
    ]
    report = format_table(
        ["method", "samples", "QoS met", "BG perf (norm)"], rows
    )
    save_report("sec52_ffd_rsm", report)

    benchmark.pedantic(
        run_trial,
        args=(MIX, FFDPolicy(seed=1)),
        kwargs={"seed": 1, "budget": BUDGET},
        rounds=1,
        iterations=1,
    )

    clite = trials["CLITE"]
    assert clite.qos_met

    # Shape 1 (sample counts): the static designs are data-hungry —
    # Box-Behnken runs ~2x CLITE's samples (paper: 130 runs), and both
    # composite designs dwarf the FFD screening design.  (Our CCD core
    # is a 32-run fold-over rather than the paper's 2^(9-3); its run
    # count is accordingly smaller but the quality conclusion holds.)
    assert trials["RSM (Box-Behnken)"].samples > clite.samples
    assert trials["RSM (CCD)"].samples > trials["FFD"].samples
    assert trials["FFD"].samples >= 30

    # Shape 2 (result quality): no static design matches CLITE; the
    # paper found 2-level FFD cannot even predict a QoS-meeting
    # configuration for this scenario.
    for name in ("FFD", "RSM (Box-Behnken)", "RSM (CCD)"):
        trial = trials[name]
        worse_quality = (
            not trial.qos_met
            or trial.mean_bg_performance < clite.mean_bg_performance
        )
        assert worse_quality, name
