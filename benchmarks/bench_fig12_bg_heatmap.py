"""Fig. 12: streamcluster's performance co-located with memcached and
xapian across a load grid, per policy."""

from common import BUDGET, fast_clite, mean, oracle, parties, save_report
from repro.experiments import MixSpec, bg_performance_grid, format_heatmap, run_trial

BASE_MIX = MixSpec.of(
    lc=[("memcached", 0.1), ("xapian", 0.1)], bg=["streamcluster"]
)
LOADS = (0.2, 0.5, 0.8)

POLICIES = (("PARTIES", parties), ("CLITE", fast_clite), ("ORACLE", oracle))


def compute():
    return {
        name: bg_performance_grid(
            BASE_MIX,
            row_job="memcached",
            col_job="xapian",
            bg_job="streamcluster",
            policy_factory=factory,
            policy_name=name,
            row_loads=LOADS,
            col_loads=LOADS,
            seed=0,
            budget=BUDGET,
        )
        for name, factory in POLICIES
    }


def grid_mean(grid) -> float:
    values = [v for row in grid.cells for v in row if v is not None]
    return mean(values) if values else 0.0


def test_fig12_bg_heatmap(benchmark):
    grids = compute()
    report = "\n\n".join(
        format_heatmap(g, as_percent=False) for g in grids.values()
    )
    means = {name: grid_mean(grids[name]) for name, _ in POLICIES}
    report += "\n\nmean feasible-cell BG perf: " + ", ".join(
        f"{k}={v:.3f}" for k, v in means.items()
    )
    save_report("fig12_bg_heatmap", report)

    benchmark.pedantic(
        run_trial,
        args=(BASE_MIX, parties(0)),
        kwargs={"seed": 0, "budget": BUDGET},
        rounds=1,
        iterations=1,
    )

    # Shape 1: every policy meets QoS across the whole grid (the paper
    # notes QoS is met for all points in Fig. 12).
    for name, _ in POLICIES:
        assert all(v is not None for row in grids[name].cells for v in row), name

    # Shape 2: CLITE consistently closer to ORACLE than PARTIES.
    assert means["ORACLE"] >= means["CLITE"] - 1e-9
    assert means["CLITE"] > means["PARTIES"]
    assert means["CLITE"] >= 0.7 * means["ORACLE"]

    # Shape 3: BG performance decays as LC loads rise (darker = better
    # toward the light-load corner).
    oracle_grid = grids["ORACLE"]
    assert oracle_grid.cell(0, 0) >= oracle_grid.cell(2, 2)
