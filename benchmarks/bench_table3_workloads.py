"""Table 3: the LC and BG workload catalogs with calibrated QoS targets."""

from common import save_report
from repro.experiments import format_table
from repro.resources import default_server
from repro.workloads import (
    BG_ACRONYMS,
    calibrate,
    lc_workload,
    parsec_catalog,
    tailbench_catalog,
)


def render_table3() -> str:
    server = default_server()
    lc_rows = [
        [
            name,
            w.description,
            f"{w.qos_latency_ms:.2f} ms",
            f"{w.max_qps:,.0f} qps",
        ]
        for name, w in tailbench_catalog(server).items()
    ]
    bg_rows = [
        [BG_ACRONYMS[name], name, w.description]
        for name, w in parsec_catalog().items()
    ]
    return (
        "Latency-critical workloads (QoS from the Fig. 6 knees):\n"
        + format_table(["workload", "description", "QoS target", "max load"], lc_rows)
        + "\n\nBackground workloads:\n"
        + format_table(["acr", "workload", "description"], bg_rows)
    )


def test_table3_workloads(benchmark):
    server = default_server()
    raw = lc_workload("xapian", calibrated=False)

    benchmark(calibrate, raw, server)

    save_report("table3_workloads", render_table3())

    lc = tailbench_catalog(server)
    assert len(lc) == 5 and len(parsec_catalog()) == 6
    # Shape: memcached is the microsecond-scale outlier, masstree the
    # slowest store — same ordering the Tailbench paper reports.
    assert lc["memcached"].qos_latency_ms < 1.0
    assert lc["masstree"].qos_latency_ms == max(
        w.qos_latency_ms for w in lc.values()
    )
