"""Table 1: shared resources, their partitioning methods and tools."""

from common import save_report
from repro.experiments import format_table
from repro.resources import ConfigurationSpace, IsolationManager, full_server


def render_table1() -> str:
    server = full_server()
    rows = [
        [r.name, r.units, r.allocation_method, r.isolation_tool]
        for r in server.resources
    ]
    return format_table(
        ["shared resource", "units", "allocation method", "isolation tool"], rows
    )


def test_table1_resources(benchmark):
    server = full_server()
    space = ConfigurationSpace(server, 3)
    manager = IsolationManager(server)
    configs = [space.equal_partition()] + [space.max_allocation(j) for j in range(3)]

    def apply_round():
        for config in configs:
            manager.apply(config)
        return manager.total_enforcement_seconds

    benchmark(apply_round)

    report = render_table1()
    save_report("table1_resources", report)

    # Shape: all six Table 1 resources exist, with the paper's tools.
    tools = {r.isolation_tool for r in server.resources}
    assert {"taskset", "Intel CAT", "Intel MBA"} <= tools
    assert server.n_resources == 6
