"""Job migration with a modeled cost.

When a node fails its QoS re-check (a co-located LC job's load ramp has
outgrown what any partition of the node can absorb), the warehouse
evicts the *cheapest-to-move* job and re-admits it elsewhere.  Moving a
job is not free on real hardware — state must be drained, caches
re-warmed — so every migration charges a configurable penalty of
simulated seconds of degraded throughput, accounted per-interval in the
rolling report (the ProKube-style per-iteration placement/migration
accounting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..cluster.state import ClusterNode, JobRequest
from ..core.units import Seconds


@dataclass(frozen=True)
class MigrationRecord:
    """One completed (or failed) migration decision."""

    time_s: Seconds
    job: str
    from_node: int
    #: Destination node index, or -1 when no node would re-admit the job
    #: (it is then dropped and counted as a rejection).
    to_node: int
    cost_s: Seconds

    @property
    def succeeded(self) -> bool:
        return self.to_node >= 0


@dataclass(frozen=True)
class MigrationModel:
    """Victim selection plus the modeled cost of one move.

    Attributes:
        cost_s: Simulated seconds of degraded service charged per
            migrated job (drain + transfer + cache re-warm).
        max_evictions_per_check: Upper bound on how many jobs one
            failing re-check may push off a node; the node's last
            remaining job is never evicted (a job that violates QoS
            alone on a machine violates it anywhere).
    """

    cost_s: Seconds = 5.0
    max_evictions_per_check: int = 2

    def __post_init__(self) -> None:
        if self.cost_s < 0:
            raise ValueError("migration cost cannot be negative")
        if self.max_evictions_per_check < 1:
            raise ValueError("max_evictions_per_check must be >= 1")

    def select_victim(
        self, node_state: ClusterNode, t: Seconds
    ) -> Optional[JobRequest]:
        """The cheapest-to-move request on ``node_state``, or None.

        BG jobs move first — they carry no QoS target, so displacing
        one can never trade a violation for another — then LC jobs by
        ascending load (lighter jobs drain and re-admit more easily).
        Names break ties deterministically.
        """
        if node_state.n_jobs <= 1:
            return None

        def cost_key(request: JobRequest) -> Tuple[int, float, str]:
            if not request.is_lc:
                return (0, 0.0, request.request_name)
            return (1, float(request.load or 0.0), request.request_name)

        return min(node_state.requests, key=cost_key)
