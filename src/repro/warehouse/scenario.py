"""Deterministic arrival/departure scenarios for warehouse runs.

A scenario is a flat, pre-sorted tuple of submit/depart events drawn
from a seeded generator over the paper's workload catalogs (Tailbench
LC + PARSEC BG).  Synthesis is separated from execution so that the
same scenario can be replayed against different services — one big
cluster vs. a sharded federation, quick vs. full probes — and so that
determinism tests can assert that two same-seed syntheses are equal
before ever touching a scheduler.

LC jobs get piecewise-constant load schedules (the Fig. 16 dynamic-load
shape): phase boundaries are spread evenly across the job's lifetime,
phase loads are drawn from the seeded stream, so re-check ticks see
genuine load ramps that exercise migration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Tuple

import numpy as np

from ..core.units import Seconds
from ..workloads import (
    BG_NAMES,
    LC_NAMES,
    LoadSchedule,
    bg_workload,
    lc_workload,
)
from .events import WarehouseJob


@dataclass(frozen=True)
class ScenarioConfig:
    """Knobs of the synthetic job stream.

    Attributes:
        n_jobs: Jobs submitted over the run.
        duration_s: Scenario horizon; arrivals land in the first 70% of
            it, so late departures and re-checks have room to play out.
        lc_fraction: Probability a job is latency-critical.
        mean_lifetime_s: Mean job lifetime (uniform in 0.25x..1.75x).
        min_load / max_load: Range LC phase loads are drawn from.
        n_phases: Load-schedule phases per LC job.
        seed: The one seed behind every random draw.
    """

    n_jobs: int = 200
    duration_s: Seconds = 600.0
    lc_fraction: float = 0.5
    mean_lifetime_s: Seconds = 300.0
    min_load: float = 0.15
    max_load: float = 0.9
    n_phases: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ValueError("a scenario needs at least one job")
        if self.duration_s <= 0 or self.mean_lifetime_s <= 0:
            raise ValueError("duration and lifetime must be positive")
        if not 0 <= self.lc_fraction <= 1:
            raise ValueError("lc_fraction must be in [0, 1]")
        if not 0 < self.min_load <= self.max_load <= 1.0:
            raise ValueError("need 0 < min_load <= max_load <= 1")
        if self.n_phases < 1:
            raise ValueError("n_phases must be >= 1")


@dataclass(frozen=True)
class ScenarioEvent:
    """One scripted event: a submission (with its job) or a departure."""

    time_s: Seconds
    kind: str  # "submit" | "depart"
    name: str
    job: Optional[WarehouseJob] = None


class SubmitTarget(Protocol):
    """Anything a scenario can be loaded into (service or federation)."""

    def submit(self, job: WarehouseJob, at: Seconds) -> int: ...

    def depart(self, name: str, at: Seconds) -> int: ...


def synthesize(config: ScenarioConfig) -> Tuple[ScenarioEvent, ...]:
    """The scripted event stream — a pure function of ``config``."""
    rng = np.random.default_rng(config.seed)
    lc_pool = [lc_workload(name) for name in LC_NAMES]
    bg_pool = [bg_workload(name) for name in BG_NAMES]
    events = []
    for k in range(config.n_jobs):
        arrival = float(rng.uniform(0.0, 0.7 * config.duration_s))
        lifetime = float(rng.uniform(0.25, 1.75)) * config.mean_lifetime_s
        if float(rng.random()) < config.lc_fraction:
            workload = lc_pool[int(rng.integers(len(lc_pool)))]
            name = f"lc-{k:04d}-{workload.name}"
            loads = rng.uniform(
                config.min_load, config.max_load, size=config.n_phases
            )
            # Phase boundaries are absolute simulated seconds, evenly
            # spread across the lifetime; only the loads are random.
            steps = [(0.0, float(loads[0]))]
            for i in range(1, config.n_phases):
                steps.append(
                    (
                        arrival + lifetime * i / config.n_phases,
                        float(loads[i]),
                    )
                )
            job = WarehouseJob.lc(workload, LoadSchedule.steps(steps), name)
        else:
            workload_bg = bg_pool[int(rng.integers(len(bg_pool)))]
            name = f"bg-{k:04d}-{workload_bg.name}"
            job = WarehouseJob.bg(workload_bg, name)
        events.append(ScenarioEvent(arrival, "submit", name, job))
        departure = arrival + lifetime
        if departure < config.duration_s:
            events.append(ScenarioEvent(departure, "depart", name))
    order = {id(e): i for i, e in enumerate(events)}
    events.sort(key=lambda e: (e.time_s, order[id(e)]))
    return tuple(events)


def load_into(target: SubmitTarget, events: Tuple[ScenarioEvent, ...]) -> int:
    """Schedule every scenario event on ``target``; returns the count.

    Events are scheduled in stream order, so the (time, seq) heap order
    — and therefore the whole timeline — is determined by the scenario.
    """
    for event in events:
        if event.kind == "submit":
            assert event.job is not None
            target.submit(event.job, at=event.time_s)
        else:
            target.depart(event.name, at=event.time_s)
    return len(events)
