"""repro.warehouse — the long-lived, event-driven cluster scheduler.

Promotes CLITE's batch placement to a running service over simulated
time: deterministic event core (:mod:`.events`), admission probes
(:mod:`.admission`), QoS-driven migration with modeled cost
(:mod:`.migration`), the single-cluster service (:mod:`.service`),
sharded federation (:mod:`.federation`), scripted scenarios
(:mod:`.scenario`), and the HTTP control plane (:mod:`.api`) behind the
``repro-warehouse`` CLI (:mod:`.cli`).
"""

from .admission import AdmissionProbe, CLITEProbe, QuickProbe, resolve_probe
from .api import (
    GatewayCommand,
    ServiceGateway,
    WarehouseAPIServer,
    job_from_spec,
    make_api_server,
)
from .events import (
    Arrival,
    Departure,
    EventLoop,
    EventQueue,
    Recheck,
    WarehouseJob,
)
from .federation import (
    ROUTING_POLICIES,
    RoutedEntry,
    WarehouseFederation,
    home_shard,
)
from .migration import MigrationModel, MigrationRecord
from .scenario import ScenarioConfig, ScenarioEvent, load_into, synthesize
from .service import PROBE_ENGINE, TimelineEntry, WarehouseService

__all__ = [
    "AdmissionProbe",
    "Arrival",
    "CLITEProbe",
    "Departure",
    "EventLoop",
    "EventQueue",
    "GatewayCommand",
    "MigrationModel",
    "MigrationRecord",
    "PROBE_ENGINE",
    "QuickProbe",
    "ROUTING_POLICIES",
    "Recheck",
    "RoutedEntry",
    "ScenarioConfig",
    "ScenarioEvent",
    "ServiceGateway",
    "TimelineEntry",
    "WarehouseAPIServer",
    "WarehouseFederation",
    "WarehouseJob",
    "WarehouseService",
    "home_shard",
    "job_from_spec",
    "load_into",
    "make_api_server",
    "resolve_probe",
    "synthesize",
]
