"""Sharded federation: many sub-cluster schedulers behind one router.

A warehouse does not run one scheduler over 10,000 machines — it
partitions the fleet into *shards*, each with its own scheduler loop and
observation store, and routes arrivals between them.  The
:class:`WarehouseFederation` reproduces that shape in simulation: a root
event loop owns the timeline, each shard is a full
:class:`~.service.WarehouseService` sharing the root's simulated clock,
and arrivals are routed by a pluggable policy:

* ``round-robin`` — rotate the first shard tried per arrival;
* ``least-loaded`` — try shards by ascending running-job count;
* ``rejection-retry`` — a stable home shard per job name (CRC32, never
  ``hash()`` — that is salted per process), spilling to siblings on
  rejection.

Whatever the policy, routing degrades gracefully: every shard is tried
in preference order before the federation rejects.

Shard admission probes are side-effect-free (see
:meth:`~.service.WarehouseService.probe_admit`), so the root may fan
them out over a thread pool (``concurrent_probes=True``).  Determinism
survives the concurrency because probe *results* are collected per
shard and committed in preference order — the committed decision is a
pure function of the event, never of thread completion order — which the
serial-vs-concurrent equivalence test pins down.  The side-effect-free
half of that bargain is *proven statically*: ``repro-pure --check``
(the RPL9xx family, :mod:`repro.analysis.pure`) closes the probe entry
points over the call graph and fails CI on any mutation of
pre-existing state, fresh RNG/clock draw, or commit-mutator call in a
probe closure.
"""

from __future__ import annotations

import zlib
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from itertools import islice
from typing import Deque, Dict, List, Optional, Tuple, Union

from ..core.engine import CLITEConfig
from ..core.units import Seconds
from ..resources.spec import ServerSpec
from ..sanitizer.hooks import register_shared
from ..telemetry import NULL_TELEMETRY, Telemetry
from ..telemetry.clock import SimulatedClock
from ..server.obstore import ObservationStore
from .events import Arrival, Departure, EventLoop, Payload, Recheck, WarehouseJob
from .migration import MigrationModel
from .service import TIMELINE_LIMIT, TimelineEntry, WarehouseService

ROUTING_POLICIES = ("round-robin", "least-loaded", "rejection-retry")


@dataclass(frozen=True)
class RoutedEntry:
    """One root-level routing decision.

    ``kind`` is ``route`` (admitted on ``shard``/``node``), ``reject``
    (every shard refused), or ``depart``.
    """

    time_s: Seconds
    seq: int
    kind: str
    job: str = ""
    shard: int = -1
    node: int = -1
    detail: str = ""


def home_shard(name: str, n_shards: int) -> int:
    """Stable home shard for a job name (CRC32 — process-independent)."""
    return zlib.crc32(name.encode("utf-8")) % n_shards


class WarehouseFederation:
    """A fleet partitioned into independently scheduled sub-clusters.

    Args:
        n_shards: Number of sub-clusters.
        nodes_per_shard: Fleet size of each shard.
        routing: One of :data:`ROUTING_POLICIES`.
        concurrent_probes: Fan admission probes across shards on a
            thread pool (results are still committed deterministically).
        stores: Optional per-shard observation stores (one each).
        Everything else is forwarded to each shard's
        :class:`~.service.WarehouseService`.

    The federation must be :meth:`close`\\ d (or used as a context
    manager) when ``concurrent_probes`` is on, to shut the pool down.
    """

    def __init__(
        self,
        n_shards: int,
        nodes_per_shard: int,
        routing: str = "least-loaded",
        concurrent_probes: bool = False,
        probe: str = "quick",
        engine_config: Optional[CLITEConfig] = None,
        seed: Optional[int] = 0,
        spec: Optional[ServerSpec] = None,
        max_jobs_per_node: int = 4,
        recheck_period_s: Optional[Seconds] = None,
        migration: Optional[MigrationModel] = None,
        telemetry: Optional[Telemetry] = None,
        stores: Optional[List[Optional[ObservationStore]]] = None,
        max_probe_nodes: int = 8,
        clock: Optional[SimulatedClock] = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("a federation needs at least one shard")
        if routing not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing {routing!r}; pick one of {ROUTING_POLICIES}"
            )
        if stores is not None and len(stores) != n_shards:
            raise ValueError(
                f"got {len(stores)} stores for {n_shards} shards"
            )
        self.routing = routing
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.clock = clock if clock is not None else SimulatedClock()
        self.loop = EventLoop(
            clock=self.clock, recheck_period_s=recheck_period_s
        )
        self.shards: List[WarehouseService] = [
            WarehouseService(
                nodes_per_shard,
                spec=spec,
                probe=probe,
                engine_config=engine_config,
                seed=seed,
                max_jobs_per_node=max_jobs_per_node,
                recheck_period_s=None,  # the root loop owns the ticks
                migration=migration,
                clock=self.clock,
                telemetry=self.telemetry,
                store=stores[i] if stores is not None else None,
                max_probe_nodes=max_probe_nodes,
            )
            for i in range(n_shards)
        ]
        self._pool: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(
                max_workers=n_shards, thread_name_prefix="warehouse-probe"
            )
            if concurrent_probes and n_shards > 1
            else None
        )
        self._routed: Deque[RoutedEntry] = deque(maxlen=TIMELINE_LIMIT)
        self._routed_dropped = 0
        self._rr_next = 0
        self._counts: Dict[str, int] = {
            "arrivals": 0,
            "routed": 0,
            "rejections": 0,
            "departures": 0,
        }
        register_shared(
            self,
            name=f"WarehouseFederation@{id(self):x}",
            container_attrs=("shards",),
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the probe pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "WarehouseFederation":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Public service surface (mirrors WarehouseService)
    # ------------------------------------------------------------------
    @property
    def now_s(self) -> Seconds:
        return self.loop.now_s

    @property
    def routed(self) -> Tuple[RoutedEntry, ...]:
        """Every root routing decision so far, oldest first."""
        return tuple(self._routed)

    @property
    def routed_len(self) -> int:
        """Total routing decisions ever recorded, including aged-out."""
        return self._routed_dropped + len(self._routed)

    def routed_since(self, cursor: int) -> Tuple[RoutedEntry, ...]:
        """Routing decisions at or after absolute position ``cursor``."""
        start = max(cursor - self._routed_dropped, 0)
        return tuple(islice(self._routed, start, None))

    def timeline_cursor(self) -> Tuple[int, ...]:
        """Opaque position marker for :meth:`timeline_since`."""
        return (self.routed_len,) + tuple(
            shard.timeline_len for shard in self.shards
        )

    def timeline_since(
        self, cursor: Tuple[int, ...]
    ) -> Tuple[Union[RoutedEntry, TimelineEntry], ...]:
        """Every decision recorded since ``cursor`` (root + shards).

        The shape matches the historical "routed log then each shard's
        timeline, in shard order" flattening, so a zero cursor yields
        exactly what callers used to rebuild from scratch — and a
        rolling report advancing its cursor per slice copies each entry
        once instead of re-flattening the whole federation every slice.
        """
        entries: List[Union[RoutedEntry, TimelineEntry]] = list(
            self.routed_since(cursor[0])
        )
        for shard, position in zip(self.shards, cursor[1:]):
            entries.extend(shard.timeline_since(position))
        return tuple(entries)

    def submit(self, job: WarehouseJob, at: Seconds) -> int:
        return self.loop.schedule(at, Arrival(job))

    def depart(self, name: str, at: Seconds) -> int:
        return self.loop.schedule(at, Departure(name))

    def run_until(self, t: Seconds) -> int:
        return self.loop.run_until(t, self._handle)

    def run_to_completion(self) -> Dict[str, object]:
        last = self.loop.queue.last_time()
        if last is not None:
            self.run_until(last)
        return self.status()

    def placements(self) -> Dict[str, Tuple[int, int]]:
        """Job name -> (shard index, node index)."""
        out: Dict[str, Tuple[int, int]] = {}
        for shard_index, shard in enumerate(self.shards):
            for name, node in shard.placements().items():
                out[name] = (shard_index, node)
        return out

    def status(self) -> Dict[str, object]:
        """Aggregate snapshot plus every shard's own status."""
        shard_statuses = [shard.status() for shard in self.shards]
        nodes_total = sum(s["nodes_total"] for s in shard_statuses)  # type: ignore[misc]
        nodes_used = sum(s["nodes_used"] for s in shard_statuses)  # type: ignore[misc]
        checks = sum(s["qos_checks"] for s in shard_statuses)  # type: ignore[misc]
        failures = sum(s["qos_check_failures"] for s in shard_statuses)  # type: ignore[misc]
        return {
            "time_s": self.now_s,
            "n_shards": len(self.shards),
            "routing": self.routing,
            "nodes_total": nodes_total,
            "nodes_used": nodes_used,
            "utilization": nodes_used / nodes_total,
            "jobs_running": sum(s.jobs_running for s in self.shards),
            "pending_events": len(self.loop.queue),
            "qos_met_fraction": (
                1.0 if checks == 0 else (checks - failures) / checks
            ),
            "migrations": sum(
                s["migrations"] for s in shard_statuses  # type: ignore[misc]
            ),
            "migration_cost_s": sum(
                shard.migration_cost_s for shard in self.shards
            ),
            **self._counts,
            "shards": shard_statuses,
        }

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _preference(self, job: WarehouseJob) -> List[int]:
        """Shard indices in the order this arrival should try them."""
        n = len(self.shards)
        if self.routing == "round-robin":
            start = self._rr_next
            self._rr_next = (self._rr_next + 1) % n
            return [(start + i) % n for i in range(n)]
        if self.routing == "rejection-retry":
            home = home_shard(job.name, n)
            return [home] + [i for i in range(n) if i != home]
        # least-loaded: ascending running jobs, shard index breaks ties.
        return sorted(range(n), key=lambda i: (self.shards[i].jobs_running, i))

    def _probe_all(
        self, job: WarehouseJob, t: Seconds, order: List[int]
    ) -> Dict[int, Tuple[Optional[int], object, Tuple[int, ...]]]:
        """Probe shards for ``job`` — concurrently when a pool exists.

        Serial mode probes lazily in preference order and stops at the
        first admitting shard; concurrent mode probes every shard and
        keeps all results.  Either way the caller scans ``order`` and
        commits the first hit, so both modes choose identically.
        """
        results: Dict[int, Tuple[Optional[int], object, Tuple[int, ...]]] = {}
        if self._pool is not None:
            futures = {
                i: self._pool.submit(self.shards[i].probe_admit, job, t)
                for i in order
            }
            for i, future in futures.items():
                results[i] = future.result()
            return results
        for i in order:
            outcome = self.shards[i].probe_admit(job, t)
            results[i] = outcome
            if outcome[0] is not None:
                break
        return results

    # ------------------------------------------------------------------
    # Event handling
    # ------------------------------------------------------------------
    def _route_record(self, entry: RoutedEntry) -> None:
        if len(self._routed) == TIMELINE_LIMIT:
            self._routed_dropped += 1
        self._routed.append(entry)

    def _handle(self, t: Seconds, seq: int, payload: Payload) -> None:
        with self.telemetry.tracer.span(
            "warehouse.route", kind=type(payload).__name__.lower(), seq=seq
        ):
            if isinstance(payload, Arrival):
                self._route_arrival(t, seq, payload.job)
            elif isinstance(payload, Departure):
                self._route_departure(t, seq, payload.name)
            elif isinstance(payload, Recheck):
                for shard in self.shards:
                    shard.handle_event(t, seq, payload)

    def _route_arrival(self, t: Seconds, seq: int, job: WarehouseJob) -> None:
        self._counts["arrivals"] += 1
        self.telemetry.metrics.counter("warehouse.route.arrivals").add()
        order = self._preference(job)
        if any(shard.has_job(job.name) for shard in self.shards):
            self._counts["rejections"] += 1
            self._route_record(
                RoutedEntry(
                    time_s=t, seq=seq, kind="reject", job=job.name,
                    detail="duplicate-name",
                )
            )
            return
        results = self._probe_all(job, t, order)
        for shard_index in order:
            target, tentative, verified = results.get(
                shard_index, (None, None, ())
            )
            if target is None or tentative is None:
                continue
            self.shards[shard_index].commit_admit(
                job, t, seq, target, tentative, verified  # type: ignore[arg-type]
            )
            self._counts["routed"] += 1
            self.telemetry.metrics.counter(
                "warehouse.route.admitted", shard=str(shard_index)
            ).add()
            self._route_record(
                RoutedEntry(
                    time_s=t, seq=seq, kind="route", job=job.name,
                    shard=shard_index, node=target,
                )
            )
            return
        self._counts["rejections"] += 1
        self.telemetry.metrics.counter("warehouse.route.rejections").add()
        self._route_record(
            RoutedEntry(
                time_s=t, seq=seq, kind="reject", job=job.name,
                detail="capacity",
            )
        )

    def _route_departure(self, t: Seconds, seq: int, name: str) -> None:
        self._counts["departures"] += 1
        for shard_index, shard in enumerate(self.shards):
            if shard.has_job(name):
                shard.handle_event(t, seq, Departure(name))
                self._route_record(
                    RoutedEntry(
                        time_s=t, seq=seq, kind="depart", job=name,
                        shard=shard_index,
                    )
                )
                return
        self._route_record(
            RoutedEntry(
                time_s=t, seq=seq, kind="depart", job=name, detail="unknown"
            )
        )
