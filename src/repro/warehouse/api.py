"""The running-service surface: HTTP control plane for a warehouse run.

Mirrors :mod:`repro.telemetry.serve` — stdlib ``ThreadingHTTPServer``,
ephemeral port 0 binding, handlers reading server attributes — and adds
the control endpoints the issue asks for:

* ``POST /submit`` — queue a job submission (JSON spec, see
  :func:`job_from_spec`);
* ``POST /depart`` — queue a departure by job name;
* ``GET /status`` — the latest published service snapshot as JSON;
* ``GET /metrics`` — the live Prometheus rendering, mounted next to the
  status endpoint when a registry is attached.

Handlers run on server threads while the scheduler runs the event loop
on the driver thread, and the scheduler core is deliberately
single-threaded.  The :class:`ServiceGateway` is the only object both
sides touch: handlers *enqueue* commands and *read* the last published
status under a lock that is never held across blocking work (the
RPL802 discipline); the driver drains the inbox and publishes a fresh
snapshot between ``run_until`` slices.  The scheduler itself never sees
another thread.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple, Union

from ..core.units import Seconds
from ..sanitizer.hooks import register_shared
from ..telemetry.export import prometheus_text
from ..telemetry.metrics import MetricRegistry
from ..telemetry.serve import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from ..workloads import (
    BG_NAMES,
    LC_NAMES,
    LoadSchedule,
    bg_workload,
    lc_workload,
)
from .events import WarehouseJob

JSON_CONTENT_TYPE = "application/json; charset=utf-8"


@dataclass(frozen=True)
class GatewayCommand:
    """One control-plane request waiting for the driver to apply it."""

    kind: str  # "submit" | "depart"
    name: str
    job: Optional[WarehouseJob] = None
    #: Requested simulated time, or None for "as soon as possible" (the
    #: driver schedules it at the loop's current time).
    at_s: Optional[Seconds] = None


def job_from_spec(spec: Dict[str, object]) -> GatewayCommand:
    """Parse a ``POST /submit`` body into a submission command.

    The spec names a catalog workload (Tailbench LC or PARSEC BG) and
    optionally a job name, an ``at`` time, and — for LC jobs — either a
    constant ``load`` or a ``schedule`` of ``[start_s, load]`` steps::

        {"workload": "memcached", "name": "mc-1", "load": 0.6}
        {"workload": "xapian", "schedule": [[0, 0.3], [120, 0.9]]}
        {"workload": "canneal", "at": 42.0}

    Raises ValueError on anything malformed (the handler turns that
    into a 400).
    """
    workload_name = spec.get("workload")
    if not isinstance(workload_name, str):
        raise ValueError("spec needs a 'workload' name")
    name = spec.get("name", workload_name)
    if not isinstance(name, str) or not name:
        raise ValueError("'name' must be a non-empty string")
    at = spec.get("at")
    if at is not None and not isinstance(at, (int, float)):
        raise ValueError("'at' must be a number of simulated seconds")
    if workload_name in LC_NAMES:
        schedule: Union[LoadSchedule, float]
        raw_schedule = spec.get("schedule")
        if raw_schedule is not None:
            try:
                schedule = LoadSchedule.steps(
                    [(float(t), float(load)) for t, load in raw_schedule]  # type: ignore[union-attr]
                )
            except (TypeError, ValueError) as exc:
                raise ValueError(f"bad 'schedule': {exc}") from exc
        else:
            load = spec.get("load", 0.5)
            if not isinstance(load, (int, float)):
                raise ValueError("'load' must be a number")
            schedule = float(load)
        job = WarehouseJob.lc(lc_workload(workload_name), schedule, name)
    elif workload_name in BG_NAMES:
        if spec.get("load") is not None or spec.get("schedule") is not None:
            raise ValueError("BG jobs take neither 'load' nor 'schedule'")
        job = WarehouseJob.bg(bg_workload(workload_name), name)
    else:
        raise ValueError(
            f"unknown workload {workload_name!r}; "
            f"LC: {LC_NAMES}, BG: {BG_NAMES}"
        )
    return GatewayCommand(
        kind="submit",
        name=name,
        job=job,
        at_s=float(at) if at is not None else None,
    )


class ServiceGateway:
    """The thread boundary between HTTP handlers and the driver loop.

    The lock guards only the inbox list and the published status bytes;
    JSON encoding, spec parsing, and socket writes all happen outside
    it, so no blocking call ever runs under the lock.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inbox: List[GatewayCommand] = []
        self._status_bytes = b"{}"
        register_shared(
            self,
            name=f"ServiceGateway@{id(self):x}",
            lock_attrs=("_lock",),
            container_attrs=("_inbox",),
        )

    def enqueue(self, command: GatewayCommand) -> None:
        """Handler side: queue a command for the driver."""
        with self._lock:
            self._inbox.append(command)

    def drain(self) -> List[GatewayCommand]:
        """Driver side: take every queued command (oldest first)."""
        with self._lock:
            commands, self._inbox = self._inbox, []
        return commands

    def publish(self, status: Dict[str, object]) -> None:
        """Driver side: refresh what ``GET /status`` serves."""
        body = json.dumps(status, indent=2, sort_keys=True).encode("utf-8")
        with self._lock:
            self._status_bytes = body

    def status_bytes(self) -> bytes:
        """Handler side: the last published snapshot."""
        with self._lock:
            return self._status_bytes


class _WarehouseHandler(BaseHTTPRequestHandler):
    """Routes the control plane; silent on the access log."""

    server_version = "repro-warehouse/1.0"

    def _respond(
        self, code: int, body: bytes, content_type: str = JSON_CONTENT_TYPE
    ) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _respond_json(self, code: int, payload: Dict[str, object]) -> None:
        self._respond(code, json.dumps(payload).encode("utf-8"))

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        gateway: ServiceGateway = self.server.gateway  # type: ignore[attr-defined]
        registry: Optional[MetricRegistry] = (
            self.server.registry  # type: ignore[attr-defined]
        )
        if path in ("/", "/status"):
            self._respond(200, gateway.status_bytes())
        elif path == "/metrics":
            if registry is None:
                self.send_error(404, "no metric registry attached")
                return
            self._respond(
                200,
                prometheus_text(registry).encode("utf-8"),
                content_type=PROMETHEUS_CONTENT_TYPE,
            )
        else:
            self.send_error(404, "try /status or /metrics")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        gateway: ServiceGateway = self.server.gateway  # type: ignore[attr-defined]
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            spec = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._respond_json(400, {"error": f"bad JSON body: {exc}"})
            return
        if not isinstance(spec, dict):
            self._respond_json(400, {"error": "body must be a JSON object"})
            return
        if path == "/submit":
            try:
                command = job_from_spec(spec)
            except ValueError as exc:
                self._respond_json(400, {"error": str(exc)})
                return
        elif path == "/depart":
            name = spec.get("name")
            if not isinstance(name, str) or not name:
                self._respond_json(400, {"error": "'name' must be a string"})
                return
            at = spec.get("at")
            if at is not None and not isinstance(at, (int, float)):
                self._respond_json(400, {"error": "'at' must be a number"})
                return
            command = GatewayCommand(
                kind="depart",
                name=name,
                at_s=float(at) if at is not None else None,
            )
        else:
            self.send_error(404, "try /submit or /depart")
            return
        gateway.enqueue(command)
        self._respond_json(202, {"queued": command.kind, "name": command.name})

    def log_message(self, format: str, *args: object) -> None:
        pass  # control traffic is not worth a stderr line each


class WarehouseAPIServer(ThreadingHTTPServer):
    """The bound control-plane endpoint for one warehouse run."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        gateway: ServiceGateway,
        registry: Optional[MetricRegistry] = None,
    ) -> None:
        super().__init__(address, _WarehouseHandler)
        self.gateway = gateway
        self.registry = registry
        # The server object crosses into the serve_forever thread while
        # the driver keeps a handle for shutdown(); its mutable state is
        # stdlib socketserver machinery plus the (lock-guarded) gateway.
        register_shared(self, name=f"WarehouseAPIServer@{id(self):x}")

    @property
    def port(self) -> int:
        """The bound port (useful when constructed with port 0)."""
        return int(self.server_address[1])

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"


def make_api_server(
    gateway: ServiceGateway,
    registry: Optional[MetricRegistry] = None,
    host: str = "127.0.0.1",
    port: int = 0,
) -> WarehouseAPIServer:
    """Bind (but do not start) the control plane.

    Port 0 picks a free ephemeral port; read it back from
    :attr:`WarehouseAPIServer.port`.  Call ``serve_forever()`` on a
    thread to serve, and ``shutdown()`` + ``server_close()`` when done.
    """
    return WarehouseAPIServer((host, port), gateway, registry)
