"""Deterministic discrete-event core for the warehouse service.

The warehouse promotes placement from a batch call to a *service*: jobs
arrive, live for a while under time-varying load, and depart, and every
scheduling decision happens at a definite instant of simulated time.
This module provides the substrate that keeps those instants
reproducible: a heap-backed :class:`EventQueue` ordered by
``(time, seq)`` — ties broken by submission order, never by payload
contents — and an :class:`EventLoop` that drains it against the
injectable :class:`~repro.telemetry.clock.SimulatedClock`, interleaving
periodic re-check ticks at a fixed cadence.

Two same-seed runs therefore produce bit-identical event timelines: the
heap order is a pure function of what was scheduled, and the clock only
moves when an event is processed (Papadopoulos et al.'s requirement for
reproducible dynamic-allocation experiments).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Union

from ..core.units import Seconds
from ..telemetry.clock import SimulatedClock
from ..workloads.base import BGWorkload, LCWorkload
from ..workloads.loadgen import LoadSchedule

#: Loads handed to admission probes are clamped into this range: a
#: schedule may legitimately dip to 0 (an idle phase) or overshoot 1.0
#: (a flash crowd), but a :class:`~repro.cluster.state.JobRequest`
#: demands a load in (0, 1].
MIN_PROBE_LOAD = 0.01
MAX_PROBE_LOAD = 1.0


@dataclass(frozen=True)
class WarehouseJob:
    """One job as the warehouse sees it: workload + lifetime load shape.

    Unlike a :class:`~repro.cluster.state.JobRequest` (a point-in-time
    placement request at a fixed load), a warehouse job carries its
    whole :class:`~repro.workloads.loadgen.LoadSchedule` — phase starts
    are absolute simulated seconds — so re-check ticks can ask "what is
    this job's load *now*?" long after admission.
    """

    workload: Union[LCWorkload, BGWorkload]
    name: str
    schedule: Optional[LoadSchedule] = None

    def __post_init__(self) -> None:
        if isinstance(self.workload, LCWorkload):
            if self.schedule is None:
                raise ValueError(f"LC job {self.name!r} needs a load schedule")
        elif self.schedule is not None:
            raise ValueError(f"BG job {self.name!r} does not take a schedule")

    @property
    def is_lc(self) -> bool:
        return isinstance(self.workload, LCWorkload)

    @property
    def has_static_load(self) -> bool:
        """True when this job's load can never change between ticks.

        BG jobs carry no schedule and constant schedules never move, so
        neither can invalidate a verified placement on its own; only
        jobs with genuinely phased schedules make their host node
        *volatile* (rechecked every tick even without churn).
        """
        return self.schedule is None or self.schedule.is_constant

    @staticmethod
    def lc(
        workload: LCWorkload,
        schedule: Union[LoadSchedule, float],
        name: Optional[str] = None,
    ) -> "WarehouseJob":
        """An LC job; a bare float becomes a constant schedule."""
        if not isinstance(schedule, LoadSchedule):
            schedule = LoadSchedule.constant(float(schedule))
        return WarehouseJob(
            workload=workload,
            name=name if name is not None else workload.name,
            schedule=schedule,
        )

    @staticmethod
    def bg(workload: BGWorkload, name: Optional[str] = None) -> "WarehouseJob":
        return WarehouseJob(
            workload=workload,
            name=name if name is not None else workload.name,
        )

    def load_at(self, t: Seconds) -> Optional[float]:
        """Effective (probe-clamped) load fraction at time ``t``."""
        if self.schedule is None:
            return None
        raw = self.schedule.load_at(t)
        return min(max(raw, MIN_PROBE_LOAD), MAX_PROBE_LOAD)


@dataclass(frozen=True)
class Arrival:
    """A job asking for admission."""

    job: WarehouseJob


@dataclass(frozen=True)
class Departure:
    """A placed job leaving the cluster."""

    name: str


@dataclass(frozen=True)
class Recheck:
    """A periodic QoS re-verification tick."""


Payload = Union[Arrival, Departure, Recheck]


class EventQueue:
    """A min-heap of ``(time, seq, payload)`` entries.

    ``seq`` is a monotone push counter, so events at equal times pop in
    submission order and payloads are never compared — the heap order is
    deterministic by construction.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Payload]] = []
        self._seq = 0

    def push(self, time_s: Seconds, payload: Payload) -> int:
        """Schedule ``payload`` at ``time_s``; returns its sequence id."""
        seq = self._seq
        self._seq += 1
        heapq.heappush(self._heap, (float(time_s), seq, payload))
        return seq

    def pop(self) -> Tuple[float, int, Payload]:
        return heapq.heappop(self._heap)

    def next_seq(self) -> int:
        """Claim the next sequence id without queueing anything (used to
        stamp lazily synthesized re-check ticks)."""
        seq = self._seq
        self._seq += 1
        return seq

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def last_time(self) -> Optional[float]:
        """Latest scheduled time, or None when empty (O(n) scan)."""
        if not self._heap:
            return None
        return max(entry[0] for entry in self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class EventLoop:
    """Drains an :class:`EventQueue` against a simulated clock.

    Between explicit events the loop synthesizes :class:`Recheck` ticks
    every ``recheck_period_s`` simulated seconds (first tick one full
    period in).  Ticks are generated lazily — they never sit in the
    heap — so an idle service scheduled far into the future costs
    nothing until :meth:`run_until` actually crosses the tick times.

    Ordering discipline: all heap events at time ``T`` are processed
    *before* a re-check tick at the same ``T``, so a tick always sees
    the post-churn cluster state of its instant.
    """

    def __init__(
        self,
        clock: Optional[SimulatedClock] = None,
        recheck_period_s: Optional[Seconds] = None,
    ) -> None:
        if recheck_period_s is not None and recheck_period_s <= 0:
            raise ValueError("recheck_period_s must be positive")
        self.clock = clock if clock is not None else SimulatedClock()
        self.queue = EventQueue()
        self.recheck_period_s = recheck_period_s
        self._next_recheck_s = (
            self.clock.now() + recheck_period_s
            if recheck_period_s is not None
            else None
        )

    @property
    def now_s(self) -> Seconds:
        return self.clock.now()

    def schedule(self, at_s: Seconds, payload: Payload) -> int:
        """Queue ``payload``; the past is not schedulable."""
        if at_s < self.clock.now():
            raise ValueError(
                f"cannot schedule at t={at_s} (clock is at {self.clock.now()})"
            )
        return self.queue.push(at_s, payload)

    def _advance_to(self, t: Seconds) -> None:
        now = self.clock.now()
        if t > now:
            self.clock.tick(t - now)

    def run_until(
        self,
        t: Seconds,
        handler: Callable[[float, int, Payload], None],
    ) -> int:
        """Process every event (and tick) with time <= ``t``; returns count.

        The clock is advanced to each event's time before its handler
        runs and lands exactly on ``t`` afterwards, so a subsequent
        ``run_until`` resumes where this one stopped.
        """
        if t < self.clock.now():
            raise ValueError(
                f"cannot run to t={t} (clock is at {self.clock.now()})"
            )
        processed = 0
        while True:
            head = self.queue.peek_time()
            tick = self._next_recheck_s
            has_event = head is not None and head <= t
            has_tick = tick is not None and tick <= t
            if has_event and (not has_tick or head <= tick):  # type: ignore[operator]
                time_s, seq, payload = self.queue.pop()
                self._advance_to(time_s)
                handler(time_s, seq, payload)
            elif has_tick:
                assert tick is not None and self.recheck_period_s is not None
                self._advance_to(tick)
                self._next_recheck_s = tick + self.recheck_period_s
                handler(tick, self.queue.next_seq(), Recheck())
            else:
                break
            processed += 1
        self._advance_to(t)
        return processed
