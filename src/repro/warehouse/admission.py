"""Admission probes: "would this node still meet QoS with that job set?"

Admission control is the paper's bootstrap check promoted to a service
decision: before a job lands on a node, the warehouse asks whether a
QoS-meeting partition *exists* for the tentative job set.  Two probe
flavors trade fidelity for wall-clock:

* :class:`CLITEProbe` — the full answer: run a (small-budget) CLITE BO
  search via :func:`~repro.cluster.scheduler.verify_node`.  Shares the
  warehouse's :class:`~repro.server.obstore.ObservationStore`, so
  repeated probes of recurring job sets skip the physics.
* :class:`QuickProbe` — a sufficient-condition screen: evaluate a small
  deterministic candidate set of partitions (the equal split plus
  LC-weighted splits built through the unit-cube projection) against
  the simulator's noise-free truth.  Admits only when a candidate
  provably meets QoS — it can reject sets the full search would have
  admitted, never the reverse — and costs microseconds, which is what
  makes thousand-node scenarios with hundreds of arrivals tractable.

Both flavors are pure functions of ``(node state, seed)``: probing
commits nothing and perturbs nothing, so federation can race probes
across shards on a thread pool without disturbing the event timeline.
Both ``check`` methods are declared in ``[tool.repro-lint.pure]`` and
the promise is enforced statically — ``repro-pure --check`` (RPL901,
:mod:`repro.analysis.pure`) fails CI on any write to pre-existing
state anywhere in their call closure.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Tuple

import numpy as np

from ..cluster.scheduler import verify_node
from ..cluster.state import ClusterNode
from ..core.engine import CLITEConfig
from ..server.node import Node
from ..server.obstore import ObservationStore
from ..telemetry import NULL_TELEMETRY, Telemetry


class AdmissionProbe(ABC):
    """Decides whether a tentative node job set is QoS-feasible."""

    name: str = "probe"

    @abstractmethod
    def check(self, node_state: ClusterNode, seed: Optional[int]) -> bool:
        """True when ``node_state``'s job set can meet every LC QoS."""

    def attach(
        self,
        store: Optional[ObservationStore],
        telemetry: Optional[Telemetry],
    ) -> None:
        """Adopt the owning service's shared store/telemetry context."""


class QuickProbe(AdmissionProbe):
    """Noise-free screening over a fixed candidate-partition set.

    Candidates are the equal partition plus one LC-favoring partition
    per boost factor: LC jobs weigh ``boost * (0.15 + load)`` spare
    units, BG jobs weigh 1, projected onto the feasible lattice through
    :meth:`~repro.resources.allocation.ConfigurationSpace.from_unit_cube`
    (largest-remainder rounding, deterministic tie-breaks).  A node
    passes as soon as one candidate's noise-free truth meets every LC
    QoS target.
    """

    name = "quick"

    #: LC weight multipliers, mildest first: the earlier a candidate
    #: admits, the fewer truths are evaluated.
    BOOSTS: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0)

    def __init__(self, seed: Optional[int] = 0) -> None:
        self.seed = seed
        self._telemetry = NULL_TELEMETRY

    def attach(
        self,
        store: Optional[ObservationStore],
        telemetry: Optional[Telemetry],
    ) -> None:
        del store  # truths are evaluated directly; nothing to persist
        if telemetry is not None:
            self._telemetry = telemetry

    def _candidates(self, node: Node) -> List[np.ndarray]:
        """Unit-cube weight vectors for the LC-favoring candidates."""
        loads = [
            job.load.load_at(0.0) if job.is_lc and job.load is not None else None
            for job in node.jobs
        ]
        vectors = []
        for boost in self.BOOSTS:
            weights = np.array(
                [
                    boost * (0.15 + load) if load is not None else 1.0
                    for load in loads
                ]
            )
            cube = np.repeat(weights, node.space.n_resources)
            peak = float(cube.max())
            if peak > 0:
                cube = cube / peak
            vectors.append(cube)
        return vectors

    def check(self, node_state: ClusterNode, seed: Optional[int]) -> bool:
        node = node_state.build_node(
            seed=seed if seed is not None else self.seed
        )
        if not node.lc_indices:
            return True  # nothing with a QoS target to violate
        tried = set()
        configs = [node.space.equal_partition()]
        configs.extend(
            node.space.from_unit_cube(vec) for vec in self._candidates(node)
        )
        for config in configs:
            key = config.flat()
            if key in tried:
                continue
            tried.add(key)
            self._telemetry.metrics.counter("warehouse.probe.truths").add()
            if node.true_performance(config).all_qos_met:
                return True
        return False


class CLITEProbe(AdmissionProbe):
    """The full verification: a small-budget CLITE BO run per probe.

    This is :class:`~repro.cluster.scheduler.CLITEPlacement`'s
    admissibility check as a reusable object.  Each probe increments the
    existing ``cluster.verify.samples`` counter (per node label) and
    reads/feeds the shared observation store, so re-probing a recurring
    job set is near-free once the store is warm.
    """

    name = "clite"

    def __init__(self, engine_config: Optional[CLITEConfig] = None) -> None:
        self.engine_config = engine_config
        self._store: Optional[ObservationStore] = None
        self._telemetry: Optional[Telemetry] = None

    def attach(
        self,
        store: Optional[ObservationStore],
        telemetry: Optional[Telemetry],
    ) -> None:
        self._store = store
        self._telemetry = telemetry

    def check(self, node_state: ClusterNode, seed: Optional[int]) -> bool:
        qos_met, _ = verify_node(
            node_state,
            self.engine_config,
            seed,
            telemetry=self._telemetry,
            store=self._store,
        )
        return qos_met


def resolve_probe(
    probe: "AdmissionProbe | str",
    engine_config: Optional[CLITEConfig] = None,
) -> AdmissionProbe:
    """Probe instances pass through; ``"quick"``/``"clite"`` construct one."""
    if isinstance(probe, AdmissionProbe):
        return probe
    if probe == "quick":
        return QuickProbe()
    if probe == "clite":
        return CLITEProbe(engine_config)
    raise ValueError(f"unknown admission probe {probe!r} (quick or clite)")
