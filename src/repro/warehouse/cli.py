"""Command-line interface for the warehouse service.

Installed as ``repro-warehouse``.  The single ``run`` subcommand
synthesizes a deterministic arrival/departure scenario and plays it
against a cluster (or a sharded federation), printing a rolling report
as simulated time advances::

    repro-warehouse run --nodes 200 --shards 2 --jobs 120
    repro-warehouse run --nodes 50 --jobs 40 --probe clite --store obs.jsonl
    repro-warehouse run --serve --nodes 100 --jobs 60

``--serve`` mounts the HTTP control plane (``GET /status``,
``GET /metrics``, ``POST /submit``, ``POST /depart``) while the
scenario runs, pacing simulated time against short wall-clock sleeps so
a human (or a test) can poll and inject jobs mid-run.  ``--check`` runs
a small scenario twice and verifies the two timelines are identical,
then replays a clite-probe scenario serially and with concurrent
probes over a shared observation store and diffs those timelines too —
the determinism smoke test CI runs on every push.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
from typing import Dict, List, Optional, Sequence, Union

from ..core import CLITEConfig
from ..server.obstore import ObservationStore
from ..telemetry import Telemetry
from ..telemetry.clock import SimulatedClock
from .api import ServiceGateway, make_api_server
from .federation import ROUTING_POLICIES, WarehouseFederation
from .migration import MigrationModel
from .scenario import ScenarioConfig, load_into, synthesize
from .service import WarehouseService

Target = Union[WarehouseService, WarehouseFederation]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-warehouse",
        description="Event-driven warehouse-scale scheduler service.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    run = sub.add_parser("run", help="play a synthetic scenario")
    run.add_argument("--nodes", type=int, default=100,
                     help="total nodes (split across shards)")
    run.add_argument("--shards", type=int, default=1,
                     help="sub-clusters (1 = a single service)")
    run.add_argument("--jobs", type=int, default=80,
                     help="jobs submitted over the scenario")
    run.add_argument("--duration", type=float, default=600.0,
                     help="scenario horizon in simulated seconds")
    run.add_argument("--lc-fraction", type=float, default=0.5,
                     help="probability a job is latency-critical")
    run.add_argument("--seed", type=int, default=0,
                     help="one seed for scenario and probes")
    run.add_argument("--probe", choices=("quick", "clite"), default="quick",
                     help="admission probe flavor")
    run.add_argument("--routing", choices=ROUTING_POLICIES,
                     default="least-loaded", help="federation routing policy")
    run.add_argument("--concurrent-probes", action="store_true",
                     help="fan shard probes out on a thread pool")
    run.add_argument("--recheck", type=float, default=60.0,
                     help="QoS re-check period in simulated seconds "
                          "(0 disables ticks)")
    run.add_argument("--migration-cost", type=float, default=5.0,
                     help="simulated seconds charged per migration")
    run.add_argument("--report-every", type=float, default=60.0,
                     help="rolling-report interval in simulated seconds")
    run.add_argument("--store", default=None, metavar="PATH",
                     help="observation store path (clite probes; "
                          "per-shard suffixes are added)")
    run.add_argument("--json", action="store_true", dest="as_json",
                     help="emit the report as JSON instead of text")
    run.add_argument("--serve", action="store_true",
                     help="mount the HTTP control plane while running")
    run.add_argument("--host", default="127.0.0.1", help="API bind host")
    run.add_argument("--port", type=int, default=0,
                     help="API port (0 = ephemeral)")
    run.add_argument("--serve-tick", type=float, default=0.05,
                     help="wall seconds slept per report slice with --serve")
    run.add_argument("--hold", type=float, default=0.0,
                     help="wall seconds to keep serving after completion")
    run.add_argument("--check", action="store_true",
                     help="small fixed scenario, run twice, verify "
                          "determinism; exit non-zero on mismatch")
    return parser


def _build_target(
    args: argparse.Namespace,
    telemetry: Telemetry,
    clock: SimulatedClock,
    stores: Optional[List[Optional[ObservationStore]]],
) -> Target:
    recheck = args.recheck if args.recheck > 0 else None
    migration = MigrationModel(cost_s=args.migration_cost)
    if args.shards > 1:
        return WarehouseFederation(
            n_shards=args.shards,
            nodes_per_shard=args.nodes // args.shards,
            routing=args.routing,
            concurrent_probes=args.concurrent_probes,
            probe=args.probe,
            seed=args.seed,
            recheck_period_s=recheck,
            migration=migration,
            telemetry=telemetry,
            stores=stores,
            clock=clock,
        )
    return WarehouseService(
        args.nodes,
        probe=args.probe,
        seed=args.seed,
        recheck_period_s=recheck,
        migration=migration,
        clock=clock,
        telemetry=telemetry,
        store=stores[0] if stores else None,
    )


def _report_row(status: Dict[str, object]) -> Dict[str, object]:
    keys = (
        "time_s", "jobs_running", "nodes_used", "utilization",
        "rejections", "migrations", "migration_cost_s", "qos_met_fraction",
        "pending_events",
    )
    return {k: status[k] for k in keys if k in status}


def _print_row(row: Dict[str, object]) -> None:
    print(
        "t={time_s:8.1f}s  jobs={jobs_running:4d}  nodes={nodes_used:4d}  "
        "util={utilization:5.1%}  rej={rejections:3d}  mig={migrations:3d}  "
        "migcost={migration_cost_s:6.1f}s  qos={qos_met_fraction:6.1%}".format(
            **row  # type: ignore[arg-type]
        )
    )


def _apply_gateway(target: Target, gateway: ServiceGateway) -> None:
    """Drain queued control-plane commands onto the event loop."""
    now = target.now_s
    for command in gateway.drain():
        at = command.at_s if command.at_s is not None else now
        at = max(at, now)  # the past is not schedulable
        if command.kind == "submit" and command.job is not None:
            target.submit(command.job, at=at)
        elif command.kind == "depart":
            target.depart(command.name, at=at)


def _cursor_of(target: Target) -> Union[int, tuple]:
    """Current timeline position, for incremental :func:`_decisions_since`."""
    if isinstance(target, WarehouseFederation):
        return target.timeline_cursor()
    return target.timeline_len


def _decisions_since(target: Target, cursor: Union[int, tuple]) -> tuple:
    """Decisions recorded since ``cursor`` — each entry copied once per
    run instead of re-flattening the whole federation every slice."""
    return target.timeline_since(cursor)  # type: ignore[arg-type]


def _run_scenario(
    args: argparse.Namespace,
    target: Target,
    gateway: Optional[ServiceGateway],
) -> Dict[str, object]:
    """Advance simulated time in report slices; returns the final status."""
    rows: List[Dict[str, object]] = []
    horizon = args.duration
    step = max(args.report_every, 1e-6)
    t = 0.0
    cursor = _cursor_of(target)
    while t < horizon:
        t = min(t + step, horizon)
        if gateway is not None:
            _apply_gateway(target, gateway)
        target.run_until(t)
        status = target.status()
        if gateway is not None:
            gateway.publish(status)
            time.sleep(args.serve_tick)
        row = _report_row(status)
        row["decisions"] = len(_decisions_since(target, cursor))
        cursor = _cursor_of(target)
        rows.append(row)
        if not args.as_json:
            _print_row(rows[-1])
    # Stragglers scheduled past the horizon (late departures).
    final = target.run_to_completion()
    if gateway is not None:
        gateway.publish(final)
    if args.as_json:
        print(json.dumps({"rows": rows, "final": final}, indent=2))
    else:
        _print_row(_report_row(final))
    return final


def _timeline_of(target: Target) -> tuple:
    if isinstance(target, WarehouseFederation):
        return _decisions_since(
            target, (0,) * (len(target.shards) + 1)
        )
    return target.timeline


def _run_check(args: argparse.Namespace) -> int:
    """Two determinism smoke tests; identical timelines or bust.

    First a small fixed scenario is played twice through the same
    federation shape (same-seed bit-identity).  Then the same shape is
    played once with serial probes and once with ``concurrent_probes``
    under ``--probe clite`` with one observation store shared by both
    shards — the exact configuration whose determinism rests on the
    probe/commit split that ``repro-pure --check`` proves statically.
    """
    config = ScenarioConfig(
        n_jobs=30, duration_s=300.0, lc_fraction=0.5, seed=args.seed
    )
    events = synthesize(config)
    outcomes = []
    for _ in range(2):
        clock = SimulatedClock()
        with WarehouseFederation(
            n_shards=2,
            nodes_per_shard=20,
            routing=args.routing,
            concurrent_probes=args.concurrent_probes,
            seed=args.seed,
            recheck_period_s=30.0,
            clock=clock,
        ) as federation:
            load_into(federation, events)
            status = federation.run_to_completion()
            outcomes.append(
                (
                    _timeline_of(federation),
                    federation.placements(),
                    status["jobs_running"],
                )
            )
    if outcomes[0] != outcomes[1]:
        print("warehouse check: FAILED (same-seed runs diverged)")
        return 1

    clite_config = ScenarioConfig(
        n_jobs=12, duration_s=200.0, lc_fraction=0.5, seed=args.seed
    )
    clite_events = synthesize(clite_config)
    probe_engine = CLITEConfig(
        max_iterations=10,
        post_qos_iterations=3,
        refine_budget=5,
        confirm_top=1,
        n_restarts=3,
    )
    clite_outcomes = []
    with tempfile.TemporaryDirectory(prefix="repro-check-") as tmp:
        for concurrent in (False, True):
            store_path = f"{tmp}/obs-{'conc' if concurrent else 'serial'}.jsonl"
            with ObservationStore(store_path) as store, WarehouseFederation(
                n_shards=2,
                nodes_per_shard=20,
                routing=args.routing,
                concurrent_probes=concurrent,
                probe="clite",
                engine_config=probe_engine,
                seed=args.seed,
                recheck_period_s=30.0,
                clock=SimulatedClock(),
                stores=[store, store],
            ) as federation:
                load_into(federation, clite_events)
                status = federation.run_to_completion()
                clite_outcomes.append(
                    (
                        _timeline_of(federation),
                        federation.placements(),
                        status["jobs_running"],
                    )
                )
    if clite_outcomes[0] != clite_outcomes[1]:
        print(
            "warehouse check: FAILED "
            "(serial vs concurrent clite probes diverged)"
        )
        return 1

    timeline, placements, running = outcomes[0]
    clite_timeline = clite_outcomes[0][0]
    print(
        f"warehouse check: OK ({len(events)} events, "
        f"{len(timeline)} decisions, {running} jobs still running, "
        f"{len(placements)} placements, bit-identical across runs; "
        f"clite serial == concurrent over a shared store, "
        f"{len(clite_timeline)} decisions)"
    )
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    if args.check:
        return _run_check(args)
    if args.nodes < 1 or args.jobs < 1:
        print("need at least one node and one job", file=sys.stderr)
        return 2
    if args.shards < 1 or args.shards > args.nodes:
        print("shards must be in [1, nodes]", file=sys.stderr)
        return 2
    stores: Optional[List[Optional[ObservationStore]]] = None
    if args.store is not None:
        n_stores = max(args.shards, 1)
        stores = [
            ObservationStore(
                args.store if n_stores == 1 else f"{args.store}.shard{i}"
            )
            for i in range(n_stores)
        ]
    clock = SimulatedClock()
    telemetry = Telemetry.enabled(clock=clock)
    target = _build_target(args, telemetry, clock, stores)
    gateway: Optional[ServiceGateway] = None
    server = None
    server_thread = None
    try:
        if args.serve:
            gateway = ServiceGateway()
            gateway.publish(target.status())
            server = make_api_server(
                gateway, telemetry.metrics, host=args.host, port=args.port
            )
            server_thread = threading.Thread(
                target=server.serve_forever, daemon=True
            )
            server_thread.start()
            print(f"serving on {server.url}  (GET /status, GET /metrics, "
                  "POST /submit, POST /depart)")
        config = ScenarioConfig(
            n_jobs=args.jobs,
            duration_s=args.duration,
            lc_fraction=args.lc_fraction,
            seed=args.seed,
        )
        load_into(target, synthesize(config))
        _run_scenario(args, target, gateway)
        if args.serve and args.hold > 0:
            time.sleep(args.hold)
        return 0
    finally:
        if server is not None:
            server.shutdown()
            server.server_close()
        if isinstance(target, WarehouseFederation):
            target.close()
        if stores:
            for store in stores:
                if store is not None:
                    store.close()


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return cmd_run(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
