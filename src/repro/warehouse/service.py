"""The long-lived, event-driven cluster scheduler service.

:class:`WarehouseService` owns one :class:`~repro.cluster.state.Cluster`
and runs it as a *service* over simulated time instead of a batch
``place(requests)`` call:

* **arrivals** pass admission control — candidate nodes densest-first,
  each probed with an :class:`~.admission.AdmissionProbe` on the
  tentative job set, fresh machine as fallback, rejection as last
  resort (the paper's "schedule it elsewhere", continuously);
* **departures** free their node's share and trigger re-verification of
  the survivors — and of nobody else;
* periodic **re-check ticks** re-verify exactly the nodes whose
  effective LC load vector (each job's
  :class:`~repro.workloads.loadgen.LoadSchedule` sampled at the tick)
  changed since their last verification, migrating jobs off nodes that
  can no longer meet QoS (see :mod:`.migration`).

The incremental discipline — *only displaced or load-shifted nodes are
ever re-verified* — is what makes warehouse scale affordable: an event
touches one node (arrival, departure) or the load-shifted subset (tick),
never the whole fleet, and the shared
:class:`~repro.server.obstore.ObservationStore` makes repeated probes of
recurring job sets near-free.  Every decision lands on the timeline as a
:class:`TimelineEntry`, timestamped on the simulated clock; two
same-seed runs produce bit-identical timelines.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import deque
from dataclasses import dataclass
from itertools import islice
from typing import (
    Deque,
    Dict,
    FrozenSet,
    List,
    Optional,
    Set,
    Tuple,
)

from ..cluster.state import Cluster, ClusterNode, JobRequest
from ..core.engine import CLITEConfig
from ..core.units import Seconds
from ..resources.spec import ServerSpec
from ..sanitizer.hooks import register_shared
from ..telemetry import NULL_TELEMETRY, Telemetry
from ..telemetry.clock import SimulatedClock
from ..server.obstore import ObservationStore
from .admission import AdmissionProbe, resolve_probe
from .events import (
    Arrival,
    Departure,
    EventLoop,
    Payload,
    Recheck,
    WarehouseJob,
)
from .migration import MigrationModel, MigrationRecord

#: Engine settings for full-CLITE admission probes: smaller than the
#: batch :data:`~repro.cluster.scheduler.PLACEMENT_ENGINE` because a
#: service probes continuously, and a warm observation store shoulders
#: most of the cost anyway.
PROBE_ENGINE = CLITEConfig(
    max_iterations=12,
    post_qos_iterations=3,
    refine_budget=4,
    confirm_top=1,
    n_restarts=2,
)

#: Timeline entries kept per service (a deque, so an unbounded scenario
#: cannot grow memory without bound; tests use far fewer).
TIMELINE_LIMIT = 65536


@dataclass(frozen=True)
class TimelineEntry:
    """One scheduling decision at one instant of simulated time.

    Attributes:
        time_s: Simulated time of the decision.
        seq: The event's deterministic sequence id.
        kind: ``admit``, ``reject``, ``depart``, ``migrate``, ``drop``,
            ``recheck``, or ``violation``.
        job: Job name the decision concerns (empty for re-check ticks).
        node: Node index involved (-1 when none is).
        detail: Short human-readable qualifier (rejection reason,
            re-check tally, migration source).
        verified: Node indices re-verified while making this decision —
            the incremental-re-verification contract, asserted in tests.
    """

    time_s: Seconds
    seq: int
    kind: str
    job: str = ""
    node: int = -1
    detail: str = ""
    verified: Tuple[int, ...] = ()


@dataclass
class _Placed:
    """Book-keeping for one admitted job."""

    job: WarehouseJob
    node: int
    admitted_s: Seconds


def _request_at(job: WarehouseJob, t: Seconds) -> JobRequest:
    """The point-in-time placement request for ``job`` at time ``t``."""
    return JobRequest(job.workload, job.load_at(t), name=job.name)


class WarehouseService:
    """An event-driven scheduler over one cluster (or one shard of one).

    Args:
        n_nodes: Fleet size.
        spec: Homogeneous node spec (default: the paper's testbed).
        specs: Per-node specs for a heterogeneous fleet.
        probe: Admission probe — ``"quick"`` (noise-free candidate
            screen, the scale default), ``"clite"`` (full BO
            verification), or any :class:`~.admission.AdmissionProbe`.
        engine_config: Engine settings for ``"clite"`` probes
            (default :data:`PROBE_ENGINE`).
        seed: Seed threaded through every probe — one seed, one
            timeline.
        max_jobs_per_node: Co-location cap per node.
        recheck_period_s: Simulated seconds between QoS re-check ticks
            (None disables ticks).
        migration: Cost model and victim selection for QoS-driven moves.
        clock: The simulated clock to drive (shared with a federation
            root or a telemetry context; a fresh one by default).
        telemetry: Optional telemetry context; every event is wrapped in
            a ``warehouse.event`` span and counted on ``warehouse.*``
            metrics.
        store: Optional shared observation store for ``"clite"`` probes.
        max_probe_nodes: Densest-first candidate nodes probed per
            admission before falling back to a fresh machine (the
            power-of-k-choices bound that keeps admission O(1) in fleet
            size).

    The service itself is single-threaded by design — determinism comes
    from processing events in ``(time, seq)`` order — but its state is
    registered with ``repro-san`` because federation probes read it from
    pool workers.
    """

    def __init__(
        self,
        n_nodes: int,
        spec: Optional[ServerSpec] = None,
        specs: Optional[List[ServerSpec]] = None,
        probe: "AdmissionProbe | str" = "quick",
        engine_config: Optional[CLITEConfig] = None,
        seed: Optional[int] = 0,
        max_jobs_per_node: int = 4,
        recheck_period_s: Optional[Seconds] = None,
        migration: Optional[MigrationModel] = None,
        clock: Optional[SimulatedClock] = None,
        telemetry: Optional[Telemetry] = None,
        store: Optional[ObservationStore] = None,
        max_probe_nodes: int = 8,
    ) -> None:
        if max_jobs_per_node < 1:
            raise ValueError("max_jobs_per_node must be >= 1")
        if max_probe_nodes < 1:
            raise ValueError("max_probe_nodes must be >= 1")
        if spec is not None and specs is not None:
            raise ValueError("give spec or specs, not both")
        if specs is not None:
            self.cluster = Cluster(n_nodes=n_nodes, specs=specs)
        elif spec is not None:
            self.cluster = Cluster(n_nodes=n_nodes, spec=spec)
        else:
            self.cluster = Cluster(n_nodes=n_nodes)
        self.probe = resolve_probe(
            probe, engine_config if engine_config is not None else PROBE_ENGINE
        )
        self.seed = seed
        self.max_jobs_per_node = max_jobs_per_node
        self.max_probe_nodes = max_probe_nodes
        self.migration = migration if migration is not None else MigrationModel()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.store = store
        self.probe.attach(store, self.telemetry)
        self.loop = EventLoop(clock=clock, recheck_period_s=recheck_period_s)
        self._jobs: Dict[str, _Placed] = {}
        #: node index -> the LC load vector in force at last verification.
        self._last_verified: Dict[int, Tuple[float, ...]] = {}
        #: Density index: bucket ``d`` holds the sorted indices of nodes
        #: running ``d`` jobs (bucket 0 is the free pool).  Maintained by
        #: :meth:`_sync_index` at every commit point so admission walks
        #: buckets densest-first instead of scanning the fleet.
        self._by_density: List[List[int]] = [list(range(n_nodes))] + [
            [] for _ in range(max_jobs_per_node)
        ]
        self._density_of: List[int] = [0] * n_nodes
        #: Sorted indices of nodes hosting a phased-load LC job — the
        #: only nodes whose QoS can drift without a placement change.
        self._volatile_nodes: List[int] = []
        #: Nodes whose job set changed since their last recheck visit.
        self._recheck_dirty: Set[int] = set()
        self._timeline: Deque[TimelineEntry] = deque(maxlen=TIMELINE_LIMIT)
        self._timeline_dropped = 0
        self._migrations: Deque[MigrationRecord] = deque(maxlen=TIMELINE_LIMIT)
        self._counts: Dict[str, int] = {
            "arrivals": 0,
            "admitted": 0,
            "rejections": 0,
            "departures": 0,
            "migrations": 0,
            "dropped": 0,
            "rechecks": 0,
            "recheck_failures": 0,
            "qos_checks": 0,
            "qos_check_failures": 0,
        }
        self.migration_cost_s: float = 0.0
        register_shared(
            self,
            name=f"WarehouseService@{id(self):x}",
            container_attrs=(
                "_jobs",
                "_last_verified",
                "_by_density",
                "_density_of",
                "_volatile_nodes",
                "_recheck_dirty",
            ),
        )

    # ------------------------------------------------------------------
    # Public service surface
    # ------------------------------------------------------------------
    @property
    def now_s(self) -> Seconds:
        """Current simulated time."""
        return self.loop.now_s

    @property
    def timeline(self) -> Tuple[TimelineEntry, ...]:
        """Every decision taken so far, oldest first."""
        return tuple(self._timeline)

    @property
    def timeline_len(self) -> int:
        """Total decisions ever recorded, including aged-out entries."""
        return self._timeline_dropped + len(self._timeline)

    def timeline_since(self, cursor: int) -> Tuple[TimelineEntry, ...]:
        """Entries recorded at or after absolute position ``cursor``.

        ``cursor`` is a prior :attr:`timeline_len` reading; entries that
        aged out of the bounded deque before ``cursor`` are gone either
        way, so rolling reports can poll incrementally instead of
        re-copying the whole timeline every slice.
        """
        start = max(cursor - self._timeline_dropped, 0)
        return tuple(islice(self._timeline, start, None))

    @property
    def migrations(self) -> Tuple[MigrationRecord, ...]:
        return tuple(self._migrations)

    def submit(self, job: WarehouseJob, at: Seconds) -> int:
        """Schedule an arrival; returns its deterministic sequence id."""
        return self.loop.schedule(at, Arrival(job))

    def depart(self, name: str, at: Seconds) -> int:
        """Schedule a departure of the named job."""
        return self.loop.schedule(at, Departure(name))

    def run_until(self, t: Seconds) -> int:
        """Process every event with time <= ``t``; returns the count."""
        return self.loop.run_until(t, self.handle_event)

    @property
    def jobs_running(self) -> int:
        return len(self._jobs)

    def has_job(self, name: str) -> bool:
        return name in self._jobs

    def run_to_completion(self) -> Dict[str, object]:
        """Drain every queued event, then report :meth:`status`."""
        last = self.loop.queue.last_time()
        if last is not None:
            self.run_until(last)
        return self.status()

    @property
    def nodes_used(self) -> int:
        """Occupied-node count, O(1) off the density index."""
        return len(self.cluster.nodes) - len(self._by_density[0])

    def status(self) -> Dict[str, object]:
        """A JSON-able operational snapshot (the ``GET /status`` body)."""
        used = self.nodes_used
        total = len(self.cluster.nodes)
        checks = self._counts["qos_checks"]
        failures = self._counts["qos_check_failures"]
        lc_jobs = sum(1 for p in self._jobs.values() if p.job.is_lc)
        return {
            "time_s": self.now_s,
            "nodes_total": total,
            "nodes_used": used,
            "utilization": used / total,
            "jobs_running": len(self._jobs),
            "lc_jobs": lc_jobs,
            "bg_jobs": len(self._jobs) - lc_jobs,
            "pending_events": len(self.loop.queue),
            "qos_met_fraction": (
                1.0 if checks == 0 else (checks - failures) / checks
            ),
            "migration_cost_s": self.migration_cost_s,
            **self._counts,
        }

    def placements(self) -> Dict[str, int]:
        """Job name -> node index for every running job."""
        return {name: placed.node for name, placed in self._jobs.items()}

    # ------------------------------------------------------------------
    # Federation primitives (side-effect-free probe, separate commit)
    # ------------------------------------------------------------------
    def probe_admit(
        self, job: WarehouseJob, t: Seconds
    ) -> Tuple[Optional[int], Optional[ClusterNode], Tuple[int, ...]]:
        """Find a home for ``job`` at ``t`` without committing anything.

        Returns ``(node_index, tentative_node_state, verified_nodes)``;
        the index is None when no node admits the job.  Pure with
        respect to cluster state, so a federation root may run it for
        sibling shards concurrently on a thread pool.
        """
        if job.name in self._jobs:
            return None, None, ()
        return self._find_target(job, t)

    def commit_admit(
        self,
        job: WarehouseJob,
        t: Seconds,
        seq: int,
        target: int,
        tentative: ClusterNode,
        verified: Tuple[int, ...],
    ) -> None:
        """Apply a successful probe: the job now runs on ``target``."""
        self.cluster.nodes[target] = tentative
        self._jobs[job.name] = _Placed(job=job, node=target, admitted_s=t)
        self._mark_verified(target, self._loads_of(target, t))
        self._sync_index(target)
        self._counts["admitted"] += 1
        self._record(
            TimelineEntry(
                time_s=t,
                seq=seq,
                kind="admit",
                job=job.name,
                node=target,
                verified=verified,
            )
        )

    def reject(self, job: WarehouseJob, t: Seconds, seq: int, reason: str,
               verified: Tuple[int, ...] = ()) -> None:
        """Record a rejection (no node would take the job)."""
        self._counts["rejections"] += 1
        self.telemetry.metrics.counter(
            "warehouse.rejections", reason=reason
        ).add()
        self._record(
            TimelineEntry(
                time_s=t,
                seq=seq,
                kind="reject",
                job=job.name,
                detail=reason,
                verified=verified,
            )
        )

    # ------------------------------------------------------------------
    # Event handling
    # ------------------------------------------------------------------
    def handle_event(self, t: Seconds, seq: int, payload: Payload) -> None:
        """Process one event *now* — the loop's (and federation's) hook."""
        tel = self.telemetry
        kind = type(payload).__name__.lower()
        with tel.tracer.span("warehouse.event", kind=kind, seq=seq) as span:
            if isinstance(payload, Arrival):
                self._on_arrival(t, seq, payload.job)
            elif isinstance(payload, Departure):
                self._on_departure(t, seq, payload.name)
            elif isinstance(payload, Recheck):
                self._on_recheck(t, seq)
            span.set("time_s", t)

    def _on_arrival(self, t: Seconds, seq: int, job: WarehouseJob) -> None:
        self._counts["arrivals"] += 1
        self.telemetry.metrics.counter("warehouse.arrivals").add()
        if job.name in self._jobs:
            self.reject(job, t, seq, reason="duplicate-name")
            return
        target, tentative, verified = self._find_target(job, t)
        if target is None or tentative is None:
            self.reject(job, t, seq, reason="capacity", verified=verified)
            return
        self.commit_admit(job, t, seq, target, tentative, verified)

    def _on_departure(self, t: Seconds, seq: int, name: str) -> None:
        self._counts["departures"] += 1
        self.telemetry.metrics.counter("warehouse.departures").add()
        placed = self._jobs.pop(name, None)
        if placed is None:
            self._record(
                TimelineEntry(
                    time_s=t, seq=seq, kind="depart", job=name,
                    detail="unknown",
                )
            )
            return
        index = placed.node
        self.cluster.remove_from(index, name)
        self._sync_index(index)
        verified: Tuple[int, ...] = ()
        survivors = self.cluster.nodes[index]
        if survivors.n_jobs:
            # Only the displaced node is re-verified: the departure
            # changed nobody else's co-runners.
            verified = self._rebalance_node(
                index, t, seq, self._loads_of(index, t)
            )
        else:
            self._last_verified.pop(index, None)
        self._record(
            TimelineEntry(
                time_s=t,
                seq=seq,
                kind="depart",
                job=name,
                node=index,
                verified=verified,
            )
        )

    def _on_recheck(self, t: Seconds, seq: int) -> None:
        self._counts["rechecks"] += 1
        self.telemetry.metrics.counter("warehouse.rechecks").add()
        checked = 0
        failed = 0
        verified_all: List[int] = []
        # Visit only nodes whose QoS could have moved since their last
        # verification: hosts of phased-load LC jobs (volatile) plus
        # nodes whose job set changed since the last tick (dirty) —
        # never the whole fleet.  Ascending index order matches the old
        # full scan, so same-seed timelines stay bit-identical.
        candidates = sorted(set(self._volatile_nodes) | self._recheck_dirty)
        for index in candidates:
            node_state = self.cluster.nodes[index]
            if not node_state.lc_requests:
                self._recheck_dirty.discard(index)
                continue
            loads = self._loads_of(index, t)
            if self._last_verified.get(index) == loads:
                self._recheck_dirty.discard(index)
                continue  # load unchanged since last verification: skip
            checked += 1
            verified = self._rebalance_node(index, t, seq, loads)
            verified_all.extend(verified)
            if self._last_verified.get(index) != loads:
                failed += 1
                # A persistent violation stays on the recheck list: the
                # old full scan revisited it every tick, and so do we.
                self._recheck_dirty.add(index)
            else:
                self._recheck_dirty.discard(index)
        if failed:
            self._counts["recheck_failures"] += failed
        self._record(
            TimelineEntry(
                time_s=t,
                seq=seq,
                kind="recheck",
                detail=f"checked={checked} failed={failed}",
                verified=tuple(verified_all),
            )
        )

    # ------------------------------------------------------------------
    # Admission + re-verification internals
    # ------------------------------------------------------------------
    def _refreshed(self, node_state: ClusterNode, t: Seconds) -> ClusterNode:
        """The node with every LC request's load resampled at ``t``."""
        requests = []
        for request in node_state.requests:
            placed = self._jobs.get(request.request_name)
            if placed is not None and placed.job.is_lc:
                requests.append(_request_at(placed.job, t))
            else:
                requests.append(request)
        return ClusterNode(
            index=node_state.index, spec=node_state.spec, requests=requests
        )

    def _loads_of(self, index: int, t: Seconds) -> Tuple[float, ...]:
        """Current effective LC load vector of one node (request order)."""
        loads = []
        for request in self.cluster.nodes[index].requests:
            placed = self._jobs.get(request.request_name)
            if placed is not None and placed.job.is_lc:
                load = placed.job.load_at(t)
                loads.append(load if load is not None else 0.0)
        return tuple(loads)

    def _mark_verified(self, index: int, loads: Tuple[float, ...]) -> None:
        """Record the load vector a node was just verified at.

        Callers compute ``loads`` exactly once per decision and thread
        it here (the repo's own RPL1004 finding was this method silently
        recomputing ``_loads_of`` a second time per re-check).
        """
        self._last_verified[index] = loads

    def _sync_index(self, index: int) -> None:
        """Re-home one node in the incremental indices after a commit.

        Called wherever a node's job set changes (admission, departure,
        eviction, migration landing).  The two sorted lists are
        bisect-maintained — O(bucket) per commit, see EXPERIMENTS.md —
        which is what lets admission and recheck never scan the fleet.
        """
        node_state = self.cluster.nodes[index]
        density = min(node_state.n_jobs, self.max_jobs_per_node)
        previous = self._density_of[index]
        if density != previous:
            bucket = self._by_density[previous]
            bucket.pop(bisect_left(bucket, index))
            insort(self._by_density[density], index)
            self._density_of[index] = density
        volatile = False
        for request in node_state.requests:
            placed = self._jobs.get(request.request_name)
            if (
                placed is not None
                and placed.job.is_lc
                and not placed.job.has_static_load
            ):
                volatile = True
                break
        pos = bisect_left(self._volatile_nodes, index)
        present = (
            pos < len(self._volatile_nodes)
            and self._volatile_nodes[pos] == index
        )
        if volatile and not present:
            self._volatile_nodes.insert(pos, index)
        elif not volatile and present:
            self._volatile_nodes.pop(pos)
        if node_state.lc_requests:
            self._recheck_dirty.add(index)
        else:
            self._recheck_dirty.discard(index)

    def _check_node(
        self, node_state: ClusterNode, verified_out: List[int]
    ) -> bool:
        """One probe of one (tentative) node state, counted per node."""
        verified_out.append(node_state.index)
        self.telemetry.metrics.counter(
            "warehouse.verify.nodes", node=str(node_state.index)
        ).add()
        return self.probe.check(node_state, self.seed)

    def _find_target(
        self,
        job: WarehouseJob,
        t: Seconds,
        exclude: FrozenSet[int] = frozenset(),
    ) -> Tuple[Optional[int], Optional[ClusterNode], Tuple[int, ...]]:
        """CLITE-style target search: densest occupied first, probed;
        fresh machine as fallback (through ``can_host``); else None.

        The density index makes the walk fleet-size-independent: buckets
        descend from the densest co-location level, each kept sorted by
        node index, so the visit order equals the historical full-fleet
        ``sorted(candidates, key=(-n_jobs, index))`` without ever
        materializing an n_nodes-sized candidate set — repro-cost
        budgets this at O(small), and the deterministic bucket order
        keeps the probe sequence a pure function of cluster state (the
        property repro-pure's RPL904 used to pin via sorted()).
        """
        request = _request_at(job, t)
        verified: List[int] = []
        probed = 0
        for density in range(self.max_jobs_per_node - 1, 0, -1):
            for index in self._by_density[density]:
                if index in exclude:
                    continue
                node_state = self.cluster.nodes[index]
                if not node_state.can_host(request):
                    continue
                probed += 1
                tentative = self._refreshed(node_state, t).with_request(
                    request
                )
                if not tentative.lc_requests:
                    # BG-only nodes carry no QoS target: admit
                    # structurally.
                    return index, tentative, tuple(verified)
                if self._check_node(tentative, verified):
                    return index, tentative, tuple(verified)
                if probed >= self.max_probe_nodes:
                    break
            else:
                continue
            break
        for index in self._by_density[0]:
            if index in exclude:
                continue
            node_state = self.cluster.nodes[index]
            if node_state.can_host(request):
                return (
                    index,
                    node_state.with_request(request),
                    tuple(verified),
                )
        return None, None, tuple(verified)

    def _rebalance_node(
        self, index: int, t: Seconds, seq: int, loads: Tuple[float, ...]
    ) -> Tuple[int, ...]:
        """Re-verify one displaced/load-shifted node; migrate if it fails.

        ``loads`` is the node's current effective LC load vector — every
        caller has it in hand already, so it is threaded through instead
        of recomputed here; evictions change the job set, so the loop
        refreshes it after each one.  Returns the node indices verified
        along the way.  On success the node's load vector is recorded in
        ``_last_verified``; on persistent failure (the last survivor
        still violates QoS) a ``violation`` timeline entry is recorded
        instead.
        """
        verified: List[int] = []
        node_state = self._refreshed(self.cluster.nodes[index], t)
        self.cluster.nodes[index] = node_state
        self._counts["qos_checks"] += 1
        ok = (
            self._check_node(node_state, verified)
            if node_state.lc_requests
            else True
        )
        evictions = 0
        while (
            not ok
            and node_state.n_jobs > 1
            and evictions < self.migration.max_evictions_per_check
        ):
            victim = self.migration.select_victim(node_state, t)
            if victim is None:
                break
            evictions += 1
            node_state = node_state.without_request(victim.request_name)
            self.cluster.nodes[index] = node_state
            self._migrate(victim.request_name, index, t, seq, verified)
            loads = self._loads_of(index, t)
            ok = (
                self._check_node(node_state, verified)
                if node_state.lc_requests
                else True
            )
        if evictions:
            self._sync_index(index)
        if ok:
            self._mark_verified(index, loads)
        else:
            self._counts["qos_check_failures"] += 1
            self._last_verified.pop(index, None)
            self._recheck_dirty.add(index)
            self.telemetry.metrics.counter("warehouse.qos.violations").add()
            self._record(
                TimelineEntry(
                    time_s=t,
                    seq=seq,
                    kind="violation",
                    node=index,
                    detail="qos-unmet",
                )
            )
        return tuple(verified)

    def _migrate(
        self,
        name: str,
        source: int,
        t: Seconds,
        seq: int,
        verified_out: List[int],
    ) -> None:
        """Re-admit an evicted job elsewhere, charging the modeled cost."""
        placed = self._jobs[name]
        target, tentative, verified = self._find_target(
            placed.job, t, exclude=frozenset((source,))
        )
        verified_out.extend(verified)
        if target is None or tentative is None:
            # Nowhere to go: the job is dropped and counted with the
            # rejections (reason=migration), like a failed re-admission.
            del self._jobs[name]
            self._counts["dropped"] += 1
            self._counts["rejections"] += 1
            self.telemetry.metrics.counter(
                "warehouse.rejections", reason="migration"
            ).add()
            self._migrations.append(
                MigrationRecord(
                    time_s=t, job=name, from_node=source, to_node=-1,
                    cost_s=0.0,
                )
            )
            self._record(
                TimelineEntry(
                    time_s=t,
                    seq=seq,
                    kind="drop",
                    job=name,
                    node=source,
                    detail="no-target",
                    verified=verified,
                )
            )
            return
        self.cluster.nodes[target] = tentative
        placed.node = target
        self._mark_verified(target, self._loads_of(target, t))
        self._sync_index(target)
        cost = self.migration.cost_s
        self.migration_cost_s += cost
        self._counts["migrations"] += 1
        self.telemetry.metrics.counter("warehouse.migrations").add()
        self.telemetry.metrics.counter("warehouse.migration.cost_s").add(cost)
        self._migrations.append(
            MigrationRecord(
                time_s=t, job=name, from_node=source, to_node=target,
                cost_s=cost,
            )
        )
        self._record(
            TimelineEntry(
                time_s=t,
                seq=seq,
                kind="migrate",
                job=name,
                node=target,
                detail=f"from={source}",
                verified=verified,
            )
        )

    def _record(self, entry: TimelineEntry) -> None:
        if len(self._timeline) == TIMELINE_LIMIT:
            self._timeline_dropped += 1
        self._timeline.append(entry)
