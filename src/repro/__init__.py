"""CLITE: QoS-aware co-location of multiple latency-critical jobs.

A complete reproduction of *CLITE: Efficient and QoS-Aware Co-location
of Multiple Latency-Critical Jobs for Warehouse Scale Computers*
(Patel & Tiwari, HPCA 2020): the Bayesian-optimization partitioning
engine, a simulated multi-resource server substrate standing in for the
paper's CAT/MBA testbed and Tailbench/PARSEC workloads, every baseline
policy of the evaluation, and the experiment harness that regenerates
the paper's tables and figures.

Quick start::

    from repro import MixSpec, CLITEPolicy, NodeBudget, run_trial

    mix = MixSpec.of(
        lc=[("img-dnn", 0.5), ("memcached", 0.5)],
        bg=["streamcluster"],
    )
    trial = run_trial(mix, CLITEPolicy(seed=0), seed=0, budget=NodeBudget(60))
    print(trial.qos_met, trial.bg_performance)
"""

from .core import CLITEConfig, CLITEEngine, CLITEResult
from .experiments import MixSpec, run_trial
from .resources import (
    Configuration,
    ConfigurationSpace,
    Resource,
    ServerSpec,
    default_server,
    full_server,
    small_server,
)
from .schedulers import (
    CLITEPolicy,
    FFDPolicy,
    GeneticPolicy,
    HeraclesPolicy,
    OraclePolicy,
    PartiesPolicy,
    Policy,
    PolicyResult,
    RSMPolicy,
    RandomPlusPolicy,
)
from .server import Job, Node, NodeBudget, Observation, PerformanceCounters
from .telemetry import Telemetry, TelemetrySnapshot, WallClock
from .workloads import (
    BGWorkload,
    LCWorkload,
    LoadSchedule,
    bg_workload,
    lc_workload,
    parsec_catalog,
    tailbench_catalog,
)

__version__ = "1.0.0"

__all__ = [
    "BGWorkload",
    "CLITEConfig",
    "CLITEEngine",
    "CLITEPolicy",
    "CLITEResult",
    "Configuration",
    "ConfigurationSpace",
    "FFDPolicy",
    "GeneticPolicy",
    "HeraclesPolicy",
    "Job",
    "LCWorkload",
    "LoadSchedule",
    "MixSpec",
    "Node",
    "NodeBudget",
    "Observation",
    "OraclePolicy",
    "PartiesPolicy",
    "PerformanceCounters",
    "Policy",
    "PolicyResult",
    "RSMPolicy",
    "RandomPlusPolicy",
    "Resource",
    "ServerSpec",
    "Telemetry",
    "TelemetrySnapshot",
    "WallClock",
    "bg_workload",
    "default_server",
    "full_server",
    "lc_workload",
    "parsec_catalog",
    "run_trial",
    "small_server",
    "tailbench_catalog",
    "__version__",
]
