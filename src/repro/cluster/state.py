"""Cluster substrate: many servers, a job queue, per-node co-location.

The paper's motivation is warehouse-scale: co-location exists to raise
*datacenter* utilization, and CLITE's bootstrap explicitly flags jobs
that "can be immediately scheduled elsewhere without wasting any BO
cycles".  This subpackage provides the elsewhere: a cluster of
simulated nodes, a placement request stream, and the bookkeeping to
measure how many machines a placement policy needs and how well the
background work runs on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..resources.spec import ServerSpec, default_server
from ..server.counters import PerformanceCounters
from ..server.node import Job, Node
from ..server.obstore import ObservationStore
from ..telemetry import TelemetrySnapshot
from ..workloads.base import BGWorkload, LCWorkload
from ..workloads.loadgen import LoadSchedule


@dataclass(frozen=True)
class JobRequest:
    """One job asking for placement somewhere in the cluster.

    Attributes:
        workload: The LC or BG workload to run.
        load: Load fraction (LC jobs only).
        name: Unique request name; defaults to the workload name, but
            multiple instances of the same workload need distinct names.
    """

    workload: Union[LCWorkload, BGWorkload]
    load: Optional[float] = None
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if isinstance(self.workload, LCWorkload):
            if self.load is None:
                raise ValueError("LC job requests need a load fraction")
            if not 0 < self.load <= 1.0:
                raise ValueError(f"load must be in (0, 1], got {self.load}")
        elif self.load is not None:
            raise ValueError("BG job requests do not take a load")

    @property
    def is_lc(self) -> bool:
        return isinstance(self.workload, LCWorkload)

    @property
    def request_name(self) -> str:
        return self.name if self.name is not None else self.workload.name

    def to_job(self) -> Job:
        """Materialize as a node job (renamed copy of the workload)."""
        from dataclasses import replace

        workload = replace(self.workload, name=self.request_name)
        if self.is_lc:
            return Job(workload, LoadSchedule.constant(self.load))
        return Job(workload)


@dataclass
class ClusterNode:
    """One machine of the cluster: its spec plus the jobs placed on it."""

    index: int
    spec: ServerSpec
    requests: List[JobRequest] = field(default_factory=list)

    @property
    def n_jobs(self) -> int:
        return len(self.requests)

    @property
    def lc_requests(self) -> List[JobRequest]:
        return [r for r in self.requests if r.is_lc]

    @property
    def bg_requests(self) -> List[JobRequest]:
        return [r for r in self.requests if not r.is_lc]

    def job_names(self) -> List[str]:
        return [r.request_name for r in self.requests]

    def can_host(self, request: JobRequest) -> bool:
        """Structural check: a free unit of every resource, unique name."""
        if request.request_name in self.job_names():
            return False
        return self.n_jobs + 1 <= self.spec.max_jobs()

    def with_request(self, request: JobRequest) -> "ClusterNode":
        """A copy of this node hosting one more request."""
        if not self.can_host(request):
            raise ValueError(
                f"node {self.index} cannot host {request.request_name!r}"
            )
        return ClusterNode(
            index=self.index, spec=self.spec, requests=self.requests + [request]
        )

    def without_request(self, name: str) -> "ClusterNode":
        """A copy of this node after the named request departed."""
        if name not in self.job_names():
            raise KeyError(f"node {self.index} hosts no request {name!r}")
        return ClusterNode(
            index=self.index,
            spec=self.spec,
            requests=[r for r in self.requests if r.request_name != name],
        )

    def build_node(
        self,
        seed: Optional[int] = None,
        store: Optional[ObservationStore] = None,
    ) -> Node:
        """A fresh simulated server running this node's current jobs.

        ``seed`` seeds the counter-noise stream, so two same-seed builds
        read identical noisy windows.  It used to be accepted and
        silently dropped, which left the counters on ambient entropy and
        let same-seed ``verify_node`` runs disagree — the rare
        ``test_cluster`` flake.  ``store`` attaches a shared
        :class:`~repro.server.obstore.ObservationStore`, letting
        re-verification sweeps reuse truths across nodes and runs.
        """
        if not self.requests:
            raise ValueError(f"node {self.index} is empty")
        return Node(
            self.spec,
            [r.to_job() for r in self.requests],
            counters=PerformanceCounters(seed=seed),
            window_s=2.0,
            store=store,
        )


@dataclass
class Cluster:
    """A fixed pool of machines accepting placements.

    Homogeneous by default; pass ``specs`` for a heterogeneous fleet
    (e.g. a few big-cache nodes among standard ones) — placement
    policies consult each node's own spec, so mixing generations works
    transparently.
    """

    n_nodes: int
    spec: ServerSpec = field(default_factory=default_server)
    specs: Optional[List[ServerSpec]] = None
    nodes: List[ClusterNode] = field(init=False)

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("a cluster needs at least one node")
        if self.specs is not None:
            if len(self.specs) != self.n_nodes:
                raise ValueError(
                    f"got {len(self.specs)} specs for {self.n_nodes} nodes"
                )
            per_node = list(self.specs)
        else:
            per_node = [self.spec] * self.n_nodes
        self.nodes = [ClusterNode(i, s) for i, s in enumerate(per_node)]

    def place(self, node_index: int, request: JobRequest) -> None:
        """Commit a placement.

        ``node_index`` must identify an existing node.  Negative indices
        are rejected rather than wrapped: Python list indexing would
        silently target the node counted from the *end* of the fleet,
        corrupting the placement without any error.
        """
        if not isinstance(node_index, int) or isinstance(node_index, bool):
            raise ValueError(
                f"node_index must be an int, got {type(node_index).__name__}"
            )
        if not 0 <= node_index < len(self.nodes):
            raise IndexError(
                f"node_index {node_index} out of range for a "
                f"{len(self.nodes)}-node cluster"
            )
        self.nodes[node_index] = self.nodes[node_index].with_request(request)

    def remove(self, name: str) -> int:
        """Remove the named request; returns the index of its ex-host.

        The freed capacity is immediately visible to later placements —
        a node whose last job departs returns to the empty pool.
        """
        for node in self.nodes:
            if name in node.job_names():
                self.nodes[node.index] = node.without_request(name)
                return node.index
        raise KeyError(f"no request named {name!r} in the cluster")

    def remove_from(self, node_index: int, name: str) -> None:
        """Remove the named request from a *known* host node.

        The O(n_nodes) :meth:`remove` scan exists for callers that only
        know the job name; callers that track placements (the warehouse
        service keeps job -> node in ``_jobs``) must use this O(1)
        variant instead so departures stay fleet-size-independent.
        """
        if not 0 <= node_index < len(self.nodes):
            raise IndexError(
                f"node_index {node_index} out of range for a "
                f"{len(self.nodes)}-node cluster"
            )
        node = self.nodes[node_index]
        if name not in node.job_names():
            raise KeyError(
                f"no request named {name!r} on node {node_index}"
            )
        self.nodes[node_index] = node.without_request(name)

    def used_nodes(self) -> List[ClusterNode]:
        return [n for n in self.nodes if n.n_jobs > 0]

    def machines_used(self) -> int:
        return len(self.used_nodes())

    def placements(self) -> Dict[str, int]:
        """Request name -> node index for every placed request."""
        return {
            r.request_name: node.index
            for node in self.nodes
            for r in node.requests
        }


@dataclass(frozen=True)
class PlacementOutcome:
    """Result of placing a request stream on a cluster.

    Attributes:
        placements: Request name -> node index.
        rejected: Requests no node could accept.
        machines_used: Number of nodes hosting at least one job.
        node_reports: Per-used-node (qos_met, mean normalized BG perf or
            None); filled by policies that verify placements online.
        telemetry: Run-scoped telemetry snapshot (placement + per-node
            verification spans and counters) when the policy ran with a
            telemetry context, else ``None``.
    """

    placements: Dict[str, int]
    rejected: Tuple[str, ...]
    machines_used: int
    node_reports: Dict[int, Tuple[bool, Optional[float]]] = field(
        default_factory=dict
    )
    telemetry: Optional[TelemetrySnapshot] = None

    @property
    def all_qos_met(self) -> bool:
        return all(qos for qos, _ in self.node_reports.values())

    def mean_bg_performance(self) -> Optional[float]:
        values = [
            perf for _, perf in self.node_reports.values() if perf is not None
        ]
        if not values:
            return None
        return sum(values) / len(values)
