"""Cluster-level placement on top of per-node CLITE partitioning."""

from .scheduler import (
    CLITEPlacement,
    DedicatedPlacement,
    FirstFitPlacement,
    PLACEMENT_ENGINE,
    PlacementPolicy,
    utilization_summary,
    verify_node,
    verify_nodes,
)
from .state import Cluster, ClusterNode, JobRequest, PlacementOutcome

__all__ = [
    "CLITEPlacement",
    "Cluster",
    "ClusterNode",
    "DedicatedPlacement",
    "FirstFitPlacement",
    "JobRequest",
    "PLACEMENT_ENGINE",
    "PlacementOutcome",
    "PlacementPolicy",
    "utilization_summary",
    "verify_node",
    "verify_nodes",
]
