"""Cluster placement policies.

Three generations of datacenter placement, mirroring the paper's
introduction:

* **dedicated** — the traditional conservative stance: no co-location
  at all, every job gets its own machine (QoS is trivially safe, the
  cluster is mostly idle);
* **first-fit** — structural packing with a co-location cap but no QoS
  awareness: dense, but nothing guarantees the LC jobs survive it;
* **QoS-aware (CLITE)** — pack onto the first node where a CLITE run
  *demonstrates* a QoS-meeting partition, falling back to a fresh
  machine otherwise — the "schedule it elsewhere" loop the paper's
  bootstrap check enables.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.engine import CLITEConfig, CLITEEngine
from ..resources.contracts import placement_contract
from ..sanitizer.hooks import register_shared
from ..server.node import NodeBudget
from ..server.obstore import ObservationStore
from ..telemetry import NULL_TELEMETRY, Telemetry
from .state import Cluster, ClusterNode, JobRequest, PlacementOutcome

#: Engine settings for the many small optimizations placement needs.
PLACEMENT_ENGINE = CLITEConfig(
    max_iterations=25,
    post_qos_iterations=8,
    refine_budget=8,
    confirm_top=2,
    n_restarts=4,
)


def verify_node(
    node_state: ClusterNode,
    engine_config: Optional[CLITEConfig] = None,
    seed: Optional[int] = 0,
    telemetry: Optional[Telemetry] = None,
    store: Optional[ObservationStore] = None,
) -> Tuple[bool, Optional[float]]:
    """Partition one node with CLITE and report (qos_met, mean BG perf).

    The report uses the simulator's noise-free view of the chosen
    partition, like every other ground-truth metric in the harness.
    ``store`` attaches a shared observation store to the built node, so
    repeated verification of similar job sets (the warehouse common
    case) skips the physics on warm truths; the store is thread-safe
    and may back every worker of :func:`verify_nodes` at once.
    With telemetry, the run is wrapped in a ``cluster.verify_node``
    span and its observation windows land on the per-node
    ``cluster.verify.samples`` counter — safe under the thread pool,
    since each worker thread keeps its own span stack and the metric
    instruments serialize their updates.
    """
    from dataclasses import replace

    config = engine_config or PLACEMENT_ENGINE
    tel = telemetry if telemetry is not None else (
        config.telemetry if config.telemetry is not None else NULL_TELEMETRY
    )
    with tel.tracer.span(
        "cluster.verify_node", node=node_state.index, jobs=node_state.n_jobs
    ) as span:
        node = node_state.build_node(seed=seed, store=store)
        engine = CLITEEngine(
            node,
            replace(config, seed=seed, telemetry=tel if tel.active else None),
        )
        result = engine.optimize()
        if tel.active:
            tel.metrics.counter(
                "cluster.verify.samples", node=str(node_state.index)
            ).add(result.samples_taken)
        if result.best_config is None:
            span.set("qos_met", False)
            return False, None
        truth = node.true_performance(result.best_config)
        span.set("qos_met", truth.all_qos_met)
    bg = [j.throughput_norm for j in truth.bg_jobs]
    return truth.all_qos_met, (sum(bg) / len(bg) if bg else None)


def verify_nodes(
    node_states: Iterable[ClusterNode],
    engine_config: Optional[CLITEConfig] = None,
    seed: Optional[int] = 0,
    max_workers: Optional[int] = None,
    telemetry: Optional[Telemetry] = None,
    store: Optional[ObservationStore] = None,
) -> Dict[int, Tuple[bool, Optional[float]]]:
    """Run :func:`verify_node` over many nodes, concurrently when possible.

    Nodes are independent — each verification builds its own simulated
    node and engine from the node state and the seed — so the runs are
    embarrassingly parallel and deterministic regardless of scheduling.
    A thread pool is used (numpy/scipy release the GIL in the kernels
    the engine leans on); pass ``max_workers=1`` to force serial runs.
    One ``store`` is shared across all workers: nodes hosting identical
    job sets (same fingerprint) reuse each other's truths, and a store
    kept warm across placement rounds makes re-verification near-free.
    """
    states = list(node_states)
    if max_workers is None:
        max_workers = min(len(states), os.cpu_count() or 1) or 1
    if len(states) <= 1 or max_workers <= 1:
        return {
            state.index: verify_node(
                state, engine_config, seed, telemetry, store=store
            )
            for state in states
        }
    for state in states:
        # No-op unless repro-san is active: workers read these states
        # concurrently, so the sanitizer should see every access.
        register_shared(state, name=f"ClusterNode[{state.index}]")
    with ThreadPoolExecutor(max_workers=max_workers) as pool:
        futures = {
            state.index: pool.submit(
                verify_node, state, engine_config, seed, telemetry, store
            )
            for state in states
        }
        return {index: future.result() for index, future in futures.items()}


class PlacementPolicy(ABC):
    """Decides which node each job request lands on."""

    name: str = "placement"

    @abstractmethod
    def place(
        self,
        cluster: Cluster,
        requests: Sequence[JobRequest],
        seed: Optional[int] = 0,
    ) -> PlacementOutcome:
        """Place every request (or reject it) and report the outcome."""

    def _finalize(
        self,
        cluster: Cluster,
        rejected: List[str],
        seed: Optional[int],
        verify: bool,
        engine_config: Optional[CLITEConfig] = None,
        max_workers: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
        spans_since: int = 0,
        store: Optional[ObservationStore] = None,
    ) -> PlacementOutcome:
        tel = telemetry if telemetry is not None else NULL_TELEMETRY
        reports: Dict[int, Tuple[bool, Optional[float]]] = {}
        if verify:
            with tel.tracer.span("cluster.verify") as span:
                reports = verify_nodes(
                    cluster.used_nodes(), engine_config, seed, max_workers,
                    telemetry=tel, store=store,
                )
                span.set("nodes", len(reports))
        return PlacementOutcome(
            placements=cluster.placements(),
            rejected=tuple(rejected),
            machines_used=cluster.machines_used(),
            node_reports=reports,
            telemetry=(
                tel.snapshot(spans_since=spans_since) if tel.active else None
            ),
        )


@dataclass
class DedicatedPlacement(PlacementPolicy):
    """No co-location: one request per machine (the pre-co-location
    baseline the paper's introduction argues against)."""

    verify: bool = True
    #: Thread-pool width for per-node verification (None = one worker
    #: per used node, capped at the CPU count; 1 = serial).
    verify_workers: Optional[int] = None
    #: Optional telemetry context shared across placement + verification.
    telemetry: Optional[Telemetry] = None
    #: Optional observation store shared by every verification node.
    store: Optional[ObservationStore] = None

    name = "dedicated"

    @placement_contract
    def place(
        self,
        cluster: Cluster,
        requests: Sequence[JobRequest],
        seed: Optional[int] = 0,
    ) -> PlacementOutcome:
        tel = self.telemetry if self.telemetry is not None else NULL_TELEMETRY
        spans_before = tel.tracer.finished_count
        rejected: List[str] = []
        with tel.tracer.span(
            "cluster.place", policy=self.name, requests=len(requests)
        ):
            for request in requests:
                empty = [n for n in cluster.nodes if n.n_jobs == 0]
                if not empty:
                    rejected.append(request.request_name)
                    continue
                cluster.place(empty[0].index, request)
        return self._finalize(
            cluster, rejected, seed, self.verify,
            max_workers=self.verify_workers,
            telemetry=tel, spans_since=spans_before, store=self.store,
        )


@dataclass
class FirstFitPlacement(PlacementPolicy):
    """Structural first fit up to a co-location cap, QoS-blind."""

    max_jobs_per_node: int = 4
    verify: bool = True
    verify_workers: Optional[int] = None
    telemetry: Optional[Telemetry] = None
    store: Optional[ObservationStore] = None

    name = "first-fit"

    def __post_init__(self) -> None:
        if self.max_jobs_per_node < 1:
            raise ValueError("max_jobs_per_node must be >= 1")

    @placement_contract
    def place(
        self,
        cluster: Cluster,
        requests: Sequence[JobRequest],
        seed: Optional[int] = 0,
    ) -> PlacementOutcome:
        tel = self.telemetry if self.telemetry is not None else NULL_TELEMETRY
        spans_before = tel.tracer.finished_count
        rejected: List[str] = []
        with tel.tracer.span(
            "cluster.place", policy=self.name, requests=len(requests)
        ):
            for request in requests:
                target = None
                for node_state in cluster.nodes:
                    if (
                        node_state.n_jobs < self.max_jobs_per_node
                        and node_state.can_host(request)
                    ):
                        target = node_state.index
                        break
                if target is None:
                    rejected.append(request.request_name)
                    continue
                cluster.place(target, request)
        return self._finalize(
            cluster, rejected, seed, self.verify,
            max_workers=self.verify_workers,
            telemetry=tel, spans_since=spans_before, store=self.store,
        )


@dataclass
class CLITEPlacement(PlacementPolicy):
    """QoS-verified packing: co-locate only where CLITE proves it safe.

    For each request, candidate nodes are tried densest-first; a
    candidate is accepted only if a CLITE run on the tentative job set
    finds a partition meeting every LC job's QoS (BG requests are
    accepted structurally — they have no QoS to violate, and the
    per-node partitioning protects their hosts' LC jobs).  A request no
    occupied node can absorb opens a fresh machine; with no machines
    left it is rejected — the paper's "schedule it elsewhere", at
    cluster scope.
    """

    max_jobs_per_node: int = 4
    engine_config: CLITEConfig = field(
        default_factory=lambda: PLACEMENT_ENGINE
    )
    verify: bool = True
    verify_workers: Optional[int] = None
    telemetry: Optional[Telemetry] = None
    #: Shared observation store: admission probes and final verification
    #: reuse each other's truths, and a warm store makes re-placement of
    #: similar mixes near-free.
    store: Optional[ObservationStore] = None

    name = "clite"

    def __post_init__(self) -> None:
        if self.max_jobs_per_node < 1:
            raise ValueError("max_jobs_per_node must be >= 1")

    def _resolve_telemetry(self) -> Telemetry:
        if self.telemetry is not None:
            return self.telemetry
        if self.engine_config.telemetry is not None:
            return self.engine_config.telemetry
        return NULL_TELEMETRY

    def _admissible(
        self,
        node_state: ClusterNode,
        request: JobRequest,
        seed: Optional[int],
        telemetry: Optional[Telemetry] = None,
    ) -> bool:
        tentative = node_state.with_request(request)
        if not request.is_lc and not tentative.lc_requests:
            return True  # BG-only nodes need no QoS proof
        qos_met, _ = verify_node(
            tentative, self.engine_config, seed, telemetry, store=self.store
        )
        return qos_met

    @placement_contract
    def place(
        self,
        cluster: Cluster,
        requests: Sequence[JobRequest],
        seed: Optional[int] = 0,
    ) -> PlacementOutcome:
        tel = self._resolve_telemetry()
        spans_before = tel.tracer.finished_count
        rejected: List[str] = []
        with tel.tracer.span(
            "cluster.place", policy=self.name, requests=len(requests)
        ):
            for request in requests:
                occupied = sorted(
                    (
                        n
                        for n in cluster.nodes
                        if 0 < n.n_jobs < self.max_jobs_per_node
                    ),
                    key=lambda n: -n.n_jobs,
                )
                target = None
                for node_state in occupied:
                    if not node_state.can_host(request):
                        continue
                    if self._admissible(node_state, request, seed, tel):
                        target = node_state.index
                        break
                if target is None:
                    # The fresh-machine fallback goes through can_host
                    # too: an empty node can still refuse a request
                    # (zero-capacity spec, retried name) and silently
                    # skipping the check let the service loop
                    # double-place colliding retries.
                    empty = [
                        n
                        for n in cluster.nodes
                        if n.n_jobs == 0 and n.can_host(request)
                    ]
                    if empty:
                        target = empty[0].index
                    else:
                        rejected.append(request.request_name)
                        continue
                cluster.place(target, request)
        return self._finalize(
            cluster, rejected, seed, self.verify, self.engine_config,
            max_workers=self.verify_workers,
            telemetry=tel, spans_since=spans_before, store=self.store,
        )


def utilization_summary(outcome: PlacementOutcome, total_nodes: int) -> Dict[str, object]:
    """The cluster-efficiency numbers a datacenter operator reads."""
    if total_nodes < 1:
        raise ValueError("total_nodes must be >= 1")
    return {
        "machines_used": outcome.machines_used,
        "machines_total": total_nodes,
        "utilization": outcome.machines_used / total_nodes,
        "rejected": len(outcome.rejected),
        "all_qos_met": outcome.all_qos_met,
        "mean_bg_performance": outcome.mean_bg_performance(),
    }


#: Re-exported for callers configuring placement verification budgets.
DEFAULT_VERIFY_BUDGET = NodeBudget(60)
