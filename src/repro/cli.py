"""Command-line interface: run co-locations from a shell.

Installed as ``repro-clite``.  Subcommands:

* ``workloads`` — list the Tailbench/PARSEC catalogs with calibrated
  QoS targets;
* ``run`` — partition one mix with one policy and report the outcome;
* ``compare`` — run the full Sec. 5 policy lineup on one mix;
* ``sweep`` — print a workload's isolated QPS-vs-p95 curve and knee
  (the Fig. 6 methodology);
* ``region`` — print a workload's QoS-safe frontier over two resources
  (the Fig. 1 view).

Mixes are given as repeated ``--lc NAME:LOAD`` and ``--bg NAME`` flags::

    repro-clite run --lc memcached:0.5 --lc img-dnn:0.3 --bg streamcluster
    repro-clite compare --lc img-dnn:0.5 --lc masstree:0.4 --bg canneal
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, Tuple

from .experiments import (
    MixSpec,
    STANDARD_POLICIES,
    format_table,
    qos_region,
    run_trial,
)
from .core import CLITEConfig
from .resources import default_server
from .schedulers import CLITEPolicy
from .server import NodeBudget, ObservationStore
from .telemetry import Telemetry, WallClock, write_jsonl
from .workloads import (
    BG_NAMES,
    LC_NAMES,
    lc_workload,
    parsec_catalog,
    sweep_load,
    tailbench_catalog,
)


def _parse_lc(value: str) -> Tuple[str, float]:
    try:
        name, load_text = value.rsplit(":", 1)
        load = float(load_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected NAME:LOAD (e.g. memcached:0.5), got {value!r}"
        )
    if name not in LC_NAMES:
        raise argparse.ArgumentTypeError(
            f"unknown LC workload {name!r}; choose from {', '.join(LC_NAMES)}"
        )
    if not 0 < load <= 1:
        raise argparse.ArgumentTypeError(f"load must be in (0, 1], got {load}")
    return name, load


def _parse_bg(value: str) -> str:
    if value not in BG_NAMES:
        raise argparse.ArgumentTypeError(
            f"unknown BG workload {value!r}; choose from {', '.join(BG_NAMES)}"
        )
    return value


def _add_mix_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--lc",
        type=_parse_lc,
        action="append",
        default=None,
        metavar="NAME:LOAD",
        help="latency-critical job at a load fraction (repeatable)",
    )
    parser.add_argument(
        "--bg",
        type=_parse_bg,
        action="append",
        default=None,
        metavar="NAME",
        help="background job (repeatable)",
    )
    parser.add_argument("--budget", type=int, default=90, help="observation windows")
    parser.add_argument("--seed", type=int, default=0, help="random seed")


def _build_mix(args: argparse.Namespace) -> MixSpec:
    lc = args.lc or []
    bg = args.bg or []
    if not lc and not bg:
        raise SystemExit("error: give at least one --lc or --bg job")
    return MixSpec.of(lc=lc, bg=bg)


def _trial_rows(trial) -> List[List[object]]:
    rows: List[List[object]] = []
    for name, perf in trial.lc_performance.items():
        rows.append([name, "LC", f"{perf:.1%} of isolated latency"])
    for name, perf in trial.bg_performance.items():
        rows.append([name, "BG", f"{perf:.1%} of isolated throughput"])
    return rows


def cmd_workloads(args: argparse.Namespace) -> int:
    del args
    server = default_server()
    lc_rows = [
        [name, f"{w.qos_latency_ms:.2f} ms", f"{w.max_qps:,.0f} qps", w.description]
        for name, w in tailbench_catalog(server).items()
    ]
    bg_rows = [[name, w.description] for name, w in parsec_catalog().items()]
    print("Latency-critical workloads:")
    print(format_table(["name", "QoS target", "max load", "description"], lc_rows))
    print("\nBackground workloads:")
    print(format_table(["name", "description"], bg_rows))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    mix = _build_mix(args)
    if args.policy not in STANDARD_POLICIES:
        raise SystemExit(
            f"error: unknown policy {args.policy!r}; choose from "
            f"{', '.join(STANDARD_POLICIES)}"
        )
    if args.batch_k < 1:
        raise SystemExit("error: --batch-k must be >= 1")
    if args.batch_k > 1 and args.policy != "CLITE":
        raise SystemExit("error: --batch-k applies only to --policy CLITE")
    if args.batch_k > 1:
        policy = CLITEPolicy(
            config=CLITEConfig(
                seed=args.seed,
                batch_k=args.batch_k,
                parallel_observe=True,
            )
        )
    else:
        policy = STANDARD_POLICIES[args.policy](args.seed)
    print(f"Partitioning {mix.label()} with {args.policy} ...")
    telemetry = Telemetry.enabled(clock=WallClock()) if args.trace else None
    store = ObservationStore(args.obstore) if args.obstore else None
    try:
        trial = run_trial(
            mix,
            policy,
            seed=args.seed,
            budget=NodeBudget(args.budget),
            telemetry=telemetry,
            store=store,
        )
    finally:
        if store is not None:
            stats = store.stats()
            store.close()
    if store is not None:
        print(
            f"observation store {args.obstore}: {stats.hits} hits, "
            f"{stats.misses} misses, {len(store)} entries on disk"
        )
    if telemetry is not None:
        lines = write_jsonl(telemetry, args.trace)
        print(
            f"wrote {lines} telemetry records to {args.trace} "
            f"(render with: repro-trace summary {args.trace})"
        )
    print(f"\nsamples: {trial.samples}   QoS met: {trial.qos_met}")
    if trial.result.infeasible_jobs:
        print(
            "infeasible even in isolation (schedule elsewhere): "
            + ", ".join(trial.result.infeasible_jobs)
        )
    if trial.result.best_config is not None:
        print("\npartition (units per job):")
        names = [n for n, _ in mix.lc] + list(mix.bg)
        for j, name in enumerate(names):
            print(f"  {name:14s} {trial.result.best_config.job_allocation(j)}")
        print("\nground-truth outcome:")
        print(format_table(["job", "role", "performance"], _trial_rows(trial)))
    return 0 if trial.qos_met else 1


def cmd_compare(args: argparse.Namespace) -> int:
    mix = _build_mix(args)
    print(f"Comparing policies on {mix.label()} ...")
    rows = []
    for name, factory in STANDARD_POLICIES.items():
        trial = run_trial(
            mix, factory(args.seed), seed=args.seed, budget=NodeBudget(args.budget)
        )
        bg = trial.mean_bg_performance if trial.qos_met and mix.bg else None
        rows.append(
            [
                name,
                "yes" if trial.qos_met else "NO",
                bg,
                trial.samples,
                trial.evaluations,
            ]
        )
    print(
        format_table(
            ["policy", "QoS met", "BG perf", "samples", "total evals"], rows
        )
    )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    server = default_server()
    sweep = sweep_load(lc_workload(args.workload, calibrated=False), server)
    rows = [
        [f"{qps:,.0f}", f"{p95:.3f}"] for qps, p95 in sweep.rows()[:: args.stride]
    ]
    print(f"{args.workload}: isolated QPS vs p95 latency")
    print(format_table(["QPS", "p95 (ms)"], rows))
    print(
        f"\nknee: {sweep.knee_qps:,.0f} qps at {sweep.knee_latency_ms:.3f} ms "
        "(= 100% load / QoS target basis)"
    )
    return 0


def cmd_region(args: argparse.Namespace) -> int:
    region = qos_region(
        args.workload,
        args.load,
        resource_a=args.resource_a,
        resource_b=args.resource_b,
    )
    rows = [[a, b] for a, b in region.frontier()]
    print(
        f"{args.workload} @ {args.load:.0%} load: minimum {args.resource_b} "
        f"needed per {args.resource_a} allocation (others at maximum)"
    )
    print(format_table([args.resource_a, f"min {args.resource_b}"], rows))
    if not rows:
        print("(no allocation meets QoS at this load)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-clite",
        description="CLITE: QoS-aware co-location of latency-critical jobs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list the workload catalogs").set_defaults(
        func=cmd_workloads
    )

    run_parser = sub.add_parser("run", help="partition one mix with one policy")
    _add_mix_arguments(run_parser)
    run_parser.add_argument(
        "--policy",
        default="CLITE",
        help=f"one of: {', '.join(STANDARD_POLICIES)}",
    )
    run_parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="enable telemetry and write a JSONL trace to FILE "
        "(render it with repro-trace)",
    )
    run_parser.add_argument(
        "--batch-k",
        type=int,
        default=1,
        metavar="K",
        help="CLITE only: observe K acquisition candidates per BO round "
        "(K>1 trades paper-exact sample efficiency for wall-clock)",
    )
    run_parser.add_argument(
        "--obstore",
        metavar="FILE",
        default=None,
        help="persist noise-free observations to FILE (JSONL); repeated "
        "runs of the same mix replay truths instead of re-simulating",
    )
    run_parser.set_defaults(func=cmd_run)

    compare_parser = sub.add_parser("compare", help="run the full policy lineup")
    _add_mix_arguments(compare_parser)
    compare_parser.set_defaults(func=cmd_compare)

    sweep_parser = sub.add_parser("sweep", help="isolated QPS-vs-p95 curve (Fig. 6)")
    sweep_parser.add_argument("--workload", required=True, choices=LC_NAMES)
    sweep_parser.add_argument("--stride", type=int, default=5)
    sweep_parser.set_defaults(func=cmd_sweep)

    region_parser = sub.add_parser("region", help="QoS-safe frontier (Fig. 1)")
    region_parser.add_argument("--workload", required=True, choices=LC_NAMES)
    region_parser.add_argument("--load", type=float, default=0.5)
    region_parser.add_argument("--resource-a", default="cores")
    region_parser.add_argument("--resource-b", default="llc_ways")
    region_parser.set_defaults(func=cmd_region)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
