"""Thread-safety rules (RPL2xx).

``verify_nodes`` fans per-node verification out over a thread pool;
that is only sound because each worker builds private state from the
shared ``ClusterNode``/``Cluster`` inputs.  These rules keep it that
way: no mutation of shared-typed parameters, globals, or class
attributes anywhere reachable from a pool entry point; objects used as
dict/cache keys must be frozen dataclasses; and frozen classes may only
be back-doored via ``object.__setattr__`` inside ``__post_init__``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .callgraph import CallGraph
from .config import LintConfig
from .dataflow import compute_locksets, pool_entry_keys, shared_callgraph
from .model import THREAD_SAFETY, Finding, Rule, register
from .project import FunctionInfo, Project

#: Method names that mutate their receiver in place.
_MUTATORS = {
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "add", "discard", "update", "setdefault", "sort", "reverse",
    "appendleft", "popleft",
}


def _root_name(node: ast.AST) -> Optional[str]:
    """The base identifier of an attribute/subscript chain, if any."""
    current = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    if isinstance(current, ast.Name):
        return current.id
    return None


@register
class SharedStateMutation(Rule):
    rule_id = "RPL201"
    name = "pool-shared-state-mutation"
    family = THREAD_SAFETY
    description = (
        "A function reachable from a thread-pool entry point mutates "
        "shared state: an attribute/item of a shared-typed parameter "
        "(ClusterNode, Cluster), a module global, or a class attribute. "
        "Concurrent verify_nodes workers would race on it."
    )
    autofix_hint = (
        "Build private state inside the worker (copy, or construct via "
        "ClusterNode.build_node) and return results instead of writing "
        "to shared inputs; move shared-cache writes behind the serial "
        "caller. Lock-guarded writes are RPL603's domain and are not "
        "flagged here."
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        graph = shared_callgraph(project)
        entries: Set[str] = pool_entry_keys(project, graph, config)
        if not entries:
            return
        reachable = graph.reachable_from(entries)
        shared = set(config.shared_types)
        for key, path in sorted(reachable.items()):
            fn = project.functions[key]
            yield from self._check_function(
                project, graph, fn, shared, path
            )

    def _check_function(
        self,
        project: Project,
        graph: CallGraph,
        fn: FunctionInfo,
        shared: Set[str],
        path: Tuple[str, ...],
    ) -> Iterator[Finding]:
        param_types: Dict[str, str] = graph.param_types.get(fn.key, {})
        shared_params = {
            name for name, cls in param_types.items() if cls in shared
        }
        module = project.modules[fn.module]
        globals_declared: Set[str] = {
            name
            for node in ast.walk(fn.node)
            if isinstance(node, ast.Global)
            for name in node.names
        }
        entry = path[0].split(":")[-1]
        via = " -> ".join(p.split(":")[-1] for p in path)
        locksets = compute_locksets(graph, fn)

        def describe(kind: str, what: str) -> str:
            return (
                f"{kind} {what} in {fn.qualname!r}, reachable from "
                f"thread-pool entry point {entry!r} (via {via})"
            )

        for node in ast.walk(fn.node):
            if locksets.held_at(node):
                # Deliberately synchronized write: lock discipline on
                # shared objects is RPL603's domain, not a finding here.
                continue
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    finding = self._check_write_target(
                        project, module, target, shared_params,
                        globals_declared, describe,
                    )
                    if finding is not None:
                        yield self.finding(project, module.name, node, finding)
            elif isinstance(node, ast.Call):
                message = self._check_mutating_call(node, shared_params, describe)
                if message is not None:
                    yield self.finding(project, module.name, node, message)

    def _check_write_target(
        self,
        project: Project,
        module,
        target: ast.AST,
        shared_params: Set[str],
        globals_declared: Set[str],
        describe,
    ) -> Optional[str]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                found = self._check_write_target(
                    project, module, element, shared_params,
                    globals_declared, describe,
                )
                if found is not None:
                    return found
            return None
        if isinstance(target, ast.Name):
            if target.id in globals_declared:
                return describe("write to module global", f"'{target.id}'")
            return None
        root = _root_name(target)
        if root is None:
            return None
        if root in shared_params and isinstance(
            target, (ast.Attribute, ast.Subscript)
        ):
            return describe(
                "write to shared-typed parameter", f"'{root}'"
            )
        if isinstance(target, ast.Attribute) and isinstance(
            target.value, ast.Name
        ):
            dotted = module.resolve(target.value)
            if dotted is not None:
                simple = dotted.split(".")[-1]
                if simple in project.classes_by_name and simple[:1].isupper():
                    return describe(
                        "write to class attribute", f"'{simple}.{target.attr}'"
                    )
        return None

    def _check_mutating_call(
        self, node: ast.Call, shared_params: Set[str], describe
    ) -> Optional[str]:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in _MUTATORS:
            return None
        root = _root_name(func.value)
        if root in shared_params:
            return describe(
                f"in-place '{func.attr}' on shared-typed parameter",
                f"'{root}'",
            )
        return None


@register
class UnfrozenKeyDataclass(Rule):
    rule_id = "RPL202"
    name = "unfrozen-cache-key"
    family = THREAD_SAFETY
    description = (
        "A dataclass used as a dict/set/cache key is not frozen=True: "
        "mutable key objects can change hash mid-flight, silently "
        "corrupting the observation cache and dropout tables."
    )
    autofix_hint = (
        "Declare the class @dataclass(frozen=True) (and eq=True); if "
        "mutation is required, key the container on an immutable "
        "projection like Configuration.flat() instead."
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        # (a) Configured must-be-frozen classes.
        for name in config.frozen_key_classes:
            for cls in project.classes_by_name.get(name, ()):
                if cls.is_dataclass and not cls.frozen:
                    yield self.finding(
                        project,
                        cls.module,
                        cls.node,
                        f"dataclass {name!r} is declared a cache-key class "
                        "but is not frozen=True",
                    )
        # (b) Dataclass constructor calls appearing in key position.
        for module in project.modules.values():
            for node in ast.walk(module.tree):
                for key_expr in _key_positions(node):
                    cls_name = _constructed_class(key_expr)
                    if cls_name is None:
                        continue
                    info = project.dataclass_info(cls_name)
                    if info is not None and not info.frozen:
                        yield self.finding(
                            project,
                            module.name,
                            key_expr,
                            f"instance of non-frozen dataclass {cls_name!r} "
                            "used as a dict/set key",
                        )


def _key_positions(node: ast.AST) -> List[ast.AST]:
    """Expressions syntactically used as hash keys under ``node``."""
    positions: List[ast.AST] = []
    if isinstance(node, ast.Subscript):
        positions.append(node.slice)
    elif isinstance(node, ast.Dict):
        positions.extend(k for k in node.keys if k is not None)
    elif isinstance(node, ast.Set):
        positions.extend(node.elts)
    elif isinstance(node, ast.Compare):
        if any(isinstance(op, (ast.In, ast.NotIn)) for op in node.ops):
            positions.append(node.left)
    elif isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in {
            "get", "setdefault", "pop", "add", "discard",
        }:
            if node.args:
                positions.append(node.args[0])
    return positions


def _constructed_class(node: ast.AST) -> Optional[str]:
    """Class name when ``node`` is ``ClassName(...)``."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name) and func.id[:1].isupper():
        return func.id
    if isinstance(func, ast.Attribute) and func.attr[:1].isupper():
        return func.attr
    return None


@register
class SetattrOutsidePostInit(Rule):
    rule_id = "RPL203"
    name = "setattr-on-frozen"
    family = THREAD_SAFETY
    description = (
        "object.__setattr__ outside __post_init__: the only sanctioned "
        "use of the frozen-dataclass back door is field initialization; "
        "anywhere else it silently defeats immutability (and hash "
        "stability) that other threads rely on."
    )
    autofix_hint = (
        "Use dataclasses.replace to derive an updated instance, or move "
        "the write into __post_init__."
    )

    _ALLOWED = {"__post_init__", "__init__", "__setstate__"}

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        for fn in project.iter_functions():
            if fn.simple_name in self._ALLOWED:
                continue
            module = project.modules[fn.module]
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "__setattr__"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "object"
                ):
                    yield self.finding(
                        project,
                        module.name,
                        node,
                        f"object.__setattr__ in {fn.qualname!r} mutates a "
                        "frozen instance outside __post_init__",
                    )
