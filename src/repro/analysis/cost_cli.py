"""``repro-cost`` console entry point: the per-entry-point cost table.

Renders the artifacts behind the COST (RPL10xx) lint family for human
inspection::

    repro-cost src/repro              # budget table, hot scope, hits
    repro-cost src/repro --check      # exit 1 on any violation
    repro-cost src/repro --format json

The report walks the five analyses in order: the budget registry (each
registered function with its declared budget, closed symbolic cost, and
verdict), budget violations with their dominant charge and call chain,
same-family quadratic products, hot-path N-sized allocations, repeated
pure recomputations, and registry health.  Exit status: 0 ok, 1 any
violation with ``--check``, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .config import load_config
from .cost import CostAnalysis, cost_analysis, render_terms
from .engine import LintEngine


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cost",
        description=(
            "Static per-event complexity report: closed symbolic costs "
            "vs declared budgets, quadratic blowups, hot-path N-sized "
            "allocations, repeated pure recomputation (the COST lint "
            "family's working state, rendered)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="Files or directories to analyse (default: src/repro).",
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="PATH",
        help="File or directory to skip during discovery (repeatable).",
    )
    parser.add_argument(
        "--format",
        "-f",
        choices=("text", "json"),
        default="text",
        help="Report format.",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="Exit 1 on any cost-budget violation.",
    )
    return parser


def _fn_label(analysis: CostAnalysis, key: str) -> str:
    fn = analysis.project.functions.get(key)
    if fn is None:
        return key
    return f"{fn.module}:{fn.qualname}"


def render_text(analysis: CostAnalysis) -> str:
    lines: List[str] = []
    lines.append("cost budgets")
    lines.append("============")
    if not analysis.budgets:
        lines.append("  (no budgets registered)")
    over = {hit.budget.key for hit in analysis.budget_hits}
    for key in sorted(
        analysis.budgets, key=lambda k: analysis.budgets[k].entry
    ):
        budget = analysis.budgets[key]
        closed = render_terms(analysis._cost_closure(key))
        verdict = "OVER" if key in over else "ok"
        hot = "  [hot]" if key in analysis.hot_entries else ""
        lines.append(
            f"  {budget.entry}  budget O({budget.expr})  "
            f"closed {closed}  {verdict}{hot}"
        )
    if analysis.budget_hits:
        lines.append("")
        lines.append(f"BUDGET VIOLATIONS: {len(analysis.budget_hits)}")
        for hit in analysis.budget_hits:
            term = hit.term
            via = " via " + " -> ".join(term.chain) if term.chain else ""
            lines.append(
                f"  {term.site.module}:{term.site.line}  "
                f"{hit.budget.entry}  {render_terms([term])} > "
                f"O({hit.budget.expr})  [{term.kind}] {term.what}{via}"
            )
    lines.append("")
    lines.append("hot scope")
    lines.append("=========")
    if not analysis.hot_entries:
        lines.append("  (no hot entry points registered)")
    for key in sorted(
        analysis.hot_entries, key=lambda k: analysis.hot_entries[k]
    ):
        lines.append(f"  hot entry {analysis.hot_entries[key]}")
    lines.append(f"  reachable functions: {len(analysis.hot_scope)}")
    lines.append("")
    lines.append("quadratic products")
    lines.append("==================")
    if not analysis.quads:
        lines.append("  (no same-family quadratic is provable)")
    for quad in analysis.quads:
        lines.append(
            f"  {quad.site.module}:{quad.site.line}  "
            f"{_fn_label(analysis, quad.fn_key)}  "
            f"{'*'.join(quad.vars)}  {quad.what}"
        )
    lines.append("")
    lines.append("hot-path allocations")
    lines.append("====================")
    if not analysis.allocs:
        lines.append("  (no N-sized allocation on a hot path)")
    for alloc in analysis.allocs:
        origin = (
            f"from {_fn_label(analysis, alloc.entry)}"
            if alloc.entry
            else "hot-path module"
        )
        lines.append(
            f"  {alloc.site.module}:{alloc.site.line}  "
            f"{_fn_label(analysis, alloc.fn_key)}  [{alloc.bound}] "
            f"{alloc.what}  ({origin})"
        )
    lines.append("")
    lines.append("repeated recomputation")
    lines.append("======================")
    if not analysis.repeats:
        lines.append("  (no pure costly call repeats with fixed args)")
    for repeat in analysis.repeats:
        lines.append(
            f"  {repeat.site.module}:{repeat.site.line}  "
            f"{_fn_label(analysis, repeat.fn_key)}  computes "
            f"{_fn_label(analysis, repeat.callee)}({repeat.args}) "
            f"{repeat.count}x"
        )
    lines.append("")
    lines.append("registry health")
    lines.append("===============")
    if not analysis.registry:
        lines.append("  (every registry entry resolves and is budgeted)")
    for stale in analysis.registry:
        lines.append(
            f"  [{stale.table}] entry {stale.entry!r}: {stale.detail}"
        )
    return "\n".join(lines)


def render_json(analysis: CostAnalysis) -> str:
    over = {hit.budget.key for hit in analysis.budget_hits}
    payload = {
        "budgets": [
            {
                "entry": budget.entry,
                "budget": budget.expr,
                "closed": render_terms(analysis._cost_closure(key)),
                "ok": key not in over,
                "hot": key in analysis.hot_entries,
            }
            for key, budget in sorted(
                analysis.budgets.items(), key=lambda kv: kv[1].entry
            )
        ],
        "budget_violations": [
            {
                "entry": hit.budget.entry,
                "budget": hit.budget.expr,
                "cost": render_terms([hit.term]),
                "module": hit.term.site.module,
                "line": hit.term.site.line,
                "kind": hit.term.kind,
                "what": hit.term.what,
                "via": list(hit.term.chain),
            }
            for hit in analysis.budget_hits
        ],
        "hot_entries": sorted(analysis.hot_entries.values()),
        "hot_reachable_count": len(analysis.hot_scope),
        "quadratics": [
            {
                "module": quad.site.module,
                "line": quad.site.line,
                "function": _fn_label(analysis, quad.fn_key),
                "vars": list(quad.vars),
                "what": quad.what,
            }
            for quad in analysis.quads
        ],
        "hot_allocations": [
            {
                "module": alloc.site.module,
                "line": alloc.site.line,
                "function": _fn_label(analysis, alloc.fn_key),
                "bound": alloc.bound,
                "what": alloc.what,
                "entry": (
                    _fn_label(analysis, alloc.entry) if alloc.entry else None
                ),
            }
            for alloc in analysis.allocs
        ],
        "repeats": [
            {
                "module": repeat.site.module,
                "line": repeat.site.line,
                "function": _fn_label(analysis, repeat.fn_key),
                "callee": _fn_label(analysis, repeat.callee),
                "args": repeat.args,
                "count": repeat.count,
            }
            for repeat in analysis.repeats
        ],
        "stale_registry": [
            {
                "entry": stale.entry,
                "table": stale.table,
                "detail": stale.detail,
            }
            for stale in analysis.registry
        ],
        "violations": analysis.violation_count,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    paths = args.paths
    if not paths:
        default = Path("src/repro")
        if not default.is_dir():
            parser.print_usage(sys.stderr)
            print(
                "repro-cost: no paths given and ./src/repro not found",
                file=sys.stderr,
            )
            return 2
        paths = [str(default)]

    try:
        config = load_config(Path(paths[0]))
    except ValueError as error:
        print(f"repro-cost: {error}", file=sys.stderr)
        return 2

    engine = LintEngine(config)
    try:
        project = engine.build_project(paths, exclude=args.exclude)
    except (FileNotFoundError, SyntaxError) as error:
        print(f"repro-cost: {error}", file=sys.stderr)
        return 2

    analysis = cost_analysis(project, config)
    if args.format == "json":
        print(render_json(analysis))
    else:
        print(render_text(analysis))
    if args.check and analysis.violation_count:
        print(
            f"repro-cost: {analysis.violation_count} cost "
            f"violation(s) found",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
