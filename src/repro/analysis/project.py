"""Parsed-project model: modules, classes, functions, imports.

The linter parses every file once into this index; rules then query it
instead of re-walking raw ASTs.  Name resolution is deliberately
syntactic — it resolves import aliases and relative imports to dotted
names without executing anything, which is exactly enough for the rule
families shipped here.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: ``# repro-lint: disable=RPL101,RPL202`` (line) /
#: ``disable-next-line=...`` / ``disable-file=...`` (whole file).
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-next-line|disable-file)\s*=\s*"
    r"([A-Za-z0-9_*,\s]+)"
)


@dataclass
class FunctionInfo:
    """One function or method definition."""

    module: str
    qualname: str  # "func" or "Class.method"
    node: FunctionNode
    class_name: Optional[str] = None

    @property
    def key(self) -> str:
        """Project-wide identity, ``module:qualname``."""
        return f"{self.module}:{self.qualname}"

    @property
    def simple_name(self) -> str:
        return self.node.name

    def decorator_names(self) -> List[str]:
        return [_last_component(d) for d in self.node.decorator_list]


@dataclass
class ClassInfo:
    """One class definition with dataclass metadata resolved."""

    module: str
    name: str
    node: ast.ClassDef
    base_names: Tuple[str, ...] = ()
    is_dataclass: bool = False
    frozen: bool = False
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)

    @property
    def key(self) -> str:
        return f"{self.module}:{self.name}"


@dataclass
class ModuleInfo:
    """One parsed source file."""

    name: str  # dotted module name
    path: Path
    display_path: str
    tree: ast.Module
    source_lines: List[str]
    #: local alias -> fully qualified dotted target
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    file_suppressions: Set[str] = field(default_factory=set)
    line_suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    def suppressed(self, rule_id: str, line: int) -> bool:
        if "all" in self.file_suppressions or rule_id in self.file_suppressions:
            return True
        rules = self.line_suppressions.get(line, ())
        return "all" in rules or rule_id in rules

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Fully qualified dotted name of a Name/Attribute chain.

        ``np.random.default_rng`` with ``import numpy as np`` resolves
        to ``"numpy.random.default_rng"``; unresolvable expressions
        (calls, subscripts) return ``None``.
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self.imports.get(current.id, current.id)
        parts.append(root)
        return ".".join(reversed(parts))


class Project:
    """Every parsed module plus cross-module lookup tables."""

    def __init__(self, modules: Iterable[ModuleInfo]) -> None:
        self.modules: Dict[str, ModuleInfo] = {m.name: m for m in modules}
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        for module in self.modules.values():
            for cls in module.classes.values():
                self.classes_by_name.setdefault(cls.name, []).append(cls)
                for method in cls.methods.values():
                    self.functions[method.key] = method
            for fn in module.functions.values():
                self.functions[fn.key] = fn

    def iter_functions(self) -> Iterable[FunctionInfo]:
        return self.functions.values()

    def iter_classes(self) -> Iterable[ClassInfo]:
        for module in self.modules.values():
            yield from module.classes.values()

    def lookup_method(
        self, class_name: str, method: str, _seen: Optional[Set[str]] = None
    ) -> Optional[FunctionInfo]:
        """Resolve ``class_name.method`` walking base classes by name."""
        seen = _seen if _seen is not None else set()
        if class_name in seen:
            return None
        seen.add(class_name)
        for cls in self.classes_by_name.get(class_name, ()):
            found = cls.methods.get(method)
            if found is not None:
                return found
            for base in cls.base_names:
                found = self.lookup_method(base, method, seen)
                if found is not None:
                    return found
        return None

    def dataclass_info(self, class_name: str) -> Optional[ClassInfo]:
        """The project's dataclass with this simple name, if unique."""
        candidates = [
            c for c in self.classes_by_name.get(class_name, ()) if c.is_dataclass
        ]
        return candidates[0] if len(candidates) == 1 else None


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
def _last_component(node: ast.AST) -> str:
    """The rightmost identifier of a decorator/base expression."""
    if isinstance(node, ast.Call):
        return _last_component(node.func)
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Subscript):  # Generic[...] bases
        return _last_component(node.value)
    return ""


def _dataclass_flags(node: ast.ClassDef) -> Tuple[bool, bool]:
    """(is_dataclass, frozen) from the class's decorator list."""
    for decorator in node.decorator_list:
        if _last_component(decorator) != "dataclass":
            continue
        frozen = False
        if isinstance(decorator, ast.Call):
            for keyword in decorator.keywords:
                if keyword.arg == "frozen":
                    frozen = bool(
                        isinstance(keyword.value, ast.Constant)
                        and keyword.value.value
                    )
        return True, frozen
    return False, False


def module_name_for(path: Path) -> str:
    """Dotted module name inferred from the package layout on disk."""
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    current = path.parent
    while (current / "__init__.py").is_file():
        parts.append(current.name)
        current = current.parent
    if not parts:  # an __init__.py whose own directory has no __init__
        parts = [path.parent.name]
    return ".".join(reversed(parts))


def _collect_imports(tree: ast.Module, module_name: str) -> Dict[str, str]:
    imports: Dict[str, str] = {}
    package_parts = module_name.split(".")[:-1]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = package_parts[: len(package_parts) - node.level + 1]
                prefix = ".".join(base + ([node.module] if node.module else []))
            else:
                prefix = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{prefix}.{alias.name}" if prefix else alias.name
    return imports


def _collect_suppressions(
    source_lines: List[str],
) -> Tuple[Set[str], Dict[int, Set[str]]]:
    file_level: Set[str] = set()
    per_line: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source_lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        kind = match.group(1)
        rules = {
            token.strip()
            for token in match.group(2).split(",")
            if token.strip()
        }
        rules = {"all" if r == "*" else r for r in rules}
        if kind == "disable-file":
            file_level |= rules
        elif kind == "disable-next-line":
            per_line.setdefault(lineno + 1, set()).update(rules)
        else:
            per_line.setdefault(lineno, set()).update(rules)
    return file_level, per_line


def parse_module(path: Path, display_path: Optional[str] = None) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo` (raises ``SyntaxError``)."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    name = module_name_for(path)
    lines = source.splitlines()
    file_suppressions, line_suppressions = _collect_suppressions(lines)
    module = ModuleInfo(
        name=name,
        path=path,
        display_path=display_path or str(path),
        tree=tree,
        source_lines=lines,
        imports=_collect_imports(tree, name),
        file_suppressions=file_suppressions,
        line_suppressions=line_suppressions,
    )
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            module.functions[node.name] = FunctionInfo(
                module=name, qualname=node.name, node=node
            )
        elif isinstance(node, ast.ClassDef):
            is_dc, frozen = _dataclass_flags(node)
            cls = ClassInfo(
                module=name,
                name=node.name,
                node=node,
                base_names=tuple(
                    _last_component(b) for b in node.bases if _last_component(b)
                ),
                is_dataclass=is_dc,
                frozen=frozen,
            )
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    cls.methods[item.name] = FunctionInfo(
                        module=name,
                        qualname=f"{node.name}.{item.name}",
                        node=item,
                        class_name=node.name,
                    )
            module.classes[node.name] = cls
    return module
