"""Telemetry rules (RPL5xx).

The telemetry subsystem stays near-free when disabled and analyzable
when enabled only if it is used uniformly: metric series names follow
one grammar (exporters and the ``repro-trace`` CLI key on them), and
spans are always context-managed so every span that opens also closes
— including on the exception paths the QoS repair loop exercises.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from ..telemetry.metrics import METRIC_NAME_RE
from .config import LintConfig
from .model import TELEMETRY, Finding, Rule, register
from .project import Project

#: MetricRegistry factory methods whose first argument is a series name.
_INSTRUMENT_FACTORIES = {"counter", "gauge", "histogram"}


def _iter_calls(project: Project):
    for module in project.modules.values():
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield module, node


def _receiver_mentions_tracer(func: ast.Attribute) -> bool:
    """True when the attribute chain under ``func`` names a tracer.

    Matches the package's access idioms — ``tracer.span``,
    ``self._tracer.span``, ``telemetry.tracer.span`` — while leaving
    unrelated ``.span(...)`` methods on other objects alone.
    """
    current: Optional[ast.AST] = func.value
    while current is not None:
        if isinstance(current, ast.Attribute):
            if "tracer" in current.attr.lower():
                return True
            current = current.value
        elif isinstance(current, ast.Call):
            current = current.func
        elif isinstance(current, ast.Name):
            return "tracer" in current.id.lower()
        else:
            return False
    return False


@register
class MetricNameFormat(Rule):
    rule_id = "RPL501"
    name = "metric-name-format"
    family = TELEMETRY
    description = (
        "Metric series name literal does not match the telemetry "
        "grammar ^[a-z][a-z0-9_.]*$: exporters and repro-trace key "
        "series by name, so one stray capital, space, or hyphen forks "
        "the namespace (MetricRegistry also rejects it at runtime)."
    )
    autofix_hint = (
        "Rename the series to lowercase dotted form ('engine.samples', "
        "'node.cache.hits'); put variable parts in **labels, never in "
        "the name."
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        for module, call in _iter_calls(project):
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in _INSTRUMENT_FACTORIES or not call.args:
                continue
            first = call.args[0]
            if not isinstance(first, ast.Constant):
                continue
            if not isinstance(first.value, str):
                continue
            if METRIC_NAME_RE.match(first.value):
                continue
            yield self.finding(
                project,
                module.name,
                first,
                f"metric name {first.value!r} passed to .{func.attr}() "
                f"does not match {METRIC_NAME_RE.pattern}",
            )


@register
class SpanNotContextManaged(Rule):
    rule_id = "RPL502"
    name = "span-without-with"
    family = TELEMETRY
    description = (
        "Tracer span opened without a `with` block: a bare "
        "tracer.span(...) call returns a context manager that is never "
        "entered (no timing) or, if entered manually, leaks open on "
        "exceptions and corrupts the per-thread span stack."
    )
    autofix_hint = (
        "Open spans as `with tracer.span(...) as span:` (or via "
        "ExitStack.enter_context when lifetimes genuinely cross scopes)."
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        for module in project.modules.values():
            managed: Set[ast.AST] = set()
            for node in ast.walk(module.tree):
                if isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        managed.add(item.context_expr)
                elif isinstance(node, ast.Call):
                    func = node.func
                    name = (
                        func.attr
                        if isinstance(func, ast.Attribute)
                        else getattr(func, "id", None)
                    )
                    if name == "enter_context":
                        managed.update(node.args)
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call) or node in managed:
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute) or func.attr != "span":
                    continue
                if not _receiver_mentions_tracer(func):
                    continue
                yield self.finding(
                    project,
                    module.name,
                    node,
                    "tracer span opened outside a `with` statement",
                )
