"""DATAFLOW family (RPL6xx): interprocedural provenance + locksets.

These rules consume the whole-program analyses in :mod:`.dataflow`.
Unlike the per-file RPL1xx/RPL2xx families they follow values across
modules: an unseeded generator laundered through a local, a dataclass
field, or a dict payload is still flagged when it finally reaches a
``Generator``-typed parameter — and a lock-guarded write is recognised
as guarded no matter which branch acquired the lock, as long as *every*
path did.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .callgraph import CallGraph, FunctionScanner
from .config import LintConfig
from .dataflow import (
    CLOCK,
    RNG,
    DataflowAnalysis,
    LocksetAnalysis,
    analyze,
    compute_locksets,
    pool_entry_keys,
    shared_callgraph,
)
from .model import DATAFLOW, Finding, Rule, register
from .project import FunctionInfo, Project

#: Methods allowed to write attributes without holding the lock: the
#: object is not yet (or no longer) shared while they run.
_UNSHARED_METHODS = {
    "__init__",
    "__post_init__",
    "__new__",
    "__setstate__",
    "__getstate__",
    "__reduce__",
}

#: Mutating container methods (mirrors the RPL201 set).
_MUTATORS = {
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "add", "discard", "update", "setdefault", "sort", "reverse",
    "appendleft", "popleft",
}


def _display_origin(analysis: DataflowAnalysis, module: str) -> str:
    info = analysis.project.modules.get(module)
    return info.display_path if info is not None else module


@register
class RngProvenance(Rule):
    """RPL601: values reaching Generator-typed parameters must be
    seed-derived."""

    rule_id = "RPL601"
    name = "rng-provenance"
    family = DATAFLOW
    description = (
        "Every value flowing into a Generator/RNGLike-typed parameter "
        "must originate from resolve_rng, Generator.spawn, or an "
        "explicit seed — traced interprocedurally through locals, "
        "dataclass fields, dict payloads, and module globals."
    )
    autofix_hint = (
        "Derive the generator from the run seed (resolve_rng(seed, "
        "owner=...) or parent.spawn(n)) instead of drawing OS entropy."
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        analysis = analyze(project, config)
        for hit in sorted(
            analysis.sink_hits, key=lambda h: (h.module, h.line, h.col)
        ):
            if hit.domain != RNG:
                continue
            yield Finding(
                rule_id=self.rule_id,
                path=_display_origin(analysis, hit.module),
                line=hit.line,
                col=hit.col,
                message=(
                    f"value from {hit.taint.origin} (line {hit.taint.line}) "
                    f"flows into seed-requiring parameter "
                    f"{hit.param!r} of {hit.callee}()"
                ),
                hint=self.autofix_hint,
            )


@register
class ClockProvenance(Rule):
    """RPL602: only sanctioned clock instances may reach Clock sinks."""

    rule_id = "RPL602"
    name = "clock-provenance"
    family = DATAFLOW
    description = (
        "Only telemetry.clock instances (Clock subclasses or configured "
        "clock_classes) may flow into Clock-typed parameters; arbitrary "
        "project objects reaching a duration-consuming sink indicate a "
        "miswired time source."
    )
    autofix_hint = (
        "Pass a telemetry Clock (SimulatedClock for reproducible runs, "
        "WallClock only at the sanctioned boundary)."
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        analysis = analyze(project, config)
        for hit in sorted(
            analysis.sink_hits, key=lambda h: (h.module, h.line, h.col)
        ):
            if hit.domain != CLOCK:
                continue
            yield Finding(
                rule_id=self.rule_id,
                path=_display_origin(analysis, hit.module),
                line=hit.line,
                col=hit.col,
                message=(
                    f"{hit.taint.origin} (line {hit.taint.line}) is not a "
                    f"Clock but flows into Clock-typed parameter "
                    f"{hit.param!r} of {hit.callee}()"
                ),
                hint=self.autofix_hint,
            )


@register
class LocksetDiscipline(Rule):
    """RPL603: pool-shared attribute writes must hold a lock on all
    paths."""

    rule_id = "RPL603"
    name = "lockset-discipline"
    family = DATAFLOW
    description = (
        "Attribute writes on lock-guarded shared objects (guarded_classes "
        "methods, and writes to guarded instances inside functions "
        "reachable from the thread-pool entry points) must happen while "
        "a lock is definitely held — computed by per-path lockset "
        "intersection, so a lock acquired on only one branch does not "
        "count."
    )
    autofix_hint = (
        "Wrap the write in `with self._lock:` (or acquire the guarding "
        "lock on every path leading to it)."
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        graph = shared_callgraph(project)
        guarded = set(config.guarded_classes)
        checked: Set[str] = set()
        findings: List[Finding] = []

        # (a) Methods of self-guarding classes: every self.* write needs
        # the instance lock.
        for cls_name in sorted(guarded):
            for info in project.classes_by_name.get(cls_name, ()):
                for method in info.methods.values():
                    if method.simple_name in _UNSHARED_METHODS:
                        continue
                    checked.add(method.key)
                    findings.extend(
                        self._check_function(
                            project, graph, method, guarded, self_guarded=True
                        )
                    )

        # (b) Functions running on pool threads: writes to guarded-typed
        # objects (parameters, locals, attribute chains) need a lock.
        entries = pool_entry_keys(project, graph, config)
        for key in sorted(graph.reachable_from(entries)):
            fn = project.functions.get(key)
            if fn is None or fn.key in checked:
                continue
            findings.extend(
                self._check_function(
                    project, graph, fn, guarded, self_guarded=False
                )
            )
        yield from findings

    def _check_function(
        self,
        project: Project,
        graph: CallGraph,
        fn: FunctionInfo,
        guarded: Set[str],
        self_guarded: bool,
    ) -> Iterator[Finding]:
        locksets = compute_locksets(graph, fn)
        scanner = locksets.scanner
        for node in ast.walk(fn.node):
            write = self._write_target(node)
            if write is None:
                continue
            target, verb = write
            receiver = self._guarded_receiver(
                scanner, fn, target, guarded, self_guarded
            )
            if receiver is None:
                continue
            if locksets.held_at(node):
                continue
            yield self.finding(
                project,
                fn.module,
                node,
                f"{verb} on shared {receiver} instance in "
                f"{fn.qualname}() without a lock held on all paths",
            )

    @staticmethod
    def _container_owner(expr: ast.AST) -> ast.AST:
        """``self.entries[k] = v`` writes a container *owned by* self:
        unwrap one attribute hop so the shared object is the owner."""
        if isinstance(expr, ast.Attribute):
            return expr.value
        return expr

    @classmethod
    def _write_target(cls, node: ast.AST) -> Optional[Tuple[ast.AST, str]]:
        """(written-receiver expression, verb) for a mutation node."""
        if isinstance(node, (ast.Assign,)):
            for target in node.targets:
                if isinstance(target, ast.Attribute):
                    return target.value, "attribute write"
                if isinstance(target, ast.Subscript):
                    return cls._container_owner(target.value), "item write"
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Attribute):
                return node.target.value, "augmented write"
            if isinstance(node.target, ast.Subscript):
                return (
                    cls._container_owner(node.target.value),
                    "augmented item write",
                )
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Attribute):
                return node.target.value, "attribute write"
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATORS
                and isinstance(func.value, ast.Attribute)
            ):
                # self._items.append(...) mutates the container held in
                # an attribute: the *owner* of the attribute is shared.
                return func.value.value, f"container .{func.attr}()"
        return None

    @staticmethod
    def _guarded_receiver(
        scanner: FunctionScanner,
        fn: FunctionInfo,
        target: ast.AST,
        guarded: Set[str],
        self_guarded: bool,
    ) -> Optional[str]:
        """Guarded class name the written object belongs to, if any."""
        if isinstance(target, ast.Name) and target.id == "self":
            if fn.simple_name in _UNSHARED_METHODS:
                # The object under construction (or deserialization) is
                # not shared yet, even when the constructor itself runs
                # on a pool thread.
                return None
            if self_guarded:
                return fn.class_name
        inferred = scanner._value_type(target)
        if inferred in guarded:
            return inferred
        return None
