"""Finding reporters: human text and machine JSON (for CI)."""

from __future__ import annotations

import json
from collections import Counter
from typing import List

from .model import Finding, catalog

#: Schema version of the JSON report; bump on breaking shape changes.
JSON_SCHEMA_VERSION = 1


def render_text(findings: List[Finding]) -> str:
    """One line per finding plus a per-rule summary."""
    if not findings:
        return "repro-lint: clean (0 findings)"
    lines = []
    for finding in findings:
        lines.append(
            f"{finding.location()}: {finding.rule_id} {finding.message}"
        )
        lines.append(f"    hint: {finding.hint}")
    counts = Counter(f.rule_id for f in findings)
    summary = ", ".join(f"{rule}={n}" for rule, n in sorted(counts.items()))
    lines.append("")
    lines.append(
        f"repro-lint: {len(findings)} finding(s) ({summary})"
    )
    return "\n".join(lines)


def render_json(findings: List[Finding]) -> str:
    """CI-facing JSON: stable keys, counts, and the rule catalog IDs."""
    payload = {
        "schema_version": JSON_SCHEMA_VERSION,
        "tool": "repro-lint",
        "finding_count": len(findings),
        "counts_by_rule": dict(
            sorted(Counter(f.rule_id for f in findings).items())
        ),
        "findings": [
            {
                "rule_id": f.rule_id,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "hint": f.hint,
            }
            for f in findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def render_rule_catalog() -> str:
    """The ``--list-rules`` table."""
    lines = ["repro-lint rule catalog:", ""]
    current_family = None
    for entry in catalog():
        if entry.family != current_family:
            current_family = entry.family
            lines.append(f"[{entry.family}]")
        lines.append(f"  {entry.rule_id}  {entry.name}")
        lines.append(f"      {entry.description}")
        lines.append(f"      fix: {entry.autofix_hint}")
    return "\n".join(lines)
