"""COST family (RPL10xx): static per-event complexity budgets.

These rules consume the shared :class:`~.cost.CostAnalysis` harvest:
one pass over the project yields every function's symbolic cost
closure, the local quadratic products, the hot-path allocation sites,
the repeated-recomputation merges, and the registry health report;
each rule renders its slice as findings.  The same analysis backs the
``repro-cost`` CLI, so every finding here can be inspected in context
(per-entry-point cost table, closures, hot scope) with
``repro-cost src/repro``.
"""

from __future__ import annotations

from typing import Iterator

from .config import LintConfig
from .cost import CostAnalysis, cost_analysis, render_terms
from .flow import Site
from .model import COST, Finding, Rule, register
from .project import Project


def _finding_at(
    rule: Rule, project: Project, site: Site, message: str
) -> Finding:
    module = project.modules.get(site.module)
    path = str(module.display_path) if module is not None else site.module
    return Finding(
        rule_id=rule.rule_id,
        path=path,
        line=site.line,
        col=site.col,
        message=message,
        hint=rule.autofix_hint,
    )


def _fn_name(project: Project, key: str) -> str:
    fn = project.functions.get(key)
    return fn.qualname if fn is not None else key.split(":")[-1]


@register
class CostBudgetExceeded(Rule):
    """RPL1001: a registered function's closed cost exceeds its budget."""

    rule_id = "RPL1001"
    name = "cost-budget-exceeded"
    family = COST
    description = (
        "Functions registered in [tool.repro-lint.cost] budgets carry "
        "a declared complexity polynomial (small, n_nodes, n_jobs, "
        "n_shards, and * products); their closed symbolic cost — own "
        "loops, materializations, membership scans, plus every "
        "callee's, bound through call sites over the callgraph — must "
        "not exceed that degree in fleet size.  This is the CLITE "
        "'low-overhead decision' claim as a checked invariant: a "
        "full-cluster scan reintroduced anywhere under an event "
        "handler fails the handler's O(small) budget."
    )
    autofix_hint = (
        "Replace the fleet-sized scan with an incremental index "
        "maintained at commit points (or a dirty set drained per "
        "tick), raise the declared budget if the cost is truly "
        "intended, or suppress the single charge site with a reasoned "
        "disable-next-line comment."
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        analysis = cost_analysis(project, config)
        for hit in analysis.budget_hits:
            term = hit.term
            via = " via " + " -> ".join(term.chain) if term.chain else ""
            cost = render_terms([term])
            yield _finding_at(
                self,
                project,
                term.site,
                (
                    f"{hit.budget.entry!r} is budgeted O({hit.budget.expr}) "
                    f"but closes at {cost}: {term.kind} charge "
                    f"{term.what}{via}"
                ),
            )


@register
class QuadraticBlowup(Rule):
    """RPL1002: provable same-family quadratic products."""

    rule_id = "RPL1002"
    name = "quadratic-blowup"
    family = COST
    description = (
        "A cost monomial containing the same N-class size variable "
        "twice is a provable quadratic in one fleet axis: nested loops "
        "over two n_nodes-sized collections, or a list-membership / "
        "sorted() / list() materialization of an N collection inside a "
        "loop already bounded by that same N.  Cross-family products "
        "(n_jobs x n_nodes batch placement) are deliberate and stay "
        "silent; same-family ones are almost always an accidental "
        "O(N^2)."
    )
    autofix_hint = (
        "Hoist the inner scan out of the loop, precompute a set/dict "
        "for membership, or restructure around an index; suppress "
        "with a reason only when the quadratic is bounded by "
        "construction."
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        analysis = cost_analysis(project, config)
        for hit in analysis.quads:
            yield _finding_at(
                self,
                project,
                hit.site,
                (
                    f"same-family quadratic in "
                    f"{_fn_name(project, hit.fn_key)!r}: "
                    f"{'*'.join(hit.vars)} from {hit.what}"
                ),
            )


@register
class HotPathAllocation(Rule):
    """RPL1003: N-sized allocation/copy inside hot entry points."""

    rule_id = "RPL1003"
    name = "hot-path-n-allocation"
    family = COST
    description = (
        "Functions reachable from a registered hot entry point (the "
        "engine round loop, warehouse event handlers, "
        "ServiceGateway.publish) or living in a hot-path module must "
        "not materialize n_nodes- or n_jobs-sized containers "
        "(sorted/list/dict of a fleet collection, numpy copies): a "
        "per-event O(N) allocation is the cost the incremental "
        "indices exist to avoid.  n_shards-sized routing state is "
        "exempt — shard counts are small by design."
    )
    autofix_hint = (
        "Maintain the derived structure incrementally at commit "
        "points instead of rebuilding it per event, or iterate "
        "lazily without materializing."
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        analysis = cost_analysis(project, config)
        for hit in analysis.allocs:
            origin = (
                f"reachable from {_fn_name(project, hit.entry)!r}"
                if hit.entry
                else "in a hot-path module"
            )
            yield _finding_at(
                self,
                project,
                hit.site,
                (
                    f"{hit.bound}-sized allocation in "
                    f"{_fn_name(project, hit.fn_key)!r} ({origin}): "
                    f"{hit.what}"
                ),
            )


@register
class RepeatedRecomputation(Rule):
    """RPL1004: a pure costly call repeated with unchanged arguments."""

    rule_id = "RPL1004"
    name = "repeated-recomputation"
    family = COST
    description = (
        "A project function with an empty PURE effect closure and a "
        "non-constant cost, called two or more times with textually "
        "identical arguments (receiver included) in one dynamic scope "
        "— same loop iteration, branch-compatible, merged through the "
        "callgraph with per-frame argument substitution — recomputes "
        "the same answer; compute once and thread the value through. "
        "Reported only inside budget-registered functions, where "
        "per-event cost is a declared invariant.  The repo's own "
        "instance was _loads_of, computed by _on_recheck and again "
        "via _mark_verified for the same node and tick."
    )
    autofix_hint = (
        "Compute the value once, pass it down as a parameter "
        "(loads=... threading), or memoize per tick; calls under a "
        "loop or with differing arguments are not flagged."
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        analysis = cost_analysis(project, config)
        for hit in analysis.repeats:
            yield _finding_at(
                self,
                project,
                hit.site,
                (
                    f"{_fn_name(project, hit.fn_key)!r} computes pure "
                    f"{_fn_name(project, hit.callee)!r}({hit.args}) "
                    f"{hit.count}x with unchanged arguments"
                ),
            )


@register
class CostRegistryHealth(Rule):
    """RPL1005: the cost registry must stay live and complete."""

    rule_id = "RPL1005"
    name = "cost-registry-health"
    family = COST
    description = (
        "Entries in the [tool.repro-lint.cost] budgets and "
        "hot-entrypoints tables must resolve to functions that still "
        "exist, budget expressions must parse (small / n_nodes / "
        "n_jobs / n_shards and * products), and every hot entry point "
        "must carry a declared budget — an unbudgeted event handler "
        "is an unchecked scaling claim.  Only entries whose dotted "
        "module prefix is part of the analysed tree are checked, so "
        "partial-tree runs stay quiet."
    )
    autofix_hint = (
        "Update the dotted path to the function's new home, fix the "
        "budget grammar, or add the missing budgets entry for the "
        "hot entry point."
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        analysis = cost_analysis(project, config)
        for hit in analysis.registry:
            yield _finding_at(
                self,
                project,
                hit.site,
                (
                    f"cost-registry entry {hit.entry!r} "
                    f"({hit.table}): {hit.detail}"
                ),
            )


#: Imported for re-export convenience (repro-cost shares the harvest).
__all__ = [
    "CostBudgetExceeded",
    "QuadraticBlowup",
    "HotPathAllocation",
    "RepeatedRecomputation",
    "CostRegistryHealth",
    "CostAnalysis",
]
