"""``repro-pure`` console entry point: the purity & phase report.

Renders the artifacts behind the PURE (RPL9xx) lint family for human
inspection::

    repro-pure src/repro              # registry, phase, snapshot report
    repro-pure src/repro --check      # exit 1 on any violation
    repro-pure src/repro --format json

The report walks the five analyses in order: the declared-pure
registry (each root with its effect-closure verdict), the probe/commit
phase separation (entry points, reachable-function counts, and every
violation with its call path), snapshot alias escapes, set-iteration
order hazards inside the probe closure, and registry health.  Exit
status: 0 ok, 1 any violation with ``--check``, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from .config import load_config
from .engine import LintEngine
from .pure import PureAnalysis, pure_analysis


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-pure",
        description=(
            "Purity & phase-effect report: declared-pure effect "
            "closures, probe/commit separation, snapshot escapes, "
            "set-iteration order hazards (the PURE lint family's "
            "working state, rendered)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="Files or directories to analyse (default: src/repro).",
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="PATH",
        help="File or directory to skip during discovery (repeatable).",
    )
    parser.add_argument(
        "--format",
        "-f",
        choices=("text", "json"),
        default="text",
        help="Report format.",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="Exit 1 on any purity or phase violation.",
    )
    return parser


def _fn_label(analysis: PureAnalysis, key: str) -> str:
    fn = analysis.project.functions.get(key)
    if fn is None:
        return key
    return f"{fn.module}:{fn.qualname}"


def render_text(analysis: PureAnalysis) -> str:
    lines: List[str] = []
    lines.append("declared-pure registry")
    lines.append("======================")
    if not analysis.pure_roots:
        lines.append("  (no pure roots registered or marked)")
    mutations_by_root: Dict[str, int] = {}
    for hit in analysis.mutations:
        mutations_by_root[hit.root_key] = (
            mutations_by_root.get(hit.root_key, 0) + 1
        )
    for key in sorted(analysis.pure_roots):
        label = _fn_label(analysis, key)
        count = mutations_by_root.get(key, 0)
        verdict = "ok" if count == 0 else f"{count} mutation(s)"
        lines.append(f"  {label}  [{analysis.pure_roots[key]}]  {verdict}")
    if analysis.mutations:
        lines.append("")
        lines.append("mutations of pre-existing state")
        for hit in analysis.mutations:
            effect = hit.effect
            via = " via " + " -> ".join(effect.chain) if effect.chain else ""
            lines.append(
                f"  {effect.site.module}:{effect.site.line}  "
                f"root={effect.root}  {effect.op} on {effect.target}"
                f"{via}  (pure root {_fn_label(analysis, hit.root_key)})"
            )
    lines.append("")
    lines.append("probe/commit phase separation")
    lines.append("=============================")
    if not analysis.probe_entries:
        lines.append("  (no probe entry points registered)")
    for key in sorted(analysis.probe_entries):
        lines.append(f"  probe entry {_fn_label(analysis, key)}")
    lines.append(f"  reachable functions: {len(analysis.reachable)}")
    lines.append(f"  commit mutators registered: {len(analysis.mutator_keys)}")
    if analysis.phase:
        lines.append("")
        lines.append(f"PHASE VIOLATIONS: {len(analysis.phase)}")
        for hit in analysis.phase:
            path = " -> ".join(
                _fn_label(analysis, step).split(":")[-1] for step in hit.path
            )
            lines.append(
                f"  {hit.site.module}:{hit.site.line}  [{hit.kind}] "
                f"{hit.what}  (path {path})"
            )
    else:
        lines.append("  violations: none")
    lines.append("")
    lines.append("snapshot boundaries")
    lines.append("===================")
    if not analysis.snapshots:
        lines.append("  (no live containers escape snapshot accessors)")
    for snap in analysis.snapshots:
        lines.append(
            f"  {snap.site.module}:{snap.site.line}  {snap.method} "
            f"returns live {snap.ctype} {snap.container}"
        )
    lines.append("")
    lines.append("iteration-order hazards")
    lines.append("=======================")
    if not analysis.order:
        lines.append("  (no set iteration feeds an ordered decision)")
    for hazard in analysis.order:
        lines.append(
            f"  {hazard.site.module}:{hazard.site.line}  "
            f"{hazard.iterable!r} -> {hazard.consumer}  "
            f"(reachable from {_fn_label(analysis, hazard.entry)})"
        )
    lines.append("")
    lines.append("registry health")
    lines.append("===============")
    if not analysis.registry:
        lines.append("  (every registry entry resolves)")
    for stale in analysis.registry:
        lines.append(
            f"  stale [{stale.table}] entry {stale.entry!r} "
            f"(module {stale.module})"
        )
    return "\n".join(lines)


def render_json(analysis: PureAnalysis) -> str:
    payload = {
        "pure_roots": {
            _fn_label(analysis, key): origin
            for key, origin in sorted(analysis.pure_roots.items())
        },
        "mutations": [
            {
                "root": _fn_label(analysis, hit.root_key),
                "module": hit.effect.site.module,
                "line": hit.effect.site.line,
                "effect_root": hit.effect.root,
                "op": hit.effect.op,
                "target": hit.effect.target,
                "via": list(hit.effect.chain),
            }
            for hit in analysis.mutations
        ],
        "probe_entries": sorted(
            _fn_label(analysis, key) for key in analysis.probe_entries
        ),
        "reachable_count": len(analysis.reachable),
        "phase_violations": [
            {
                "module": hit.site.module,
                "line": hit.site.line,
                "kind": hit.kind,
                "what": hit.what,
                "entry": _fn_label(analysis, hit.entry),
                "path": [
                    _fn_label(analysis, step) for step in hit.path
                ],
            }
            for hit in analysis.phase
        ],
        "snapshot_escapes": [
            {
                "module": snap.site.module,
                "line": snap.site.line,
                "method": snap.method,
                "container": snap.container,
                "type": snap.ctype,
            }
            for snap in analysis.snapshots
        ],
        "order_hazards": [
            {
                "module": hazard.site.module,
                "line": hazard.site.line,
                "iterable": hazard.iterable,
                "consumer": hazard.consumer,
                "entry": _fn_label(analysis, hazard.entry),
            }
            for hazard in analysis.order
        ],
        "stale_registry": [
            {"entry": stale.entry, "table": stale.table}
            for stale in analysis.registry
        ],
        "violations": analysis.violation_count,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    paths = args.paths
    if not paths:
        default = Path("src/repro")
        if not default.is_dir():
            parser.print_usage(sys.stderr)
            print(
                "repro-pure: no paths given and ./src/repro not found",
                file=sys.stderr,
            )
            return 2
        paths = [str(default)]

    try:
        config = load_config(Path(paths[0]))
    except ValueError as error:
        print(f"repro-pure: {error}", file=sys.stderr)
        return 2

    engine = LintEngine(config)
    try:
        project = engine.build_project(paths, exclude=args.exclude)
    except (FileNotFoundError, SyntaxError) as error:
        print(f"repro-pure: {error}", file=sys.stderr)
        return 2

    analysis = pure_analysis(project, config)
    if args.format == "json":
        print(render_json(analysis))
    else:
        print(render_text(analysis))
    if args.check and analysis.violation_count:
        print(
            f"repro-pure: {analysis.violation_count} purity/phase "
            f"violation(s) found",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
