"""Interprocedural purity and phase-effect analysis (PURE).

PR 8's sharded federation is bit-identical under concurrent probing
*only because* probing commits nothing: the root fans
``WarehouseService.probe_admit`` out across a thread pool and replays
the results in preference order, so any stray mutation, fresh RNG draw,
or set-iteration-order dependence on the probe path silently breaks the
serial≡concurrent guarantee.  That invariant used to live in a
docstring (``federation.py``) and one parametrized test; this module
proves it statically, over the same callgraph/type oracle the RPL6xx
and RPL8xx families use.  Five analyses share one harvest:

* **Declared purity (RPL901)** — functions registered in
  ``[tool.repro-lint.pure] registry`` (or marked ``@declared_pure``)
  must not mutate *pre-existing* state: no attribute/subscript writes,
  augmented assigns, ``del``, or mutating-method calls whose receiver
  is rooted in ``self``, a parameter, or a global — directly or through
  any callee, with call-site argument binding (a callee appending to a
  *fresh local* list the caller made is fine; appending to a parameter
  the caller passed through is not).
* **Probe/commit phase separation (RPL902)** — nothing reachable from a
  registered probe entry point may invoke a commit-tagged mutator
  (``Cluster.place``/``remove``, the service's commit/migrate surface,
  ``ObservationStore.put`` outside the sanctioned publish path) or draw
  fresh RNG/wall-clock state.
* **Snapshot alias escape (RPL903)** — ``status()``/``placements()``/
  timeline-style accessors must not return references to live internal
  mutable containers (a caller mutating the "snapshot" would perturb a
  later replay); defensive copies (``dict(...)``, ``tuple(...)``,
  comprehensions) are the fix and are recognised structurally.
* **Iteration-order nondeterminism (RPL904)** — iterating a ``set`` /
  ``frozenset`` into an ordered decision (a ``for`` loop, ``list()``,
  a list/dict comprehension) without an intervening ``sorted()``, in
  any function reachable from a probe entry or purity root.
* **Registry health (RPL905)** — stale purity-registry entries that no
  longer resolve to a project function, mirroring RPL705's discipline
  for the units registry.

Everything is syntactic and conservative: receivers whose alias root
cannot be proven pre-existing are treated as fresh and never flagged,
and the lock-guarded telemetry surface is exempt by explicit allow-list
(``pure_allow_calls``) because metric registration is idempotent and
replay-invariant by design.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field as dc_field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .callgraph import CallGraph, FunctionScanner, _annotation_class
from .config import LintConfig
from .dataflow import _BIT_GENERATORS, shared_callgraph
from .flow import Site
from .project import FunctionInfo, ModuleInfo, Project

#: Receiver methods that mutate the receiver in place.
_MUTATING_METHODS = {
    "add", "append", "appendleft", "clear", "discard", "extend",
    "insert", "move_to_end", "pop", "popitem", "popleft", "remove",
    "reverse", "setdefault", "sort", "update", "write", "writelines",
}

#: Simple type names of mutable containers a snapshot must not leak.
_MUTABLE_CONTAINERS = {
    "Counter", "DefaultDict", "Deque", "Dict", "List", "MutableMapping",
    "MutableSequence", "MutableSet", "OrderedDict", "Set", "defaultdict",
    "deque", "dict", "list", "set",
}

#: Callables that consume an iterable order-insensitively.
_ORDER_BLIND = {
    "all", "any", "bool", "frozenset", "len", "max", "min", "set",
    "sorted", "sum",
}

#: Callables whose result order mirrors iteration order — feeding a raw
#: set into one of these is the RPL904 hazard.
_ORDER_SENSITIVE = {"enumerate", "list", "reversed", "tuple"}

#: Stateful module-level RNG functions of the stdlib ``random`` module.
_GLOBAL_RANDOM_FNS = {
    "betavariate", "choice", "choices", "expovariate", "gauss",
    "getrandbits", "normalvariate", "randint", "random", "randrange",
    "sample", "seed", "shuffle", "uniform",
}

#: Wall-clock reads: a probe observing real time diverges under replay.
_CLOCK_CALLS = {
    "datetime.date.today",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.time",
    "time.time_ns",
}

#: Constructors whose ``self.x = Ctor()`` / literal writes type the
#: attribute as a mutable container even without an annotation.
_CONTAINER_CTOR_NAMES = {
    "Counter", "OrderedDict", "defaultdict", "deque", "dict", "list",
    "set",
}

_CTOR_NAMES = ("__init__", "__post_init__")

#: Decorator simple name marking a function as declared pure in source.
PURE_MARKER = "declared_pure"

_VIA_LIMIT = 8


# ----------------------------------------------------------------------
# Result records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Effect:
    """One mutation of pre-existing state, in some function's frame."""

    root: str             # "self" | "param:<name>" | "global:<name>"
    target: str           # source-ish description of the mutated thing
    op: str               # "attribute-write" | "subscript-write" | ...
    site: Site
    chain: Tuple[str, ...] = ()  # callee qualnames the effect hides behind


@dataclass(frozen=True)
class MutationHit:
    """RPL901: a declared-pure root whose closure mutates state."""

    root_key: str         # function key of the declared-pure root
    effect: Effect


@dataclass(frozen=True)
class PhaseHit:
    """RPL902: a probe-reachable function breaks phase separation."""

    site: Site
    entry: str            # probe entry function key
    kind: str             # "commit-mutator" | "fresh-rng" | "clock"
    what: str             # mutator qualname / RNG-clock dotted name
    path: Tuple[str, ...]  # call path entry -> function containing site


@dataclass(frozen=True)
class SnapshotHit:
    """RPL903: a snapshot accessor returns a live mutable container."""

    site: Site
    method: str           # qualname of the accessor
    container: str        # "Owner.attr" of the escaping container
    ctype: str            # its inferred container type


@dataclass(frozen=True)
class OrderHit:
    """RPL904: set iteration feeding an ordered decision."""

    site: Site
    iterable: str         # description of the set expression
    consumer: str         # "for-loop" | "list()" | "list-comp" | ...
    entry: str            # probe/purity root it is reachable from


@dataclass(frozen=True)
class RegistryHit:
    """RPL905: a purity-registry entry that no longer resolves."""

    entry: str
    table: str            # "registry" | "probe-entrypoints" | ...
    module: str           # the project module the entry points into
    site: Site


# ----------------------------------------------------------------------
# Per-function harvest
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _CallRecord:
    """One resolved call site with alias roots of its arguments."""

    targets: Tuple[str, ...]
    site: Site
    receiver_root: Optional[str]          # root of a bound receiver
    arg_roots: Tuple[Optional[str], ...]  # positional argument roots
    kw_roots: Tuple[Tuple[str, Optional[str]], ...]


@dataclass
class _Harvest:
    """Everything one pass over a function body gives the analyses."""

    effects: List[Effect] = dc_field(default_factory=list)
    calls: List[_CallRecord] = dc_field(default_factory=list)
    #: (kind, what, site) — fresh-RNG / clock draws in this body.
    phase_risks: List[Tuple[str, str, Site]] = dc_field(default_factory=list)
    #: (site, iterable description, consumer) raw order hazards.
    order_risks: List[Tuple[Site, str, str]] = dc_field(default_factory=list)


def _expr_text(node: ast.AST, limit: int = 60) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        text = type(node).__name__
    return text if len(text) <= limit else text[: limit - 3] + "..."


def _base_expr(node: ast.AST) -> ast.AST:
    """The base of an Attribute/Subscript chain (``self.a.b[0]`` → self)."""
    current = node
    while isinstance(current, (ast.Attribute, ast.Subscript, ast.Starred)):
        current = current.value
    return current


def _param_names(fn: FunctionInfo) -> List[str]:
    args = fn.node.args
    return [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]


class _FrameRoots:
    """Alias roots of names inside one function frame.

    A name's root is ``"param:<p>"`` / ``"self"`` / ``"global:<g>"``
    when *every* binding of the name is an Attribute/Subscript chain
    over something with that same root; any binding to a call result or
    literal makes the name fresh (root ``None``), which the analyses
    treat as unobservable — the conservative direction for a purity
    checker that must not cry wolf.
    """

    def __init__(self, fn: FunctionInfo) -> None:
        self.fn = fn
        self.params = set(_param_names(fn))
        self.assigns: Dict[str, List[ast.AST]] = {}
        self.roots: Dict[str, Optional[str]] = {}
        for name in self.params:
            if name in ("self", "cls") and fn.class_name is not None:
                self.roots[name] = "self"
            else:
                self.roots[name] = f"param:{name}"
        self._collect()
        for _ in range(3):  # alias-of-alias chains settle in a few rounds
            self._resolve_round()

    def _record(self, target: ast.AST, value: Optional[ast.AST]) -> None:
        if isinstance(target, ast.Name):
            self.assigns.setdefault(target.id, []).append(
                value if value is not None else ast.Constant(value=None)
            )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                # Unpacked elements have no provable root: fresh.
                self._record(elt, None)
        elif isinstance(target, ast.Starred):
            self._record(target.value, None)

    def _collect(self) -> None:
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._record(target, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._record(node.target, node.value)
            elif isinstance(node, ast.For):
                # Loop targets alias elements of the iterated container.
                self._record(node.target, node.iter)
            elif isinstance(node, ast.comprehension):
                self._record(node.target, node.iter)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        self._record(item.optional_vars, item.context_expr)
            elif isinstance(node, (ast.NamedExpr,)):
                self._record(node.target, node.value)

    def _resolve_round(self) -> None:
        for name in sorted(self.assigns):
            candidates: Set[Optional[str]] = set()
            if name in self.params:
                candidates.add(self.roots.get(name))
            for value in self.assigns[name]:
                candidates.add(self.root_of(value))
            if len(candidates) == 1:
                self.roots[name] = candidates.pop()
            else:
                self.roots[name] = None

    def root_of(self, expr: ast.AST) -> Optional[str]:
        """Pre-existing-state root of an expression, or None (fresh)."""
        base = _base_expr(expr)
        if isinstance(base, ast.IfExp):
            left = self.root_of(base.body)
            right = self.root_of(base.orelse)
            return left if left == right else None
        if not isinstance(base, ast.Name):
            return None  # calls, literals, comprehensions: fresh
        name = base.id
        if name in self.roots:
            return self.roots[name]
        if name in self.assigns:
            return None  # still resolving: fresh is the safe answer
        return f"global:{name}"


# ----------------------------------------------------------------------
# The analysis
# ----------------------------------------------------------------------
class PureAnalysis:
    """Shared harvest + the five PURE analyses over one project."""

    def __init__(
        self, project: Project, graph: CallGraph, config: LintConfig
    ) -> None:
        self.project = project
        self.graph = graph
        self.config = config

        #: declared-pure root key -> how it was declared
        self.pure_roots: Dict[str, str] = {}
        self.probe_entries: Dict[str, str] = {}   # key -> config entry
        self.mutator_keys: Dict[str, str] = {}    # key -> config entry
        self.reachable: Dict[str, Tuple[str, ...]] = {}

        self.mutations: List[MutationHit] = []
        self.phase: List[PhaseHit] = []
        self.snapshots: List[SnapshotHit] = []
        self.order: List[OrderHit] = []
        self.registry: List[RegistryHit] = []

        self._harvests: Dict[str, _Harvest] = {}
        self._closure_cache: Dict[str, Tuple[Effect, ...]] = {}
        self._attr_container_types: Dict[Tuple[str, str], str] = {}
        self._allow_qualnames: Set[str] = set()
        self._allow_simple: Set[str] = set()
        self._allow_dotted: Set[str] = set()
        for entry in config.pure_allow_calls:
            if "." not in entry:
                self._allow_simple.add(entry)
            elif entry.count(".") == 1:
                self._allow_qualnames.add(entry)
            else:
                self._allow_dotted.add(entry)
        self._snapshot_bare: Set[str] = set()
        self._snapshot_qualified: Set[str] = set()
        for entry in config.pure_snapshot_methods:
            if "." in entry:
                self._snapshot_qualified.add(entry)
            else:
                self._snapshot_bare.add(entry)

    # ------------------------------------------------------------------
    # Entry / registry resolution
    # ------------------------------------------------------------------
    def _resolve_dotted(self, dotted: str) -> Optional[str]:
        """``pkg.mod.fn`` / ``pkg.mod.Cls.meth`` to a function key."""
        for module_name, module in self.project.modules.items():
            if not dotted.startswith(module_name + "."):
                continue
            remainder = dotted[len(module_name) + 1:]
            parts = remainder.split(".")
            if len(parts) == 1 and parts[0] in module.functions:
                return module.functions[parts[0]].key
            if len(parts) == 2 and parts[0] in module.classes:
                method = module.classes[parts[0]].methods.get(parts[1])
                if method is not None:
                    return method.key
        return None

    def _owning_module(self, dotted: str) -> Optional[str]:
        """Longest project module name the dotted entry points into."""
        best = None
        for module_name in self.project.modules:
            if dotted.startswith(module_name + "."):
                if best is None or len(module_name) > len(best):
                    best = module_name
        return best

    def _resolve_tables(self) -> None:
        tables = (
            ("registry", self.config.pure_registry, self.pure_roots),
            (
                "probe-entrypoints",
                self.config.pure_probe_entrypoints,
                self.probe_entries,
            ),
            (
                "commit-mutators",
                self.config.pure_commit_mutators,
                self.mutator_keys,
            ),
        )
        for table, entries, out in tables:
            for entry in entries:
                key = self._resolve_dotted(entry)
                if key is not None:
                    out[key] = entry
                    continue
                module = self._owning_module(entry)
                if module is None:
                    continue  # entry targets a module outside this run
                site = Site(module=module, line=1, col=0, fn_key="")
                self.registry.append(
                    RegistryHit(
                        entry=entry, table=table, module=module, site=site
                    )
                )
        # @declared_pure marks a root directly in source.
        for fn in self.project.iter_functions():
            if PURE_MARKER in fn.decorator_names():
                self.pure_roots.setdefault(fn.key, f"@{PURE_MARKER}")

    def _allowed(self, key: str) -> bool:
        fn = self.project.functions.get(key)
        if fn is None:
            return False
        return (
            fn.qualname in self._allow_qualnames
            or fn.simple_name in self._allow_simple
            or f"{fn.module}.{fn.qualname}" in self._allow_dotted
        )

    # ------------------------------------------------------------------
    # Harvest
    # ------------------------------------------------------------------
    def _site(self, fn: FunctionInfo, node: ast.AST) -> Site:
        return Site(
            module=fn.module,
            line=getattr(node, "lineno", fn.node.lineno),
            col=getattr(node, "col_offset", 0),
            fn_key=fn.key,
        )

    def _harvest_ctor_container_types(self) -> None:
        """``self.x = {}`` / ``deque()`` writes type unannotated attrs."""
        for fn in self.project.iter_functions():
            if fn.class_name is None:
                continue
            module = self.project.modules[fn.module]
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Assign):
                    continue
                ctype = self._container_literal_type(module, node.value)
                if ctype is None:
                    continue
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        self._attr_container_types.setdefault(
                            (fn.class_name, target.attr), ctype
                        )

    @staticmethod
    def _container_literal_type(
        module: ModuleInfo, value: ast.AST
    ) -> Optional[str]:
        if isinstance(value, (ast.Dict, ast.DictComp)):
            return "dict"
        if isinstance(value, (ast.List, ast.ListComp)):
            return "list"
        if isinstance(value, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(value, ast.Call) and isinstance(
            value.func, (ast.Name, ast.Attribute)
        ):
            dotted = module.resolve(value.func)
            simple = dotted.split(".")[-1] if dotted else None
            if simple in _CONTAINER_CTOR_NAMES:
                return simple
        return None

    def _attr_container_type(
        self, owner: Optional[str], attr: str
    ) -> Optional[str]:
        if owner is None:
            return None
        annotated = self.graph.attr_type(owner, attr)
        if annotated in _MUTABLE_CONTAINERS:
            return annotated
        literal = self._attr_container_types.get((owner, attr))
        if literal in _MUTABLE_CONTAINERS:
            return literal
        return None

    def _scan_function(self, fn: FunctionInfo) -> None:
        module = self.project.modules[fn.module]
        scanner = FunctionScanner(self.graph, fn, module)
        for stmt in fn.node.body:
            scanner.visit(stmt)
        roots = _FrameRoots(fn)
        harvest = self._harvests.setdefault(fn.key, _Harvest())
        global_names: Set[str] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Global):
                global_names.update(node.names)

        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._effect_from_target(
                        fn, roots, harvest, target, "attribute-write",
                        global_names,
                    )
            elif isinstance(node, ast.AnnAssign):
                self._effect_from_target(
                    fn, roots, harvest, node.target, "attribute-write",
                    global_names,
                )
            elif isinstance(node, ast.AugAssign):
                self._effect_from_target(
                    fn, roots, harvest, node.target, "augmented-assign",
                    global_names, include_globals=True,
                )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        self._effect_from_target(
                            fn, roots, harvest, target, "del", global_names
                        )
            elif isinstance(node, ast.Call):
                self._scan_call(fn, module, scanner, roots, harvest, node)

        self._scan_order_hazards(fn, module, roots, harvest)
        self._scan_snapshot_returns(fn, scanner, roots)

    def _effect_from_target(
        self,
        fn: FunctionInfo,
        roots: _FrameRoots,
        harvest: _Harvest,
        target: ast.AST,
        op: str,
        global_names: Set[str],
        include_globals: bool = False,
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._effect_from_target(
                    fn, roots, harvest, elt, op, global_names,
                    include_globals,
                )
            return
        if isinstance(target, ast.Name):
            # Rebinding a local is not a mutation — unless the name is
            # declared ``global``, in which case the write is shared.
            if target.id in global_names:
                harvest.effects.append(
                    Effect(
                        root=f"global:{target.id}",
                        target=target.id,
                        op="global-assign" if op != "augmented-assign" else op,
                        site=self._site(fn, target),
                    )
                )
            return
        if isinstance(target, ast.Subscript):
            op = "subscript-write" if op == "attribute-write" else op
        elif not isinstance(target, ast.Attribute):
            return
        root = roots.root_of(target)
        if root is None:
            return
        harvest.effects.append(
            Effect(
                root=root,
                target=_expr_text(target),
                op=op,
                site=self._site(fn, target),
            )
        )

    def _scan_call(
        self,
        fn: FunctionInfo,
        module: ModuleInfo,
        scanner: FunctionScanner,
        roots: _FrameRoots,
        harvest: _Harvest,
        node: ast.Call,
    ) -> None:
        func = node.func
        site = self._site(fn, node)

        # Mutating-method calls on pre-existing receivers.
        if isinstance(func, ast.Attribute) and func.attr in _MUTATING_METHODS:
            root = roots.root_of(func.value)
            if root is not None and self._external_import_root(module, root):
                # ``np.append(...)`` / ``json.dumps`` style: the receiver
                # is an imported external module or name, whose same-named
                # functions return fresh values rather than mutating.
                root = None
            if root is not None:
                harvest.effects.append(
                    Effect(
                        root=root,
                        target=f"{_expr_text(func.value)}.{func.attr}(...)",
                        op="mutating-call",
                        site=site,
                    )
                )

        # Resolved call record, with argument alias roots for binding.
        targets = tuple(sorted(scanner._resolve_call_targets(node)))
        if targets:
            receiver_root = (
                roots.root_of(func.value)
                if isinstance(func, ast.Attribute)
                else None
            )
            harvest.calls.append(
                _CallRecord(
                    targets=targets,
                    site=site,
                    receiver_root=receiver_root,
                    arg_roots=tuple(
                        roots.root_of(arg) for arg in node.args
                    ),
                    kw_roots=tuple(
                        (kw.arg, roots.root_of(kw.value))
                        for kw in node.keywords
                        if kw.arg is not None
                    ),
                )
            )

        # Fresh RNG / wall-clock draws (RPL902 raw material).
        if isinstance(func, (ast.Name, ast.Attribute)):
            dotted = module.resolve(func)
            if dotted is not None:
                simple = dotted.split(".")[-1]
                if simple == "default_rng" and not node.args:
                    harvest.phase_risks.append(
                        ("fresh-rng", f"{dotted}()", site)
                    )
                elif simple in _BIT_GENERATORS and not node.args:
                    harvest.phase_risks.append(
                        ("fresh-rng", f"{dotted}()", site)
                    )
                elif (
                    dotted.startswith("random.")
                    and simple in _GLOBAL_RANDOM_FNS
                ):
                    harvest.phase_risks.append(("fresh-rng", dotted, site))
                elif dotted in _CLOCK_CALLS:
                    harvest.phase_risks.append(("clock", dotted, site))

    # ------------------------------------------------------------------
    # RPL904: set-iteration order hazards
    # ------------------------------------------------------------------
    def _setty_names(self, fn: FunctionInfo, roots: _FrameRoots) -> Set[str]:
        module = self.project.modules[fn.module]
        setty: Set[str] = set()
        args = fn.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            cls = _annotation_class(arg.annotation)
            if cls in ("Set", "FrozenSet", "set", "frozenset", "AbstractSet"):
                setty.add(arg.arg)
        for _ in range(2):  # one extra round settles x = y chains
            for name, values in roots.assigns.items():
                if all(
                    self._is_setty(module, value, setty) for value in values
                ):
                    setty.add(name)
        return setty

    def _is_setty(
        self, module: ModuleInfo, expr: ast.AST, setty: Set[str]
    ) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in setty
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, (ast.Name, ast.Attribute)):
                dotted = module.resolve(func)
                simple = dotted.split(".")[-1] if dotted else None
                if simple in ("set", "frozenset"):
                    return True
            if isinstance(func, ast.Attribute) and func.attr in (
                "copy", "difference", "intersection", "symmetric_difference",
                "union",
            ):
                return self._is_setty(module, func.value, setty)
            return False
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_setty(module, expr.left, setty) or self._is_setty(
                module, expr.right, setty
            )
        return False

    def _scan_order_hazards(
        self,
        fn: FunctionInfo,
        module: ModuleInfo,
        roots: _FrameRoots,
        harvest: _Harvest,
    ) -> None:
        setty = self._setty_names(fn, roots)
        if not setty and not any(
            isinstance(n, (ast.Set, ast.SetComp, ast.Call))
            for n in ast.walk(fn.node)
        ):
            return
        parent: Dict[int, ast.AST] = {}
        for node in ast.walk(fn.node):
            for child in ast.iter_child_nodes(node):
                parent[id(child)] = node
        for node in ast.walk(fn.node):
            if not self._is_setty(module, node, setty):
                continue
            consumer = self._order_consumer(node, parent)
            if consumer is None:
                continue
            harvest.order_risks.append(
                (self._site(fn, node), _expr_text(node), consumer)
            )

    def _order_consumer(
        self, expr: ast.AST, parent: Dict[int, ast.AST]
    ) -> Optional[str]:
        """How ``expr``'s iteration order becomes observable, if it does."""
        owner = parent.get(id(expr))
        if owner is None:
            return None
        if isinstance(owner, ast.For) and owner.iter is expr:
            return "for-loop"
        if isinstance(owner, ast.comprehension) and owner.iter is expr:
            comp = parent.get(id(owner))
            if isinstance(comp, ast.ListComp):
                return "list-comprehension"
            if isinstance(comp, ast.DictComp):
                return "dict-comprehension"
            if isinstance(comp, ast.GeneratorExp):
                call = parent.get(id(comp))
                if isinstance(call, ast.Call):
                    name = self._call_simple_name(call)
                    if name in _ORDER_SENSITIVE or name == "join":
                        return f"{name}(generator)"
                return None
            return None  # SetComp: order-blind by construction
        if isinstance(owner, ast.Call) and expr in owner.args:
            name = self._call_simple_name(owner)
            if name in _ORDER_SENSITIVE:
                return f"{name}()"
            if name == "join":
                return "join()"
            return None  # order-blind or unknown callee: silence
        if isinstance(owner, ast.Starred):
            container = parent.get(id(owner))
            if isinstance(container, (ast.List, ast.Tuple)):
                return "unpacking"
        return None

    def _external_import_root(self, module: ModuleInfo, root: str) -> bool:
        """True when a ``global:x`` root is an import from outside the
        analysed project (numpy, json, ...) rather than project state."""
        if not root.startswith("global:"):
            return False
        name = root[len("global:"):]
        target = module.imports.get(name)
        if target is None:
            return False
        return not any(
            target == m or target.startswith(m + ".")
            for m in self.project.modules
        )

    @staticmethod
    def _call_simple_name(call: ast.Call) -> Optional[str]:
        if isinstance(call.func, ast.Name):
            return call.func.id
        if isinstance(call.func, ast.Attribute):
            return call.func.attr
        return None

    # ------------------------------------------------------------------
    # RPL903: snapshot alias escapes
    # ------------------------------------------------------------------
    def _is_snapshot_accessor(self, fn: FunctionInfo) -> bool:
        if fn.class_name is None:
            return False
        if fn.simple_name in self._snapshot_bare:
            return True
        return fn.qualname in self._snapshot_qualified

    def _scan_snapshot_returns(
        self, fn: FunctionInfo, scanner: FunctionScanner, roots: _FrameRoots
    ) -> None:
        if not self._is_snapshot_accessor(fn):
            return
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            for expr in self._returned_parts(node.value):
                hit = self._live_container(fn, scanner, roots, expr)
                if hit is None:
                    continue
                container, ctype = hit
                self.snapshots.append(
                    SnapshotHit(
                        site=self._site(fn, expr),
                        method=fn.qualname,
                        container=container,
                        ctype=ctype,
                    )
                )

    @staticmethod
    def _returned_parts(value: ast.AST) -> List[ast.AST]:
        """The return value plus one level of literal-container parts."""
        parts = [value]
        if isinstance(value, (ast.Tuple, ast.List)):
            parts.extend(
                e for e in value.elts if not isinstance(e, ast.Starred)
            )
        elif isinstance(value, ast.Dict):
            # A keyed value ({"jobs": self._jobs}) aliases the container;
            # a **spread (key None) copies its entries into a fresh dict.
            parts.extend(
                v
                for k, v in zip(value.keys, value.values)
                if k is not None
            )
        return parts

    def _live_container(
        self,
        fn: FunctionInfo,
        scanner: FunctionScanner,
        roots: _FrameRoots,
        expr: ast.AST,
    ) -> Optional[Tuple[str, str]]:
        if isinstance(expr, ast.Name):
            # One level of local aliasing: x = self._jobs; return x
            for value in roots.assigns.get(expr.id, ()):
                found = self._attr_chain_container(scanner, value)
                if found is not None and roots.root_of(value) is not None:
                    return found
            return None
        return self._attr_chain_container(scanner, expr)

    def _attr_chain_container(
        self, scanner: FunctionScanner, expr: ast.AST
    ) -> Optional[Tuple[str, str]]:
        if not isinstance(expr, ast.Attribute):
            return None
        if isinstance(_base_expr(expr), ast.Call):
            return None  # a chain through a call result is not live state
        owner = scanner._value_type(expr.value)
        ctype = self._attr_container_type(owner, expr.attr)
        if ctype is None:
            return None
        return f"{owner}.{expr.attr}", ctype

    # ------------------------------------------------------------------
    # RPL901: effect closures with call-site argument binding
    # ------------------------------------------------------------------
    def _effect_closure(self, key: str) -> Tuple[Effect, ...]:
        cached = self._closure_cache.get(key)
        if cached is not None:
            return cached
        self._closure_cache[key] = ()  # cycle guard
        harvest = self._harvests.get(key)
        out: List[Effect] = list(harvest.effects) if harvest else []
        if harvest is not None:
            for call in harvest.calls:
                for target in call.targets:
                    if self._allowed(target):
                        continue
                    callee = self.project.functions.get(target)
                    if callee is None:
                        continue
                    for effect in self._effect_closure(target):
                        mapped = self._map_root(effect.root, call, callee)
                        if mapped is None:
                            continue
                        chain = (callee.qualname,) + effect.chain
                        if len(chain) > _VIA_LIMIT:
                            chain = chain[:_VIA_LIMIT]
                        out.append(
                            Effect(
                                root=mapped,
                                target=effect.target,
                                op=effect.op,
                                site=effect.site,
                                chain=chain,
                            )
                        )
        deduped = tuple(
            sorted(
                set(out),
                key=lambda e: (e.site.module, e.site.line, e.root, e.target),
            )
        )
        self._closure_cache[key] = deduped
        return deduped

    def _map_root(
        self, root: str, call: _CallRecord, callee: FunctionInfo
    ) -> Optional[str]:
        """A callee-frame effect root, translated into the caller frame."""
        if root.startswith("global:"):
            return root
        params = _param_names(callee)
        bound = bool(params) and params[0] in ("self", "cls")
        if root == "self":
            if callee.simple_name in _CTOR_NAMES:
                return None  # the constructed object is fresh by definition
            return call.receiver_root
        if root.startswith("param:"):
            name = root[len("param:"):]
            for kw_name, kw_root in call.kw_roots:
                if kw_name == name:
                    return kw_root
            positional = params[1:] if bound else params
            try:
                index = positional.index(name)
            except ValueError:
                return None
            if index < len(call.arg_roots):
                return call.arg_roots[index]
            return None  # defaulted parameter: no caller state involved
        return None

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def _suppressed(self, rule_id: str, site: Site) -> bool:
        module = self.project.modules.get(site.module)
        return module is not None and module.suppressed(rule_id, site.line)

    def run(self) -> "PureAnalysis":
        self._resolve_tables()
        self._harvest_ctor_container_types()
        for fn in self.project.iter_functions():
            self._scan_function(fn)

        # RPL901: declared-pure closures.
        for root_key in sorted(self.pure_roots):
            for effect in self._effect_closure(root_key):
                if self._suppressed("RPL901", effect.site):
                    continue
                self.mutations.append(
                    MutationHit(root_key=root_key, effect=effect)
                )

        # RPL902: probe reachability vs commit mutators / RNG / clocks.
        self.reachable = self.graph.reachable_from(set(self.probe_entries))
        for fn_key in sorted(self.reachable):
            harvest = self._harvests.get(fn_key)
            if harvest is None:
                continue
            path = self.reachable[fn_key]
            entry = path[0]
            for call in harvest.calls:
                for target in call.targets:
                    if target not in self.mutator_keys:
                        continue
                    if self._suppressed("RPL902", call.site):
                        continue
                    mutator = self.project.functions[target]
                    self.phase.append(
                        PhaseHit(
                            site=call.site,
                            entry=entry,
                            kind="commit-mutator",
                            what=mutator.qualname,
                            path=path,
                        )
                    )
            for kind, what, site in harvest.phase_risks:
                if self._suppressed("RPL902", site):
                    continue
                self.phase.append(
                    PhaseHit(
                        site=site, entry=entry, kind=kind, what=what,
                        path=path,
                    )
                )

        # RPL903 hits were collected during the scan; filter suppressions.
        self.snapshots = [
            hit
            for hit in self.snapshots
            if not self._suppressed("RPL903", hit.site)
        ]

        # RPL904: order hazards inside the probe/purity closure.
        scope = self.graph.reachable_from(
            set(self.probe_entries) | set(self.pure_roots)
        )
        for fn_key in sorted(scope):
            harvest = self._harvests.get(fn_key)
            if harvest is None:
                continue
            for site, iterable, consumer in harvest.order_risks:
                if self._suppressed("RPL904", site):
                    continue
                self.order.append(
                    OrderHit(
                        site=site,
                        iterable=iterable,
                        consumer=consumer,
                        entry=scope[fn_key][0],
                    )
                )

        self.registry = [
            hit
            for hit in self.registry
            if not self._suppressed("RPL905", hit.site)
        ]

        self.mutations.sort(
            key=lambda m: (
                m.root_key, m.effect.site.module, m.effect.site.line,
                m.effect.target,
            )
        )
        self.phase.sort(
            key=lambda p: (p.site.module, p.site.line, p.kind, p.what)
        )
        self.snapshots.sort(
            key=lambda s: (s.site.module, s.site.line, s.container)
        )
        self.order.sort(
            key=lambda o: (o.site.module, o.site.line, o.iterable)
        )
        self.registry.sort(key=lambda r: (r.table, r.entry))
        return self

    @property
    def violation_count(self) -> int:
        return (
            len(self.mutations)
            + len(self.phase)
            + len(self.snapshots)
            + len(self.order)
            + len(self.registry)
        )


# ----------------------------------------------------------------------
# Shared entry point for the rule module and the repro-pure CLI
# ----------------------------------------------------------------------
_PURE_CACHE: Dict[Tuple[int, int], PureAnalysis] = {}
_CACHE_LIMIT = 8


def pure_analysis(project: Project, config: LintConfig) -> PureAnalysis:
    """Run (or reuse) the PURE analysis for one project + config."""
    key = (id(project), hash(config))
    cached = _PURE_CACHE.get(key)
    if cached is not None and cached.project is project:
        return cached
    if len(_PURE_CACHE) >= _CACHE_LIMIT:
        _PURE_CACHE.clear()
    analysis = PureAnalysis(project, shared_callgraph(project), config).run()
    _PURE_CACHE[key] = analysis
    return analysis
