"""Linter configuration: built-in defaults plus ``[tool.repro-lint]``.

The defaults encode this repository's own invariants (hot-path modules,
the thread-pool entry point's shared types, which constructors must
carry partition contracts).  A ``[tool.repro-lint]`` table in the
nearest ``pyproject.toml`` overrides any field, so the fixture corpus
and downstream users can retarget the rules without code changes.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Optional, Tuple

try:  # Python 3.11+
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - 3.9/3.10 fallback
    tomllib = None  # type: ignore[assignment]


@dataclass(frozen=True)
class LintConfig:
    """Everything the rules need to know about the project's shape.

    Attributes:
        select: Rule IDs to run (empty = all registered rules).
        ignore: Rule IDs to skip.
        hot_path: Module-path substrings (posix) marking the BO hot
            path; the numerics family only fires inside them.
        shared_types: Class names whose instances are shared across the
            thread-pool fan-out; functions reachable from a pool entry
            point must not mutate parameters of these types.
        entrypoints: Extra thread-pool entry points as
            ``module.function`` dotted names (``Executor.submit`` targets
            are also discovered automatically).
        placement_bases: Base-class names marking cluster placement
            policies; their ``place`` must carry ``@placement_contract``.
        policy_bases: Base-class names marking node partition policies;
            their ``partition`` must carry ``@policy_contract``.
        optimizer_classes: Class names whose ``propose``/``propose_exploit``
            must carry ``@proposal_contract``.
        partition_constructors: ``Class.method`` (or bare function) names
            that construct partitions and must carry
            ``@partition_contract``.
        frozen_key_classes: Dataclass names that are used as dict/cache
            keys and therefore must be declared ``frozen=True``.
        guarded_classes: Class names whose instances are shared across
            threads *by design* and protect themselves with an internal
            lock; RPL603 requires every attribute write in their methods
            to hold a lock on all paths.  Distinct from ``shared_types``
            (read-only under the pool, RPL201's domain).
        clock_classes: Extra class names (beyond ``Clock`` subclasses
            discovered structurally) whose instances are sanctioned time
            sources for RPL602.
        units: The quantity-alias registry for the UNITS family
            (RPL7xx), as ``"Qualname.param=Domain"`` /
            ``"Qualname.return=Domain"`` entries (the
            ``[tool.repro-lint.units]`` TOML table is flattened into
            this form).  Registered signatures seed the abstract
            interpreter and must be alias-annotated (RPL705).
        units_modules: Path substrings marking the partition-math
            modules in which RPL705 enforces alias annotations on
            registered signatures.
        units_capacities: Column capacities for the RPL703 Eq. 6 sum
            check at partition literals, as ordered ``"name=value"``
            entries (e.g. ``"cores=10"``).  Empty (the default)
            disables the sum check — tests legitimately build literal
            matrices for servers of many shapes — leaving the
            server-independent Eq. 5 floor check active.
        flow_blocking_calls: The RPL802 blocking-call registry:
            ``"mod.fn"`` dotted names, ``".method"`` receiver-blind
            method names (``.result``), or ``"Class.method"`` entries
            resolved through the type oracle (physics observation).
        flow_entrypoints: Extra loop/thread entry points for the FLOW
            analyses as ``module.function`` or ``module.Class.method``
            dotted names (``Executor.submit`` and ``Thread(target=...)``
            targets are discovered automatically).
        flow_longlived: Class names whose instances live as long as the
            service; RPL805 tracks growth of their container attributes.
        flow_bounded_containers: ``Owner.attr`` / ``module.NAME``
            container tokens exempt from RPL805 (bounded by
            construction, with the reason documented at the allowlist).
        flow_shared_ok: Class names allowed to cross into worker
            threads without registration (RPL803) — thread-safe by
            composition.
        flow_strict_modules: Path substrings inside which RPL804
            enforces exception-safe release; tests may leak on assert
            failure by design, service code may not.
        flow_resources: Lifecycle registry as ``"Creator=rel1,rel2"``
            entries mapping resource constructors to their release
            methods.
        pure_registry: Dotted names of functions declared pure for
            RPL901 (``module.fn`` / ``module.Class.method``); their
            whole callgraph closure must be free of mutations of
            pre-existing state.  ``@declared_pure``-decorated functions
            join this set automatically.
        pure_probe_entrypoints: Dotted names of probe entry points for
            RPL902 — the speculative, side-effect-free phase of the
            probe-then-commit split.  Nothing reachable from them may
            call a commit mutator or draw fresh RNG/clock state.
        pure_commit_mutators: Dotted names of the commit-tagged
            mutators RPL902 bans from probe paths (cluster placement,
            the service commit/migrate surface, observation-store
            writes).
        pure_snapshot_methods: Method names (bare or ``Class.method``)
            treated as snapshot accessors by RPL903; they must return
            defensive copies, never live internal containers.
        pure_allow_calls: Callees (bare name, ``Class.method``, or full
            dotted path) whose effects are sanctioned-benign on pure
            paths — the lock-guarded telemetry surface, whose lazy
            metric registration is idempotent and replay-invariant.
        cost_budgets: Declared complexity budgets for RPL1001 as
            ``"module.Class.method=expr"`` entries; ``expr`` is a
            ``*``-product of ``const``/``small``/``n_nodes``/
            ``n_jobs``/``n_shards`` factors and caps the N-degree of
            the function's closed symbolic cost.
        cost_hot_entrypoints: Dotted names of the per-event hot entry
            points (engine round loop, warehouse event handlers,
            gateway publish); everything reachable from them is RPL1003
            scope, and each must carry a ``cost_budgets`` entry
            (RPL1005).  The ``hot_path`` module set extends this scope.
        cost_collections: ``Owner.attr=n_var`` size facts seeding the
            bound inference: iterating/materializing these collections
            charges the named N variable (``Cluster.nodes=n_nodes``).
        cost_bounded: ``Owner.attr=reason`` allowlist of containers
            that are small by construction (documented reason), so
            scanning them never charges an N variable.
        cost_small_names: Local/parameter names always classed small
            (``verified``, ``displaced``, ``changed``, ``dirty``) —
            the incremental-work vocabulary.
    """

    select: Tuple[str, ...] = ()
    ignore: Tuple[str, ...] = ()
    hot_path: Tuple[str, ...] = ("repro/core/",)
    shared_types: Tuple[str, ...] = ("ClusterNode", "Cluster")
    entrypoints: Tuple[str, ...] = ()
    placement_bases: Tuple[str, ...] = ("PlacementPolicy",)
    policy_bases: Tuple[str, ...] = ("Policy",)
    optimizer_classes: Tuple[str, ...] = ("AcquisitionOptimizer",)
    partition_constructors: Tuple[str, ...] = (
        "ConfigurationSpace.equal_partition",
        "ConfigurationSpace.max_allocation",
        "ConfigurationSpace.random",
        "ConfigurationSpace.from_unit_cube",
        "ConfigurationSpace.random_batch",
        "ConfigurationSpace.from_unit_cube_batch",
    )
    frozen_key_classes: Tuple[str, ...] = (
        "Configuration",
        "DropoutDecision",
        "Resource",
        "ServerSpec",
    )
    guarded_classes: Tuple[str, ...] = (
        "MetricRegistry",
        "Counter",
        "Gauge",
        "Histogram",
        "Tracer",
    )
    clock_classes: Tuple[str, ...] = ()
    units: Tuple[str, ...] = (
        "ConfigurationSpace.from_unit_cube.x=UnitCube",
        "ConfigurationSpace.from_unit_cube_batch.x=UnitCube",
        "ConfigurationSpace.to_unit_cube.return=UnitCube",
        "ConfigurationSpace.to_unit_cube_batch.return=UnitCube",
        "LCWorkload.calibrated.max_qps=Rate",
        "LCWorkload.calibrated.qos_latency_ms=Millis",
        "LoadSchedule.load_at.return=Fraction",
        "LoadSchedule.load_at.t=Seconds",
        "Node.__init__.window_s=Seconds",
        "PerformanceCounters.read.window_s=Seconds",
        "ScoreFunction.__call__.return=Fraction",
        "SimulationResult.quantile.return=Seconds",
        "capacity_qps.return=Rate",
        "effective_service_rate.return=Rate",
        "mm1_mean_sojourn.return=Seconds",
        "mm1_sojourn_quantile.return=Seconds",
        "mmc_mean_sojourn.return=Seconds",
        "mmc_sojourn_quantile.return=Seconds",
        "p95_latency_ms.qps=Rate",
        "p95_latency_ms.return=Millis",
        "qos_met.score=Fraction",
        "to_millis.return=Millis",
        "to_millis.value_s=Seconds",
        "to_seconds.return=Seconds",
        "to_seconds.value_ms=Millis",
    )
    units_modules: Tuple[str, ...] = ("repro/",)
    units_capacities: Tuple[str, ...] = ()
    flow_blocking_calls: Tuple[str, ...] = (
        ".result",
        ".serve_forever",
        "Node.observe",
        "Node.prime",
        "Node.true_performance",
        "open",
        "os.fsync",
        "socket.create_connection",
        "subprocess.Popen",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.run",
        "time.sleep",
    )
    flow_entrypoints: Tuple[str, ...] = (
        "repro.telemetry.serve._MetricsHandler.do_GET",
    )
    flow_longlived: Tuple[str, ...] = (
        "MetricRegistry",
        "Node",
        "ObservationService",
        "ObservationStore",
        "Tracer",
    )
    flow_bounded_containers: Tuple[str, ...] = (
        # Metric cardinality is code-determined: the set of metric
        # names/labels is a static property of the instrumented source,
        # the standard Prometheus registry model.
        "MetricRegistry._metrics",
    )
    flow_shared_ok: Tuple[str, ...] = (
        # Thread-safe by composition: an immutable facade over the
        # lock-guarded MetricRegistry/Tracer and a read-only clock.
        "Telemetry",
    )
    flow_strict_modules: Tuple[str, ...] = ("repro/",)
    flow_resources: Tuple[str, ...] = (
        "MetricsServer=server_close,shutdown",
        "ObservationStore=close",
        "ThreadPoolExecutor=shutdown",
        "make_server=server_close,shutdown",
        "open=close",
        "socket.socket=close",
    )
    pure_registry: Tuple[str, ...] = (
        "repro.core.acquisition.ExpectedImprovement.__call__",
        "repro.core.acquisition.ProbabilityOfImprovement.__call__",
        "repro.core.acquisition.UpperConfidenceBound.__call__",
        "repro.server.obstore.node_fingerprint",
        "repro.warehouse.admission.CLITEProbe.check",
        "repro.warehouse.admission.QuickProbe.check",
        "repro.warehouse.service.WarehouseService.probe_admit",
    )
    pure_probe_entrypoints: Tuple[str, ...] = (
        "repro.core.acquisition.ExpectedImprovement.__call__",
        "repro.core.acquisition.ProbabilityOfImprovement.__call__",
        "repro.core.acquisition.UpperConfidenceBound.__call__",
        "repro.server.obstore.node_fingerprint",
        "repro.warehouse.admission.CLITEProbe.check",
        "repro.warehouse.admission.QuickProbe.check",
        "repro.warehouse.service.WarehouseService.probe_admit",
    )
    pure_commit_mutators: Tuple[str, ...] = (
        "repro.cluster.state.Cluster.place",
        "repro.cluster.state.Cluster.remove",
        "repro.cluster.state.Cluster.remove_from",
        "repro.server.obstore.ObservationStore.put",
        "repro.warehouse.service.WarehouseService._migrate",
        "repro.warehouse.service.WarehouseService._rebalance_node",
        "repro.warehouse.service.WarehouseService.commit_admit",
        "repro.warehouse.service.WarehouseService.reject",
    )
    pure_snapshot_methods: Tuple[str, ...] = (
        "migrations",
        "placements",
        "routed",
        "snapshot",
        "stats",
        "status",
        "timeline",
    )
    pure_allow_calls: Tuple[str, ...] = (
        # The lock-guarded telemetry surface: lazy metric registration
        # mutates MetricRegistry._metrics, but registration is
        # idempotent and metric values never feed back into decisions,
        # so probe paths observing telemetry stay replay-invariant.
        "Counter.add",
        "Gauge.set",
        "Histogram.observe",
        "MetricRegistry.counter",
        "MetricRegistry.gauge",
        "MetricRegistry.histogram",
        "Tracer.span",
    )
    cost_budgets: Tuple[str, ...] = (
        "repro.core.engine.CLITEEngine.optimize=small",
        "repro.warehouse.api.ServiceGateway.publish=small",
        "repro.warehouse.federation.WarehouseFederation._handle=n_shards",
        "repro.warehouse.federation.WarehouseFederation._route_arrival"
        "=n_shards",
        "repro.warehouse.federation.WarehouseFederation._route_departure"
        "=n_shards",
        "repro.warehouse.federation.WarehouseFederation.status"
        "=n_shards*n_jobs",
        "repro.warehouse.service.WarehouseService._find_target=small",
        "repro.warehouse.service.WarehouseService._migrate=small",
        "repro.warehouse.service.WarehouseService._on_arrival=small",
        "repro.warehouse.service.WarehouseService._on_departure=small",
        "repro.warehouse.service.WarehouseService._on_recheck=small",
        "repro.warehouse.service.WarehouseService._rebalance_node=small",
        "repro.warehouse.service.WarehouseService.commit_admit=small",
        "repro.warehouse.service.WarehouseService.handle_event=small",
        "repro.warehouse.service.WarehouseService.probe_admit=small",
        "repro.warehouse.service.WarehouseService.status=n_jobs",
    )
    cost_hot_entrypoints: Tuple[str, ...] = (
        "repro.core.engine.CLITEEngine.optimize",
        "repro.warehouse.api.ServiceGateway.publish",
        "repro.warehouse.federation.WarehouseFederation._handle",
        "repro.warehouse.service.WarehouseService.handle_event",
        "repro.warehouse.service.WarehouseService.probe_admit",
    )
    cost_collections: Tuple[str, ...] = (
        "Cluster.nodes=n_nodes",
        "Cluster.placements=n_jobs",
        "Cluster.used_nodes=n_nodes",
        "WarehouseFederation.shards=n_shards",
        "WarehouseService._jobs=n_jobs",
        "WarehouseService._last_verified=n_nodes",
    )
    cost_bounded: Tuple[str, ...] = (
        # Per-node job lists are capped by max_jobs_per_node.
        "ClusterNode.job_names=per-node, capped by max_jobs_per_node",
        "ClusterNode.requests=per-node, capped by max_jobs_per_node",
        # The probe walk exits after max_probe_nodes passing candidates.
        "WarehouseService._by_density=probe loop exits after "
        "max_probe_nodes candidates",
        # Drained every recheck tick; holds only nodes touched since.
        "WarehouseService._recheck_dirty=drained every tick, holds only "
        "nodes touched since the last recheck",
        # Load-shifted subset of the incremental-recheck contract.
        "WarehouseService._volatile_nodes=load-shifted subset of the "
        "incremental recheck contract",
    )
    cost_small_names: Tuple[str, ...] = (
        "changed",
        "dirty",
        "displaced",
        "verified",
    )

    def rule_enabled(self, rule_id: str) -> bool:
        if rule_id in self.ignore:
            return False
        if self.select and rule_id not in self.select:
            return False
        return True


def find_pyproject(start: Path) -> Optional[Path]:
    """Walk up from ``start`` to the nearest ``pyproject.toml``."""
    current = start if start.is_dir() else start.parent
    for candidate in [current, *current.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(start: Optional[Path] = None) -> LintConfig:
    """Defaults merged with the nearest ``[tool.repro-lint]`` table.

    Unknown keys in the table are rejected loudly — a typoed option that
    silently does nothing is exactly the class of bug this tool exists
    to prevent.
    """
    config = LintConfig()
    if start is None or tomllib is None:
        return config
    pyproject = find_pyproject(Path(start).resolve())
    if pyproject is None:
        return config
    with open(pyproject, "rb") as handle:
        data = tomllib.load(handle)
    table = data.get("tool", {}).get("repro-lint", {})
    if not table:
        return config
    known = {f.name for f in fields(LintConfig)}
    overrides = {}
    for key, value in table.items():
        name = key.replace("-", "_")
        if name == "flow" and isinstance(value, dict):
            # [tool.repro-lint.flow]: sub-keys map onto flow_* fields
            # and hold lists (unlike the scalar-valued units table).
            for sub_key, sub_value in value.items():
                sub_name = f"flow_{sub_key.replace('-', '_')}"
                if sub_name not in known or not isinstance(sub_value, list):
                    raise ValueError(
                        f"unknown [tool.repro-lint.flow] option {sub_key!r} "
                        f"in {pyproject}"
                    )
                overrides[sub_name] = tuple(str(v) for v in sub_value)
            continue
        if name == "pure" and isinstance(value, dict):
            # [tool.repro-lint.pure]: sub-keys map onto pure_* fields
            # and hold lists, mirroring the flow table.
            for sub_key, sub_value in value.items():
                sub_name = f"pure_{sub_key.replace('-', '_')}"
                if sub_name not in known or not isinstance(sub_value, list):
                    raise ValueError(
                        f"unknown [tool.repro-lint.pure] option {sub_key!r} "
                        f"in {pyproject}"
                    )
                overrides[sub_name] = tuple(str(v) for v in sub_value)
            continue
        if name == "cost" and isinstance(value, dict):
            # [tool.repro-lint.cost]: sub-keys map onto cost_* fields.
            # Registry-shaped sub-tables (budgets, collections, bounded)
            # read best as TOML tables and flatten to sorted "k=v"
            # entries like the units table; list-shaped ones
            # (hot-entrypoints, small-names) stay lists.
            for sub_key, sub_value in value.items():
                sub_name = f"cost_{sub_key.replace('-', '_')}"
                if sub_name in known and isinstance(sub_value, list):
                    overrides[sub_name] = tuple(str(v) for v in sub_value)
                elif sub_name in known and isinstance(sub_value, dict):
                    overrides[sub_name] = tuple(
                        sorted(f"{k}={v}" for k, v in sub_value.items())
                    )
                else:
                    raise ValueError(
                        f"unknown [tool.repro-lint.cost] option {sub_key!r} "
                        f"in {pyproject}"
                    )
            continue
        if name not in known:
            raise ValueError(
                f"unknown [tool.repro-lint] option {key!r} in {pyproject}"
            )
        if isinstance(value, list):
            overrides[name] = tuple(str(v) for v in value)
        elif isinstance(value, dict):
            # Nested table ([tool.repro-lint.units]): flatten to sorted
            # "key=value" entries so LintConfig stays hashable.
            overrides[name] = tuple(
                sorted(f"{k}={v}" for k, v in value.items())
            )
        else:
            overrides[name] = value
    return replace(config, **overrides)
