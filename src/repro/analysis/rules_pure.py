"""PURE family (RPL9xx): purity and probe/commit phase separation.

These rules consume the shared :class:`~.pure.PureAnalysis` harvest:
one pass over the project yields the effect closures of every
declared-pure root, the probe-reachable call set, the snapshot alias
escapes, the set-iteration order hazards, and the registry health
report; each rule then renders its slice as findings.  The same
analysis backs the ``repro-pure`` CLI, so every finding here can be
inspected in context (paths, closures, reachability) with
``repro-pure src/repro``.
"""

from __future__ import annotations

from typing import Iterator

from .config import LintConfig
from .flow import Site
from .model import PURE, Finding, Rule, register
from .project import Project
from .pure import PureAnalysis, pure_analysis


def _finding_at(
    rule: Rule, project: Project, site: Site, message: str
) -> Finding:
    module = project.modules.get(site.module)
    path = str(module.display_path) if module is not None else site.module
    return Finding(
        rule_id=rule.rule_id,
        path=path,
        line=site.line,
        col=site.col,
        message=message,
        hint=rule.autofix_hint,
    )


def _fn_name(project: Project, key: str) -> str:
    fn = project.functions.get(key)
    return fn.qualname if fn is not None else key.split(":")[-1]


@register
class DeclaredPureMutation(Rule):
    """RPL901: declared-pure functions must not mutate existing state."""

    rule_id = "RPL901"
    name = "declared-pure-mutation"
    family = PURE
    description = (
        "Functions registered in [tool.repro-lint.pure] registry (or "
        "marked @declared_pure) must not mutate pre-existing reachable "
        "state — self, parameters, globals, or anything aliased to "
        "them: attribute/subscript writes, augmented assigns, del, and "
        "mutating-method calls (append/add/update/...), closed over "
        "the callgraph with call-site argument binding so a mutation "
        "two calls deep is charged to the root that passed the state "
        "in.  Mutation of freshly-created local objects is fine."
    )
    autofix_hint = (
        "Build results in fresh local containers and return them, or "
        "remove the function from the purity registry if mutation is "
        "its job; suppress a single site with a reason only when the "
        "mutation is provably replay-invariant."
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        analysis = pure_analysis(project, config)
        for hit in analysis.mutations:
            effect = hit.effect
            via = (
                " via " + " -> ".join(effect.chain) if effect.chain else ""
            )
            yield _finding_at(
                self,
                project,
                effect.site,
                (
                    f"declared-pure {_fn_name(project, hit.root_key)!r} "
                    f"mutates pre-existing state rooted at {effect.root}: "
                    f"{effect.op} on {effect.target}{via}"
                ),
            )


@register
class ProbeCommitSeparation(Rule):
    """RPL902: probe paths must not commit, draw RNG, or read clocks."""

    rule_id = "RPL902"
    name = "probe-commit-separation"
    family = PURE
    description = (
        "Nothing reachable from a registered probe entry point "
        "(probe_admit, the admission probes' check methods, "
        "node_fingerprint, acquisition scoring) may invoke a "
        "commit-tagged mutator (Cluster.place/remove, the service's "
        "commit/migrate surface, ObservationStore.put) or draw fresh "
        "RNG / wall-clock state — the serial≡concurrent federation "
        "guarantee holds only while probing is replayable."
    )
    autofix_hint = (
        "Move the commit to the caller that owns the decision, thread "
        "a seeded Generator / injected clock through instead of "
        "drawing fresh state, or suppress the sanctioned publish site "
        "with a reasoned disable-next-line comment."
    )

    _KINDS = {
        "commit-mutator": "invokes commit-tagged mutator {what!r}",
        "fresh-rng": "draws fresh RNG state ({what})",
        "clock": "reads the wall clock ({what})",
    }

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        analysis = pure_analysis(project, config)
        for hit in analysis.phase:
            entry = _fn_name(project, hit.entry)
            what = self._KINDS[hit.kind].format(what=hit.what)
            yield _finding_at(
                self,
                project,
                hit.site,
                f"probe path from {entry!r} {what}",
            )


@register
class SnapshotAliasEscape(Rule):
    """RPL903: snapshot accessors must return defensive copies."""

    rule_id = "RPL903"
    name = "snapshot-alias-escape"
    family = PURE
    description = (
        "Snapshot-style accessors (status/placements/timeline/... — "
        "the pure-snapshot-methods list) must not return references to "
        "live internal mutable containers: a caller mutating the "
        "'snapshot' would perturb the service state a later replay "
        "depends on.  Wrapping in dict()/list()/tuple()/sorted() or a "
        "comprehension is recognised as a defensive copy."
    )
    autofix_hint = (
        "Return a copy (dict(self._x), tuple(...), a comprehension) "
        "instead of the live container, or rename the accessor if it "
        "is deliberately a mutable view."
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        analysis = pure_analysis(project, config)
        for hit in analysis.snapshots:
            yield _finding_at(
                self,
                project,
                hit.site,
                (
                    f"snapshot accessor {hit.method!r} returns live "
                    f"mutable {hit.ctype} {hit.container!r} without a "
                    f"defensive copy"
                ),
            )


@register
class SetIterationOrder(Rule):
    """RPL904: no set iteration may feed an ordered decision."""

    rule_id = "RPL904"
    name = "set-iteration-order"
    family = PURE
    description = (
        "Inside the probe/purity closure, iterating a set/frozenset "
        "into an order-sensitive consumer (a for loop, list()/tuple(), "
        "a list/dict comprehension, join, unpacking) without an "
        "intervening sorted() makes the decision depend on hash "
        "ordering — PYTHONHASHSEED-level nondeterminism in the exact "
        "paths replay determinism rests on.  Order-blind consumers "
        "(sorted, min/max, sum, any/all, len, membership) are exempt."
    )
    autofix_hint = (
        "Wrap the set in sorted(...) (with an explicit key when the "
        "elements are not naturally ordered) before iterating, or "
        "consume it with an order-blind aggregate."
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        analysis = pure_analysis(project, config)
        for hit in analysis.order:
            entry = _fn_name(project, hit.entry)
            yield _finding_at(
                self,
                project,
                hit.site,
                (
                    f"set {hit.iterable!r} feeds order-sensitive "
                    f"{hit.consumer} (reachable from {entry!r}); wrap in "
                    f"sorted(...)"
                ),
            )


@register
class PurityRegistryHealth(Rule):
    """RPL905: purity-registry entries must resolve to live functions."""

    rule_id = "RPL905"
    name = "purity-registry-health"
    family = PURE
    description = (
        "Entries in the [tool.repro-lint.pure] registry, "
        "probe-entrypoints, and commit-mutators tables must resolve to "
        "functions that still exist (renames and moves silently drop "
        "the protection otherwise), and no entry may appear as both a "
        "probe entry point and a commit mutator.  Only entries whose "
        "dotted module prefix is part of the analysed tree are checked, "
        "so partial-tree runs stay quiet."
    )
    autofix_hint = (
        "Update the dotted path in pyproject.toml to the function's "
        "new home, or delete the entry if the function is gone."
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        analysis = pure_analysis(project, config)
        for hit in analysis.registry:
            yield _finding_at(
                self,
                project,
                hit.site,
                (
                    f"stale purity-registry entry {hit.entry!r} "
                    f"({hit.table}): no such function in module "
                    f"{hit.module!r}"
                ),
            )
        contradictions = sorted(
            set(config.pure_probe_entrypoints)
            & set(config.pure_commit_mutators)
        )
        for entry in contradictions:
            module = analysis._owning_module(entry)
            if module is None:
                continue
            yield _finding_at(
                self,
                project,
                Site(module=module, line=1, col=0, fn_key=""),
                (
                    f"{entry!r} is registered as both a probe entry "
                    f"point and a commit mutator; a function cannot be "
                    f"on both sides of the phase split"
                ),
            )


#: Imported for re-export convenience (repro-pure shares the harvest).
__all__ = [
    "DeclaredPureMutation",
    "ProbeCommitSeparation",
    "SnapshotAliasEscape",
    "SetIterationOrder",
    "PurityRegistryHealth",
    "PureAnalysis",
]
