"""Determinism rules (RPL1xx).

Seed-determinism is the reproduction's load-bearing property: two runs
with the same engine seed must take bit-identical search trajectories.
Every source of entropy therefore has to be an explicitly threaded
``np.random.Generator`` (or a seeded field); ambient randomness and
wall-clock reads are banned inside the package.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .config import LintConfig
from .model import DETERMINISM, Finding, Rule, register
from .project import Project

#: numpy.random module-level functions backed by the hidden global
#: RandomState (the legacy API); Generator methods are not in scope
#: because they are attribute calls on an explicit generator object.
_LEGACY_NP_RANDOM = {
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "gamma", "geometric", "get_state", "gumbel",
    "hypergeometric", "laplace", "logistic", "lognormal", "logseries",
    "multinomial", "multivariate_normal", "negative_binomial",
    "noncentral_chisquare", "noncentral_f", "normal", "pareto",
    "permutation", "poisson", "power", "rand", "randint", "randn",
    "random", "random_integers", "random_sample", "ranf", "rayleigh",
    "sample", "seed", "set_state", "shuffle", "standard_cauchy",
    "standard_exponential", "standard_gamma", "standard_normal",
    "standard_t", "triangular", "uniform", "vonmises", "wald",
    "weibull", "zipf", "RandomState",
}

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


def _iter_calls(project: Project):
    for module in project.modules.values():
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield module, node


@register
class UnseededDefaultRng(Rule):
    rule_id = "RPL101"
    name = "unseeded-default-rng"
    family = DETERMINISM
    description = (
        "np.random.default_rng() called without a seed: the resulting "
        "generator draws fresh OS entropy, so two identical runs diverge."
    )
    autofix_hint = (
        "Thread a seeded np.random.Generator (or an explicit integer "
        "seed) through the caller — e.g. the engine's rng via "
        "repro.core.rng.resolve_rng — instead of falling back to fresh "
        "entropy."
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        for module, call in _iter_calls(project):
            dotted = module.resolve(call.func)
            if dotted is None or not dotted.endswith("default_rng"):
                continue
            if dotted not in ("numpy.random.default_rng", "default_rng"):
                continue
            if call.args or call.keywords:
                continue
            yield self.finding(
                project,
                module.name,
                call,
                "np.random.default_rng() without a seed makes this "
                "component non-reproducible",
            )


@register
class LegacyGlobalNumpyRandom(Rule):
    rule_id = "RPL102"
    name = "module-level-np-random"
    family = DETERMINISM
    description = (
        "Legacy numpy.random module-level call (np.random.rand, .seed, "
        "...): these share one hidden global RandomState, which is both "
        "non-reproducible across call orders and racy under threads."
    )
    autofix_hint = (
        "Call the equivalent method on an explicitly threaded "
        "np.random.Generator instead of the numpy.random module."
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        for module, call in _iter_calls(project):
            dotted = module.resolve(call.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if (
                len(parts) == 3
                and parts[0] == "numpy"
                and parts[1] == "random"
                and parts[2] in _LEGACY_NP_RANDOM
            ):
                yield self.finding(
                    project,
                    module.name,
                    call,
                    f"numpy.random.{parts[2]} uses the hidden global "
                    "RandomState",
                )


@register
class StdlibRandom(Rule):
    rule_id = "RPL103"
    name = "stdlib-random"
    family = DETERMINISM
    description = (
        "The stdlib random module is imported: it is seeded globally and "
        "its stream is not part of the engine's seed, so any use breaks "
        "seed-determinism."
    )
    autofix_hint = (
        "Use the engine's np.random.Generator; if stdlib semantics are "
        "required, construct a random.Random(seed) instance explicitly "
        "and suppress this finding where it is created."
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        for module in project.modules.values():
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Import):
                    names = [a.name for a in node.names]
                    if any(n == "random" or n.startswith("random.") for n in names):
                        yield self.finding(
                            project,
                            module.name,
                            node,
                            "import of the globally seeded stdlib random "
                            "module",
                        )
                elif isinstance(node, ast.ImportFrom):
                    if node.level == 0 and node.module == "random":
                        yield self.finding(
                            project,
                            module.name,
                            node,
                            "import from the globally seeded stdlib random "
                            "module",
                        )


@register
class WallClockRead(Rule):
    rule_id = "RPL104"
    name = "wall-clock-read"
    family = DETERMINISM
    description = (
        "Wall-clock read (time.time, datetime.now, ...) inside the "
        "package: simulated time must come from Node.clock_s so repeated "
        "runs observe identical timelines."
    )
    autofix_hint = (
        "Read time through an injected repro.telemetry.clock.Clock "
        "(SimulatedClock by default; WallClock is the one sanctioned "
        "boundary and carries the only suppression) or the simulated "
        "clock (Node.clock_s / Observation.time_s); ad-hoc wall-clock "
        "reads belong in benchmarks/, outside the package."
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        for module, call in _iter_calls(project):
            dotted = module.resolve(call.func)
            if dotted in _WALL_CLOCK:
                yield self.finding(
                    project,
                    module.name,
                    call,
                    f"wall-clock read via {dotted}",
                )
