"""repro-lint: AST-based invariant checking for the reproduction.

CLITE's evaluation stands on three mechanical invariants — seed-driven
determinism, thread-safety of the ``verify_nodes`` fan-out, and the
partition contracts of Eqs. 5-6 — and this subpackage enforces them
statically.  A rule engine walks every module's AST, a call-graph pass
computes what is reachable from thread-pool entry points, and a small
catalog of rules (determinism, thread-safety, contract presence,
numerics hygiene) reports violations with stable IDs, autofix hints,
and per-line/per-file suppression comments.

Run it as ``repro-lint src/repro`` (console script) or through
:func:`run_lint`.
"""

from .config import LintConfig, load_config
from .engine import LintEngine, run_lint
from .model import Finding, Rule, all_rules
from .reporter import render_json, render_text

__all__ = [
    "Finding",
    "LintConfig",
    "LintEngine",
    "Rule",
    "all_rules",
    "load_config",
    "render_json",
    "render_text",
    "run_lint",
]
