"""Interprocedural dataflow: provenance taint + per-path locksets.

The per-file RPL1xx/RPL2xx rules pattern-match single call sites; they
cannot prove that the generator reaching ``AcquisitionOptimizer.propose``
was derived from the engine's seed, or that a write reached from
``Executor.submit`` holds a lock.  This module closes that gap with
three whole-program analyses over the parsed :class:`~.project.Project`
and the :class:`~.callgraph.CallGraph`:

* **Module-level symbol resolution** — top-level assignments are
  evaluated so taint flows through package globals and
  ``from mod import NAME`` re-exports;
* **Forward taint propagation** — a small abstract interpreter runs
  every function body to a fixpoint, tracking the *provenance* of
  values (where RNGs and clocks came from) through locals (including
  re-assignment), constant-keyed dict payloads, dataclass/instance
  fields, constructor keyword arguments, and function return values.
  Sink checks fire where a value of known-bad provenance flows into a
  parameter whose annotation marks it as an RNG (RPL601) or clock
  (RPL602) sink;
* **Lockset analysis** — per-statement sets of locks *definitely* held
  (the intersection over all paths, tracking ``with lock:`` blocks and
  explicit ``acquire``/``release`` calls through branches), powering
  RPL603 and making RPL201 lock-aware.

Everything here is syntactic and conservative: unknown provenance is
never reported, so the analyses only flag flows they can actually
trace.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field as dc_field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .callgraph import CallGraph, FunctionScanner, _annotation_class
from .config import LintConfig
from .project import FunctionInfo, ModuleInfo, Project

# ----------------------------------------------------------------------
# Taint domain
# ----------------------------------------------------------------------
#: Provenance domains and kinds.
RNG = "rng"
CLOCK = "clock"
FRESH = "fresh"      # rng drawing OS entropy (not derived from a seed)
SEEDED = "seeded"    # rng derived from an explicit seed / resolve_rng / spawn
CLOCK_OK = "clock"       # an instance of a sanctioned Clock class
CLOCK_BAD = "nonclock"   # a project instance that is not a Clock


@dataclass(frozen=True)
class Taint:
    """One provenance fact about a value."""

    domain: str   # RNG or CLOCK
    kind: str     # FRESH/SEEDED or CLOCK_OK/CLOCK_BAD
    origin: str   # human-readable description of where the value came from
    line: int = 0


TaintSet = FrozenSet[Taint]
EMPTY: TaintSet = frozenset()

#: numpy.random bit generators; unseeded construction draws OS entropy.
_BIT_GENERATORS = {"PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64"}

#: Parameter annotations marking an RNG sink (must receive seed-derived
#: values).  ``RNGLike`` is the package's Generator-or-seed union.
RNG_SINK_ANNOTATIONS = {"Generator", "RNGLike"}

#: Parameter annotations marking a clock sink.
CLOCK_SINK_ANNOTATIONS = {"Clock"}

#: Simple call names whose result is sanctioned seed-derived randomness.
_BLESSED_RNG_CALLS = {"resolve_rng"}

#: threading types treated as locks by the lockset analysis.
_LOCK_TYPE_NAMES = {
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
}


def _has(taints: TaintSet, domain: str, kind: str) -> Optional[Taint]:
    for taint in taints:
        if taint.domain == domain and taint.kind == kind:
            return taint
    return None


@dataclass(frozen=True)
class SinkHit:
    """One tainted value reaching a provenance-checked parameter."""

    domain: str          # RNG or CLOCK
    module: str          # module containing the call site
    line: int
    col: int
    callee: str          # qualname of the called function
    param: str           # parameter the tainted value binds to
    taint: Taint


# ----------------------------------------------------------------------
# Lockset analysis
# ----------------------------------------------------------------------
class LocksetAnalysis:
    """Per-statement locks *definitely* held, for one function body.

    ``with lock:`` blocks add to the set for their body;
    ``lock.acquire()``/``lock.release()`` statements add/remove along
    the current path; branches join by intersection, so a lock held on
    only one arm of an ``if`` does not count below the join — exactly
    the "held on all paths" obligation RPL603 checks.
    """

    def __init__(self, scanner: FunctionScanner) -> None:
        self.scanner = scanner
        self._held_at: Dict[int, FrozenSet[str]] = {}

    def lock_token(self, expr: ast.AST) -> Optional[str]:
        """Dotted name of a lock-like expression, else ``None``."""
        dotted = self.scanner.module.resolve(expr)
        if dotted is None:
            return None
        last = dotted.split(".")[-1].lower()
        if "lock" in last or "mutex" in last:
            return dotted
        if isinstance(expr, ast.Attribute):
            receiver = self.scanner._value_type(expr.value)
            if receiver is not None:
                attr_cls = self.scanner.graph.attr_type(receiver, expr.attr)
                if attr_cls in _LOCK_TYPE_NAMES:
                    return dotted
        if isinstance(expr, ast.Name):
            if self.scanner.local_types.get(expr.id) in _LOCK_TYPE_NAMES:
                return dotted
        return None

    def held_at(self, node: ast.AST) -> FrozenSet[str]:
        """Locks definitely held when ``node`` executes."""
        return self._held_at.get(id(node), frozenset())

    def run(self, body: List[ast.stmt]) -> None:
        self._walk(body, frozenset())

    def _mark(self, node: ast.AST, held: FrozenSet[str]) -> None:
        for sub in ast.walk(node):
            self._held_at[id(sub)] = held

    def _acquire_release(
        self, stmt: ast.stmt, held: FrozenSet[str]
    ) -> FrozenSet[str]:
        if not (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call)):
            return held
        func = stmt.value.func
        if not isinstance(func, ast.Attribute):
            return held
        if func.attr not in ("acquire", "release"):
            return held
        token = self.lock_token(func.value)
        if token is None:
            return held
        if func.attr == "acquire":
            return held | {token}
        return held - {token}

    def _walk(
        self, stmts: Iterable[ast.stmt], held: FrozenSet[str]
    ) -> FrozenSet[str]:
        for stmt in stmts:
            self._mark(stmt, held)
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                tokens = {
                    token
                    for item in stmt.items
                    if (token := self.lock_token(item.context_expr)) is not None
                }
                self._walk(stmt.body, held | tokens)
            elif isinstance(stmt, ast.If):
                after_body = self._walk(stmt.body, held)
                after_else = self._walk(stmt.orelse, held)
                held = after_body & after_else
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                after_body = self._walk(stmt.body, held)
                self._walk(stmt.orelse, held)
                held = held & after_body  # body may run zero times
            elif isinstance(stmt, ast.Try):
                self._walk(stmt.body, held)
                for handler in stmt.handlers:
                    self._walk(handler.body, held)
                self._walk(stmt.orelse, held)
                held = self._walk(stmt.finalbody, held)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A nested def's body runs whenever it is *called*; no
                # lock from the enclosing scope is guaranteed then.
                self._walk(stmt.body, frozenset())
            else:
                held = self._acquire_release(stmt, held)
        return held


def compute_locksets(
    graph: CallGraph, fn: FunctionInfo
) -> LocksetAnalysis:
    """Lockset analysis of one function, pre-typed by the call graph."""
    module = graph.project.modules[fn.module]
    scanner = FunctionScanner(graph, fn, module)
    for stmt in fn.node.body:
        scanner.visit(stmt)  # populate local types (flow-insensitive)
    analysis = LocksetAnalysis(scanner)
    analysis.run(fn.node.body)
    return analysis


# ----------------------------------------------------------------------
# Taint propagation
# ----------------------------------------------------------------------
class _FunctionFlow:
    """Abstract interpreter for one function (or module) body."""

    def __init__(
        self,
        analysis: "DataflowAnalysis",
        fn: Optional[FunctionInfo],
        module: ModuleInfo,
        report: bool,
    ) -> None:
        self.analysis = analysis
        self.fn = fn
        self.module = module
        self.report = report
        self.scanner = FunctionScanner(analysis.graph, fn, module)
        body = fn.node.body if fn is not None else module.tree.body
        for stmt in body:
            if fn is None and isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            self.scanner.visit(stmt)
        self.env: Dict[str, TaintSet] = {}
        self.dict_env: Dict[str, Dict[str, TaintSet]] = {}
        if fn is not None:
            self._seed_params(fn)

    def _seed_params(self, fn: FunctionInfo) -> None:
        """Parameters are trusted at their own boundary: a Generator-
        annotated parameter is checked at every *call site*, so inside
        the function it counts as seed-derived; same for Clock."""
        for name, cls in self.analysis.graph.param_types.get(
            fn.key, {}
        ).items():
            if cls in RNG_SINK_ANNOTATIONS:
                self.env[name] = frozenset(
                    {Taint(RNG, SEEDED, f"{cls}-annotated parameter")}
                )
            elif cls in CLOCK_SINK_ANNOTATIONS:
                self.env[name] = frozenset(
                    {Taint(CLOCK, CLOCK_OK, "Clock-annotated parameter")}
                )

    # -- expression evaluation ------------------------------------------
    def eval(self, node: Optional[ast.AST]) -> TaintSet:
        if node is None:
            return EMPTY
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            return self._global_taint(node.id)
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int,)) and not isinstance(
                node.value, bool
            ):
                return frozenset(
                    {Taint(RNG, SEEDED, "integer seed literal", node.lineno)}
                )
            return EMPTY
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node)
        if isinstance(node, ast.IfExp):
            return self.eval(node.body) | self.eval(node.orelse)
        if isinstance(node, ast.BoolOp):
            out: TaintSet = EMPTY
            for value in node.values:
                out |= self.eval(value)
            return out
        if isinstance(node, (ast.Tuple, ast.List)):
            out = EMPTY
            for element in node.elts:
                out |= self.eval(element)
            return out
        if isinstance(node, ast.Await):
            return self.eval(node.value)
        if isinstance(node, ast.NamedExpr):
            taints = self.eval(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = taints
            return taints
        return EMPTY

    def _global_taint(self, name: str) -> TaintSet:
        dotted = self.module.imports.get(name, name)
        return self.analysis.lookup_global(self.module.name, dotted)

    def _eval_attribute(self, node: ast.Attribute) -> TaintSet:
        # Instance/dataclass field read: holder.rng, self._rng, ...
        receiver = self.scanner._value_type(node.value)
        if receiver is not None:
            found = self.analysis.lookup_field(receiver, node.attr)
            if found:
                return found
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self.fn is not None
            and self.fn.class_name is not None
        ):
            return self.analysis.lookup_field(self.fn.class_name, node.attr)
        # Module-global read through an import alias (mod.GLOBAL).
        dotted = self.module.resolve(node)
        if dotted is not None:
            return self.analysis.lookup_global(self.module.name, dotted)
        return EMPTY

    def _eval_subscript(self, node: ast.Subscript) -> TaintSet:
        # Constant-key read out of a tracked dict payload.
        if isinstance(node.value, ast.Name) and isinstance(
            node.slice, ast.Constant
        ):
            payload = self.dict_env.get(node.value.id)
            if payload is not None:
                return payload.get(str(node.slice.value), EMPTY)
        return EMPTY

    def _eval_call(self, node: ast.Call) -> TaintSet:
        func = node.func
        dotted = (
            self.module.resolve(func)
            if isinstance(func, (ast.Name, ast.Attribute))
            else None
        )
        taints = self._rng_source(node, func, dotted)
        if taints is None:
            taints = self._project_call(node, func, dotted)
        # Evaluate arguments regardless, for sink checks + ctor fields.
        self._check_call_args(node)
        return taints if taints is not None else EMPTY

    def _rng_source(
        self,
        node: ast.Call,
        func: ast.AST,
        dotted: Optional[str],
    ) -> Optional[TaintSet]:
        """Taint of numpy.random / resolve_rng / spawn constructions."""
        simple = dotted.split(".")[-1] if dotted else None
        has_args = bool(node.args or node.keywords)
        line = node.lineno

        def rng(kind: str, origin: str) -> TaintSet:
            return frozenset({Taint(RNG, kind, origin, line)})

        if simple == "default_rng":
            if has_args:
                return rng(SEEDED, "np.random.default_rng(seed)")
            return rng(FRESH, "np.random.default_rng() with no seed")
        if simple in _BIT_GENERATORS:
            if has_args:
                return rng(SEEDED, f"np.random.{simple}(seed)")
            return rng(
                FRESH, f"np.random.{simple}() drawing fresh OS entropy"
            )
        if simple == "SeedSequence":
            if has_args:
                return rng(SEEDED, "np.random.SeedSequence(entropy)")
            return rng(FRESH, "np.random.SeedSequence() with no entropy")
        if simple == "Generator" and dotted and (
            dotted.startswith("numpy.random") or dotted == "Generator"
        ):
            if not node.args:
                return rng(FRESH, "np.random.Generator() with no bit generator")
            inner = self.eval(node.args[0])
            fresh = _has(inner, RNG, FRESH)
            if fresh is not None:
                return rng(FRESH, f"np.random.Generator over {fresh.origin}")
            if _has(inner, RNG, SEEDED) is not None:
                return rng(SEEDED, "np.random.Generator over a seeded source")
            return None
        if simple in _BLESSED_RNG_CALLS:
            return rng(SEEDED, f"{simple}(...)")
        if isinstance(func, ast.Attribute) and func.attr == "spawn":
            # Generator.spawn / SeedSequence.spawn derive children from
            # the parent; the parent's provenance is checked where it
            # was created.
            return rng(SEEDED, "spawned from a parent generator")
        return None

    def _project_call(
        self,
        node: ast.Call,
        func: ast.AST,
        dotted: Optional[str],
    ) -> Optional[TaintSet]:
        """Return-taint of a project function, class-aware for clocks."""
        project = self.analysis.project
        # Constructor of a project class: clock classification + field
        # taint recording for the constructed instance's class.
        cls_name = None
        if dotted is not None:
            simple = dotted.split(".")[-1]
            if simple in project.classes_by_name and simple[:1].isupper():
                cls_name = simple
        if cls_name is not None:
            self._record_ctor_fields(cls_name, node)
            kind = (
                CLOCK_OK
                if self.analysis.is_clock_class(cls_name)
                else CLOCK_BAD
            )
            return frozenset(
                {
                    Taint(
                        CLOCK,
                        kind,
                        f"instance of {cls_name}",
                        node.lineno,
                    )
                }
            )
        targets = self.scanner._resolve_call_targets(node)
        if targets:
            out: TaintSet = EMPTY
            for key in targets:
                out |= self.analysis.return_taints.get(key, EMPTY)
            return out
        return None

    def _record_ctor_fields(self, cls_name: str, node: ast.Call) -> None:
        """Taint dataclass/instance fields set via constructor args."""
        params = self.analysis.constructor_params(cls_name)
        for i, arg in enumerate(node.args):
            taints = self.eval(arg)
            if taints and i < len(params):
                self.analysis.merge_field(cls_name, params[i], taints)
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            taints = self.eval(keyword.value)
            if taints:
                self.analysis.merge_field(cls_name, keyword.arg, taints)

    # -- sink checks -----------------------------------------------------
    def _check_call_args(self, node: ast.Call) -> None:
        targets = list(self.scanner._resolve_call_targets(node))
        if not targets:
            return
        for key in targets:
            fn = self.analysis.project.functions.get(key)
            if fn is None:
                continue
            self._check_against(node, fn)

    def _bound_args(
        self, node: ast.Call, callee: FunctionInfo
    ) -> List[Tuple[str, ast.AST]]:
        args_spec = callee.node.args
        names = [a.arg for a in (*args_spec.posonlyargs, *args_spec.args)]
        if names and names[0] in ("self", "cls"):
            names = names[1:]
        bound: List[Tuple[str, ast.AST]] = []
        for i, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                break
            if i < len(names):
                bound.append((names[i], arg))
        kw_names = {a.arg for a in args_spec.kwonlyargs} | set(names)
        for keyword in node.keywords:
            if keyword.arg is not None and keyword.arg in kw_names:
                bound.append((keyword.arg, keyword.value))
        return bound

    def _check_against(self, node: ast.Call, callee: FunctionInfo) -> None:
        param_types = self.analysis.graph.param_types.get(callee.key, {})
        for param, expr in self._bound_args(node, callee):
            annotation = param_types.get(param)
            if annotation is None:
                continue
            taints = self.eval(expr)
            if not taints:
                continue
            hit: Optional[Taint] = None
            domain = None
            if annotation in RNG_SINK_ANNOTATIONS:
                hit = _has(taints, RNG, FRESH)
                domain = RNG
            elif annotation in CLOCK_SINK_ANNOTATIONS:
                hit = _has(taints, CLOCK, CLOCK_BAD)
                domain = CLOCK
            if hit is not None and domain is not None and self.report:
                self.analysis.sink_hits.add(
                    SinkHit(
                        domain=domain,
                        module=self.module.name,
                        line=getattr(expr, "lineno", node.lineno),
                        col=getattr(expr, "col_offset", node.col_offset),
                        callee=callee.qualname,
                        param=param,
                        taint=hit,
                    )
                )

    # -- statement walk --------------------------------------------------
    def run(self) -> None:
        body = (
            self.fn.node.body if self.fn is not None else self.module.tree.body
        )
        self.walk(body)

    def walk(self, stmts: Iterable[ast.stmt]) -> None:
        for stmt in stmts:
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            self._assign(stmt.targets, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign([stmt.target], stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            taints = self.eval(stmt.value)
            if isinstance(stmt.target, ast.Name) and taints:
                self.env[stmt.target.id] = (
                    self.env.get(stmt.target.id, EMPTY) | taints
                )
        elif isinstance(stmt, ast.Return):
            taints = self.eval(stmt.value)
            if self.fn is not None and taints:
                self.analysis.merge_return(self.fn.key, taints)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            before = dict(self.env)
            self.walk(stmt.body)
            after_body = self.env
            self.env = dict(before)
            self.walk(stmt.orelse)
            merged = dict(after_body)
            for name, taints in self.env.items():
                merged[name] = merged.get(name, EMPTY) | taints
            self.env = merged
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_taints = self.eval(stmt.iter)
            if isinstance(stmt.target, ast.Name) and iter_taints:
                self.env[stmt.target.id] = iter_taints
            self.walk(stmt.body)
            self.walk(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            self.walk(stmt.body)
            self.walk(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taints = self.eval(item.context_expr)
                if isinstance(item.optional_vars, ast.Name) and taints:
                    self.env[item.optional_vars.id] = taints
            self.walk(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.walk(stmt.body)
            for handler in stmt.handlers:
                self.walk(handler.body)
            self.walk(stmt.orelse)
            self.walk(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if self.fn is not None:
                # Nested def: approximate as inline (same thread, same
                # closure), matching the call-graph's treatment.
                self.walk(stmt.body)
        elif isinstance(stmt, ast.ClassDef):
            pass
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)

    def _assign(self, targets: List[ast.AST], value: ast.AST) -> None:
        # Tracked dict payload: d = {"rng": expr, ...}
        if (
            len(targets) == 1
            and isinstance(targets[0], ast.Name)
            and isinstance(value, ast.Dict)
            and all(
                isinstance(k, ast.Constant) for k in value.keys if k is not None
            )
        ):
            payload: Dict[str, TaintSet] = {}
            for key_node, value_node in zip(value.keys, value.values):
                if key_node is None:
                    continue
                payload[str(key_node.value)] = self.eval(value_node)
            self.dict_env[targets[0].id] = payload
            self.env[targets[0].id] = EMPTY
            return
        taints = self.eval(value)
        for target in targets:
            self._assign_target(target, value, taints)

    def _assign_target(
        self, target: ast.AST, value: ast.AST, taints: TaintSet
    ) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = taints  # strong update (re-assignment)
            self.dict_env.pop(target.id, None)
            if self.fn is None and taints:
                self.analysis.merge_global(self.module.name, target.id, taints)
        elif isinstance(target, ast.Attribute):
            receiver: Optional[str] = None
            if (
                isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and self.fn is not None
            ):
                receiver = self.fn.class_name
            else:
                receiver = self.scanner._value_type(target.value)
            if receiver is not None and taints:
                self.analysis.merge_field(receiver, target.attr, taints)
        elif isinstance(target, ast.Subscript):
            if isinstance(target.value, ast.Name) and isinstance(
                target.slice, ast.Constant
            ):
                payload = self.dict_env.setdefault(target.value.id, {})
                payload[str(target.slice.value)] = taints
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value, (ast.Tuple, ast.List)) and len(
                value.elts
            ) == len(target.elts):
                for sub_target, sub_value in zip(target.elts, value.elts):
                    self._assign_target(
                        sub_target, sub_value, self.eval(sub_value)
                    )
            else:
                for sub_target in target.elts:
                    self._assign_target(sub_target, value, taints)


class DataflowAnalysis:
    """Whole-program taint propagation to a fixpoint.

    Summaries — per-function return taints, per-(class, field) taints,
    and per-module global taints — are grown monotonically over
    repeated passes until nothing changes (bounded by
    :attr:`MAX_ITERATIONS`), then one reporting pass collects
    :class:`SinkHit` records for the RPL6xx rules.
    """

    MAX_ITERATIONS = 4

    def __init__(
        self, project: Project, graph: CallGraph, config: LintConfig
    ) -> None:
        self.project = project
        self.graph = graph
        self.config = config
        self.return_taints: Dict[str, TaintSet] = {}
        self.field_taints: Dict[Tuple[str, str], TaintSet] = {}
        self.global_taints: Dict[Tuple[str, str], TaintSet] = {}
        self.sink_hits: Set[SinkHit] = set()
        self._changed = False
        self._clock_cache: Dict[str, bool] = {}

    # -- summary tables --------------------------------------------------
    def _merge(
        self, table: Dict[Any, TaintSet], key: Any, taints: TaintSet
    ) -> None:
        old = table.get(key, EMPTY)
        new = old | taints
        if new != old:
            table[key] = new
            self._changed = True

    def merge_return(self, key: str, taints: TaintSet) -> None:
        self._merge(self.return_taints, key, taints)

    def merge_field(self, cls: str, attr: str, taints: TaintSet) -> None:
        self._merge(self.field_taints, (cls, attr), taints)

    def merge_global(self, module: str, name: str, taints: TaintSet) -> None:
        self._merge(self.global_taints, (module, name), taints)

    def lookup_field(self, cls: str, attr: str) -> TaintSet:
        found = self.field_taints.get((cls, attr))
        if found is not None:
            return found
        for info in self.project.classes_by_name.get(cls, ()):
            for base in info.base_names:
                found = self.field_taints.get((base, attr))
                if found is not None:
                    return found
        return EMPTY

    def lookup_global(self, current_module: str, dotted: str) -> TaintSet:
        """Taint of a module-level symbol, resolving dotted imports."""
        if "." not in dotted:
            return self.global_taints.get((current_module, dotted), EMPTY)
        for module_name in self.project.modules:
            if dotted.startswith(module_name + "."):
                remainder = dotted[len(module_name) + 1:]
                if "." not in remainder:
                    return self.global_taints.get(
                        (module_name, remainder), EMPTY
                    )
        return EMPTY

    def is_clock_class(self, cls_name: str) -> bool:
        """Whether a project class is (or transitively derives from) a
        sanctioned clock type."""
        cached = self._clock_cache.get(cls_name)
        if cached is not None:
            return cached
        self._clock_cache[cls_name] = False  # cycle guard
        result = False
        if cls_name in CLOCK_SINK_ANNOTATIONS or cls_name in set(
            self.config.clock_classes
        ):
            result = True
        else:
            for info in self.project.classes_by_name.get(cls_name, ()):
                if any(
                    base in CLOCK_SINK_ANNOTATIONS
                    or base in set(self.config.clock_classes)
                    or self.is_clock_class(base)
                    for base in info.base_names
                ):
                    result = True
                    break
        self._clock_cache[cls_name] = result
        return result

    def constructor_params(self, cls_name: str) -> List[str]:
        """Positional field/parameter names of a class constructor."""
        ctor = self.project.lookup_method(cls_name, "__init__")
        if ctor is not None:
            args = ctor.node.args
            names = [a.arg for a in (*args.posonlyargs, *args.args)]
            return names[1:] if names and names[0] == "self" else names
        info = self.project.dataclass_info(cls_name)
        if info is None:
            candidates = [
                c
                for c in self.project.classes_by_name.get(cls_name, ())
                if c.is_dataclass
            ]
            info = candidates[0] if candidates else None
        if info is not None:
            return [
                item.target.id
                for item in info.node.body
                if isinstance(item, ast.AnnAssign)
                and isinstance(item.target, ast.Name)
            ]
        return []

    # -- driver ----------------------------------------------------------
    def _pass(self, report: bool) -> bool:
        self._changed = False
        for module in self.project.modules.values():
            flow = _FunctionFlow(self, None, module, report)
            flow.run()
        for fn in self.project.iter_functions():
            module = self.project.modules[fn.module]
            flow = _FunctionFlow(self, fn, module, report)
            flow.run()
        return self._changed

    def run(self) -> "DataflowAnalysis":
        for _ in range(self.MAX_ITERATIONS):
            if not self._pass(report=False):
                break
        self._pass(report=True)
        return self


# ----------------------------------------------------------------------
# Shared entry points for the rule modules
# ----------------------------------------------------------------------
#: Cache key: id(project) — a Project is parsed once per engine run, so
#: identity is stable for the lifetime of one lint invocation; entries
#: are keyed weakly through the bounded size below.
_ANALYSIS_CACHE: Dict[Tuple[int, int], DataflowAnalysis] = {}
_GRAPH_CACHE: Dict[int, CallGraph] = {}
_CACHE_LIMIT = 8


def shared_callgraph(project: Project) -> CallGraph:
    """One call graph per parsed project (rules share the build)."""
    from .callgraph import build_callgraph

    key = id(project)
    graph = _GRAPH_CACHE.get(key)
    if graph is None or graph.project is not project:
        if len(_GRAPH_CACHE) >= _CACHE_LIMIT:
            _GRAPH_CACHE.clear()
        graph = build_callgraph(project)
        _GRAPH_CACHE[key] = graph
    return graph


def analyze(project: Project, config: LintConfig) -> DataflowAnalysis:
    """Run (or reuse) the dataflow analysis for one project + config."""
    key = (id(project), hash(config))
    cached = _ANALYSIS_CACHE.get(key)
    if cached is not None and cached.project is project:
        return cached
    if len(_ANALYSIS_CACHE) >= _CACHE_LIMIT:
        _ANALYSIS_CACHE.clear()
    analysis = DataflowAnalysis(
        project, shared_callgraph(project), config
    ).run()
    _ANALYSIS_CACHE[key] = analysis
    return analysis


def pool_entry_keys(
    project: Project, graph: CallGraph, config: LintConfig
) -> Set[str]:
    """Thread-pool entry points: discovered + configured."""
    entries: Set[str] = set(graph.pool_entrypoints)
    for dotted in config.entrypoints:
        module_name, _, func = dotted.rpartition(".")
        module = project.modules.get(module_name)
        if module is not None and func in module.functions:
            entries.add(module.functions[func].key)
    return entries
