"""Whole-program concurrency and resource-lifecycle analysis (FLOW).

The RPL6xx dataflow pass proves per-statement facts (locksets, taint);
this module composes them into the *interactions* a long-lived service
dies from: lock-order cycles between the worker pools' guarded objects,
blocking work performed while a lock is held, mutable values escaping
into pool threads unregistered, resources whose release is not
exception-safe, and containers that only ever grow.  Five analyses run
over one shared harvest of the project:

* **Lock-order graph (RPL801)** — every lock acquisition is qualified
  to a project-wide identity (``Class.attr``, ``module.NAME``, or
  ``fn-key.local``) and recorded together with the locks definitely
  held at the acquisition site; per-function "locks acquired
  transitively" summaries extend the edges through the call graph.
  Cycles in the resulting order graph are deadlocks waiting for the
  right interleaving; a self-edge is one only for non-reentrant locks
  (``RLock`` re-entry is legal and recorded separately).
* **Blocking-call-under-lock (RPL802)** — a configurable registry of
  blocking operations (file/socket IO, ``sleep``, ``subprocess``,
  physics observation, ``Future.result``) matched inside held-lock
  regions, both directly and through calls whose callees block.
* **Thread-escape (RPL803)** — arguments and closure captures flowing
  into ``Executor.submit`` / ``Thread(target=...)`` whose inferred
  class is a project type that is neither frozen, guarded, registered
  via ``register_shared`` in its constructor, nor allowlisted.
* **Lifecycle discipline (RPL804)** — locally-created resources
  (``open``, pools, servers, stores) must be released on *all* paths:
  used as a context manager, released in a ``finally``, or ownership
  transferred (returned / stored on an object / passed on).
* **Unbounded growth (RPL805)** — growth operations on module-level or
  long-lived-object containers reachable from a loop entry point, with
  no shrink operation anywhere, no ``len()`` bound guard at the growth
  site, and no ``deque(maxlen=...)`` bound.

Everything is syntactic and conservative: receivers whose type cannot
be inferred are never flagged.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field as dc_field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .callgraph import CallGraph, FunctionScanner, _annotation_class, _POOL_DISPATCH
from .config import LintConfig
from .dataflow import (
    _LOCK_TYPE_NAMES,
    LocksetAnalysis,
    pool_entry_keys,
    shared_callgraph,
)
from .project import FunctionInfo, ModuleInfo, Project

#: Container methods that add elements.
_GROW_METHODS = {"append", "add", "insert", "extend", "appendleft", "setdefault"}

#: Container methods that remove elements (an eviction path exists).
_SHRINK_METHODS = {"pop", "popitem", "popleft", "clear", "remove", "discard"}

#: Functions whose body *implements* lock discipline and is therefore
#: exempt from the bare-acquire lifecycle check.
_LOCK_WRAPPER_METHODS = {"acquire", "release", "locked", "__enter__", "__exit__"}

#: Container constructors recognised for module-level growth tracking.
_CONTAINER_CTORS = {"list", "dict", "set", "deque", "OrderedDict", "defaultdict"}


@dataclass(frozen=True)
class Site:
    """One source location inside one function."""

    module: str   # dotted module name
    line: int
    col: int
    fn_key: str   # "module:qualname" of the enclosing function


@dataclass(frozen=True)
class CycleHit:
    """A cycle in the lock-order graph (or a non-reentrant self-edge)."""

    tokens: Tuple[str, ...]
    site: Site
    detail: str


@dataclass(frozen=True)
class BlockingHit:
    """A blocking call executed while at least one lock is held."""

    site: Site
    call: str                 # registry entry that matched
    locks: Tuple[str, ...]    # locks definitely held
    via: str = ""             # callee qualname when reached interprocedurally


@dataclass(frozen=True)
class EscapeHit:
    """A mutable, unregistered project value handed to another thread."""

    site: Site
    value: str    # source text-ish description of the escaping expression
    cls: str      # inferred class name


@dataclass(frozen=True)
class LeakHit:
    """A resource whose release is not guaranteed on all paths."""

    site: Site
    resource: str   # variable name or creator description
    creator: str
    kind: str       # "never-released" | "no-finally" | "acquire-no-release"
                    # | "acquire-no-finally"
    releasers: Tuple[str, ...]


@dataclass(frozen=True)
class GrowthHit:
    """A growth-only container mutation reachable from a loop entry."""

    site: Site
    container: str   # qualified container token
    op: str
    entry: str       # entry-point function key it is reachable from


class QualifiedLocksets(LocksetAnalysis):
    """Lockset analysis whose tokens are project-wide lock identities.

    The base analysis names locks by their source spelling
    (``self._lock``), which is ambiguous across classes; the lock-order
    graph needs one node per *lock object class*, so tokens are
    qualified to ``Class.attr`` via the type oracle, ``module.NAME``
    for globals, and ``fn-key.name`` for locals (two functions' local
    locks are never the same object).
    """

    def __init__(
        self, scanner: FunctionScanner, local_names: FrozenSet[str]
    ) -> None:
        super().__init__(scanner)
        self.local_names = local_names

    def lock_token(self, expr: ast.AST) -> Optional[str]:
        if super().lock_token(expr) is None:
            return None
        return self.qualify(expr)

    def qualify(self, expr: ast.AST) -> Optional[str]:
        scanner = self.scanner
        if isinstance(expr, ast.Attribute):
            receiver = scanner._value_type(expr.value)
            if receiver is not None:
                return f"{receiver}.{expr.attr}"
            dotted = scanner.module.resolve(expr)
            if dotted is not None:
                return f"{scanner.module.name}.{dotted}"
            return None
        if isinstance(expr, ast.Name):
            if expr.id in self.local_names and scanner.fn is not None:
                return f"{scanner.fn.key}.{expr.id}"
            return f"{scanner.module.name}.{expr.id}"
        dotted = scanner.module.resolve(expr)
        if dotted is not None:
            return f"{scanner.module.name}.{dotted}"
        return None


def _assigned_names(fn_node: ast.AST) -> FrozenSet[str]:
    """Every name bound inside the function (locals, loop/with targets)."""
    names: Set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, ast.arg):
            names.add(node.arg)
    return frozenset(names)


class _BlockingRegistry:
    """Matches call expressions against the blocking-call registry.

    Entry formats: ``"time.sleep"`` (dotted name), ``".result"`` (any
    receiver, by method name), ``"Node.observe"`` (receiver class +
    method, resolved through the type oracle).
    """

    def __init__(self, entries: Sequence[str]) -> None:
        self.dotted: Set[str] = set()
        self.methods: Set[str] = set()
        self.typed: Dict[str, Set[str]] = {}
        for entry in entries:
            if entry.startswith("."):
                self.methods.add(entry[1:])
            elif "." in entry and entry.split(".", 1)[0][:1].isupper():
                cls, _, method = entry.partition(".")
                self.typed.setdefault(cls, set()).add(method)
            else:
                self.dotted.add(entry)

    def match(self, scanner: FunctionScanner, call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, (ast.Name, ast.Attribute)):
            dotted = scanner.module.resolve(func)
            if dotted is not None and dotted in self.dotted:
                return dotted
        if isinstance(func, ast.Attribute):
            if func.attr in self.methods:
                return f".{func.attr}"
            receiver = scanner._value_type(func.value)
            if receiver is not None and func.attr in self.typed.get(
                receiver, ()
            ):
                return f"{receiver}.{func.attr}"
        return None


@dataclass
class _ResourceSpec:
    creator: str
    releasers: Tuple[str, ...]


def _parse_resources(entries: Sequence[str]) -> List[_ResourceSpec]:
    specs = []
    for entry in entries:
        creator, _, releasers = entry.partition("=")
        if not releasers:
            continue
        specs.append(
            _ResourceSpec(
                creator=creator.strip(),
                releasers=tuple(
                    r.strip() for r in releasers.split(",") if r.strip()
                ),
            )
        )
    return specs


@dataclass
class _FunctionHarvest:
    """Everything one pass over a function body gives the analyses."""

    acquired: Set[str] = dc_field(default_factory=set)
    acquisition_sites: List[Tuple[str, Site]] = dc_field(default_factory=list)
    #: blocking sites not already under a lock in this very function —
    #: the ones worth reporting at a locked *call site* upstream.
    unlocked_blocking: List[Tuple[str, str]] = dc_field(default_factory=list)
    #: (held locks, resolved call targets, site) for calls under a lock.
    locked_calls: List[Tuple[FrozenSet[str], Tuple[str, ...], Site]] = dc_field(
        default_factory=list
    )


class FlowAnalysis:
    """Shared harvest + the five FLOW analyses over one project."""

    def __init__(
        self, project: Project, graph: CallGraph, config: LintConfig
    ) -> None:
        self.project = project
        self.graph = graph
        self.config = config
        self.registry = _BlockingRegistry(config.flow_blocking_calls)
        self.resources = _parse_resources(config.flow_resources)

        #: lock token -> threading type name ("Lock", "RLock", ...)
        self.lock_kinds: Dict[str, str] = {}
        #: (held, acquired) -> sites establishing that order edge
        self.edges: Dict[Tuple[str, str], List[Site]] = {}
        #: reentrant (RLock) self-edges, informational
        self.reentrant: Dict[str, List[Site]] = {}
        self.cycles: List[CycleHit] = []
        self.blocking: List[BlockingHit] = []
        self.escapes: List[EscapeHit] = []
        self.leaks: List[LeakHit] = []
        self.growth: List[GrowthHit] = []

        #: entry-point key -> sorted locks reachable from it
        self.entry_locks: Dict[str, Tuple[str, ...]] = {}
        self.entry_keys: Set[str] = set()

        self._harvests: Dict[str, _FunctionHarvest] = {}
        self._closure_cache: Dict[str, FrozenSet[str]] = {}
        self._blocking_closure_cache: Dict[str, FrozenSet[Tuple[str, str]]] = {}
        self._self_registering = self._find_self_registering()
        self._thread_targets: Set[str] = set()
        self._bounded_containers: Set[str] = set(
            config.flow_bounded_containers
        )
        self._shrunk_containers: Set[str] = set()
        self._growth_sites: List[Tuple[str, str, Site, str, Set[str]]] = []
        self._module_globals: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # Precomputation
    # ------------------------------------------------------------------
    def _find_self_registering(self) -> Set[str]:
        """Classes whose constructor calls ``register_shared(self, ...)``."""
        found: Set[str] = set()
        for cls_info in self.project.iter_classes():
            module = self.project.modules[cls_info.module]
            for ctor_name in ("__init__", "__post_init__"):
                ctor = cls_info.methods.get(ctor_name)
                if ctor is None:
                    continue
                for node in ast.walk(ctor.node):
                    if not isinstance(node, ast.Call):
                        continue
                    dotted = (
                        module.resolve(node.func)
                        if isinstance(node.func, (ast.Name, ast.Attribute))
                        else None
                    )
                    if dotted is None or not dotted.endswith("register_shared"):
                        continue
                    if node.args and (
                        isinstance(node.args[0], ast.Name)
                        and node.args[0].id == "self"
                    ):
                        found.add(cls_info.name)
        return found

    def _harvest_module_level(self, module: ModuleInfo) -> None:
        """Module-level lock kinds and container globals."""
        globals_here = self._module_globals.setdefault(module.name, set())
        for stmt in module.tree.body:
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value = stmt.value
            if isinstance(value, ast.Call):
                dotted = (
                    module.resolve(value.func)
                    if isinstance(value.func, (ast.Name, ast.Attribute))
                    else None
                )
                simple = dotted.split(".")[-1] if dotted else None
                if simple in _LOCK_TYPE_NAMES:
                    self.lock_kinds[f"{module.name}.{target.id}"] = simple
                elif simple in _CONTAINER_CTORS:
                    globals_here.add(target.id)
                    if simple == "deque" and any(
                        kw.arg == "maxlen" for kw in value.keywords
                    ):
                        self._bounded_containers.add(
                            f"{module.name}.{target.id}"
                        )
            elif isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                                    ast.DictComp, ast.SetComp)):
                globals_here.add(target.id)

    def _harvest_lock_kind(
        self, fn: FunctionInfo, module: ModuleInfo, stmt: ast.Assign
    ) -> None:
        """Record the threading type of ``self.X = threading.Lock()``."""
        if not isinstance(stmt.value, ast.Call):
            return
        dotted = (
            module.resolve(stmt.value.func)
            if isinstance(stmt.value.func, (ast.Name, ast.Attribute))
            else None
        )
        simple = dotted.split(".")[-1] if dotted else None
        if simple not in _LOCK_TYPE_NAMES:
            # deque(maxlen=...) attribute bound harvest rides along here.
            if simple == "deque" and any(
                kw.arg == "maxlen" for kw in stmt.value.keywords
            ):
                for target in stmt.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and fn.class_name is not None
                    ):
                        self._bounded_containers.add(
                            f"{fn.class_name}.{target.attr}"
                        )
            return
        for target in stmt.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and fn.class_name is not None
            ):
                self.lock_kinds[f"{fn.class_name}.{target.attr}"] = simple
            elif isinstance(target, ast.Name):
                self.lock_kinds[f"{fn.key}.{target.id}"] = simple

    # ------------------------------------------------------------------
    # Per-function harvest
    # ------------------------------------------------------------------
    def _scan_function(self, fn: FunctionInfo) -> None:
        module = self.project.modules[fn.module]
        scanner = FunctionScanner(self.graph, fn, module)
        for stmt in fn.node.body:
            scanner.visit(stmt)
        local_names = _assigned_names(fn.node)
        locks = QualifiedLocksets(scanner, local_names)
        locks.run(fn.node.body)
        harvest = self._harvests.setdefault(fn.key, _FunctionHarvest())

        for arg in (*fn.node.args.posonlyargs, *fn.node.args.args,
                    *fn.node.args.kwonlyargs):
            cls = _annotation_class(arg.annotation)
            if cls in _LOCK_TYPE_NAMES:
                self.lock_kinds.setdefault(f"{fn.key}.{arg.arg}", cls)

        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign):
                self._harvest_lock_kind(fn, module, node)
                self._scan_subscript_growth(fn, scanner, local_names, node)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                self._scan_with(fn, locks, harvest, node)
            elif isinstance(node, ast.Call):
                self._scan_call(fn, scanner, locks, local_names, harvest, node)
            elif isinstance(node, ast.Delete):
                self._scan_delete(fn, scanner, local_names, node)

        self._scan_lifecycle(fn, module, scanner, locks)

    def _site(self, fn: FunctionInfo, node: ast.AST) -> Site:
        return Site(
            module=fn.module,
            line=getattr(node, "lineno", fn.node.lineno),
            col=getattr(node, "col_offset", 0),
            fn_key=fn.key,
        )

    def _record_acquisition(
        self,
        fn: FunctionInfo,
        harvest: _FunctionHarvest,
        token: str,
        held: Set[str],
        site: Site,
    ) -> None:
        harvest.acquired.add(token)
        harvest.acquisition_sites.append((token, site))
        for prior in held:
            self._record_edge(prior, token, site)

    def _record_edge(self, held: str, acquired: str, site: Site) -> None:
        if held == acquired:
            # Only a known non-reentrant Lock self-deadlocks; RLock
            # re-entry is legal and an unknown kind stays silent
            # (Condition/Semaphore re-acquisition is not provably fatal).
            if self.lock_kinds.get(held) == "Lock":
                self.edges.setdefault((held, acquired), []).append(site)
            else:
                self.reentrant.setdefault(held, []).append(site)
            return
        self.edges.setdefault((held, acquired), []).append(site)

    def _scan_with(
        self,
        fn: FunctionInfo,
        locks: QualifiedLocksets,
        harvest: _FunctionHarvest,
        node: ast.AST,
    ) -> None:
        held = set(locks.held_at(node))
        for item in node.items:  # type: ignore[attr-defined]
            token = locks.lock_token(item.context_expr)
            if token is None:
                continue
            site = self._site(fn, item.context_expr)
            self._record_acquisition(fn, harvest, token, held, site)
            held.add(token)

    def _scan_call(
        self,
        fn: FunctionInfo,
        scanner: FunctionScanner,
        locks: QualifiedLocksets,
        local_names: FrozenSet[str],
        harvest: _FunctionHarvest,
        node: ast.Call,
    ) -> None:
        held = locks.held_at(node)
        site = self._site(fn, node)
        func = node.func

        # Explicit acquire() outside a with-block: an order-graph edge.
        if isinstance(func, ast.Attribute) and func.attr == "acquire":
            token = locks.lock_token(func.value)
            if token is not None:
                self._record_acquisition(
                    fn, harvest, token, set(held), site
                )

        # Blocking-call matching (direct).
        matched = self.registry.match(scanner, node)
        if matched is not None:
            if held:
                self.blocking.append(
                    BlockingHit(
                        site=site, call=matched, locks=tuple(sorted(held))
                    )
                )
            else:
                qualname = fn.qualname
                harvest.unlocked_blocking.append((matched, qualname))

        # Calls made while holding a lock: interprocedural edges later.
        if held:
            targets = tuple(scanner._resolve_call_targets(node))
            if targets:
                harvest.locked_calls.append(
                    (frozenset(held), targets, site)
                )

        # Pool dispatch / thread construction: escapes + entry points.
        self._scan_escape(fn, scanner, local_names, node, site)

        # Container growth/shrink through method calls.
        self._scan_method_growth(fn, scanner, local_names, node, site)

    # ------------------------------------------------------------------
    # RPL803: thread escape
    # ------------------------------------------------------------------
    def _scan_escape(
        self,
        fn: FunctionInfo,
        scanner: FunctionScanner,
        local_names: FrozenSet[str],
        node: ast.Call,
        site: Site,
    ) -> None:
        func = node.func
        escaping: List[ast.AST] = []
        callable_ref: Optional[ast.AST] = None
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _POOL_DISPATCH
            and node.args
        ):
            callable_ref = node.args[0]
            escaping.extend(node.args[1:])
            escaping.extend(
                kw.value for kw in node.keywords if kw.arg is not None
            )
        elif self._is_thread_ctor(scanner, node):
            for kw in node.keywords:
                if kw.arg == "target":
                    callable_ref = kw.value
                    resolved = scanner._resolve_callable_ref(kw.value)
                    if resolved is not None:
                        self._thread_targets.add(resolved)
                elif kw.arg == "args" and isinstance(
                    kw.value, (ast.Tuple, ast.List)
                ):
                    escaping.extend(kw.value.elts)
        else:
            return

        if isinstance(callable_ref, ast.Attribute):
            # Bound method: the receiver rides into the worker thread.
            escaping.append(callable_ref.value)
        escaping.extend(
            self._closure_captures(fn, scanner, callable_ref)
        )

        for expr in escaping:
            self._check_escape(fn, scanner, expr, site)

    def _is_thread_ctor(
        self, scanner: FunctionScanner, node: ast.Call
    ) -> bool:
        if not isinstance(node.func, (ast.Name, ast.Attribute)):
            return False
        dotted = scanner.module.resolve(node.func)
        return dotted in ("threading.Thread", "Thread")

    def _closure_captures(
        self,
        fn: FunctionInfo,
        scanner: FunctionScanner,
        callable_ref: Optional[ast.AST],
    ) -> List[ast.AST]:
        """Free variables of a lambda / nested-def submit target."""
        target: Optional[ast.AST] = None
        if isinstance(callable_ref, ast.Lambda):
            target = callable_ref.body
            bound = {
                a.arg
                for a in (
                    *callable_ref.args.posonlyargs,
                    *callable_ref.args.args,
                    *callable_ref.args.kwonlyargs,
                )
            }
        elif isinstance(callable_ref, ast.Name):
            nested = self._nested_def(fn, callable_ref.id)
            if nested is None:
                return []
            target = nested
            bound = _assigned_names(nested)  # params + locals of the def
        else:
            return []
        captures: List[ast.AST] = []
        seen: Set[str] = set()
        for node in ast.walk(target):
            if (
                isinstance(node, ast.Name)
                and isinstance(node.ctx, ast.Load)
                and node.id not in bound
                and node.id not in seen
            ):
                seen.add(node.id)
                captures.append(node)
        return captures

    def _nested_def(
        self, fn: FunctionInfo, name: str
    ) -> Optional[ast.AST]:
        for node in ast.walk(fn.node):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node is not fn.node
                and node.name == name
            ):
                return node
        return None

    def _check_escape(
        self,
        fn: FunctionInfo,
        scanner: FunctionScanner,
        expr: ast.AST,
        site: Site,
    ) -> None:
        cls = scanner._value_type(expr)
        if cls is None or cls not in self.project.classes_by_name:
            return  # unknown or non-project type: conservative silence
        if cls in self.config.guarded_classes:
            return
        if cls in self.config.shared_types:
            return
        if cls in self.config.flow_shared_ok:
            return
        if cls in self._self_registering:
            return
        if any(
            info.frozen for info in self.project.classes_by_name.get(cls, ())
        ):
            return
        desc = scanner.module.resolve(expr) or cls
        escape_site = Site(
            module=fn.module,
            line=getattr(expr, "lineno", site.line),
            col=getattr(expr, "col_offset", site.col),
            fn_key=fn.key,
        )
        self.escapes.append(EscapeHit(site=escape_site, value=desc, cls=cls))

    # ------------------------------------------------------------------
    # RPL805: container growth
    # ------------------------------------------------------------------
    def _container_token(
        self,
        fn: FunctionInfo,
        scanner: FunctionScanner,
        local_names: FrozenSet[str],
        expr: ast.AST,
    ) -> Optional[str]:
        """Qualified token of a long-lived container expression."""
        if isinstance(expr, ast.Attribute):
            owner = scanner._value_type(expr.value)
            if owner is None:
                return None
            if owner not in self.config.flow_longlived:
                return None
            return f"{owner}.{expr.attr}"
        if isinstance(expr, ast.Name):
            if expr.id in local_names:
                return None
            if expr.id in self._module_globals.get(fn.module, ()):
                return f"{fn.module}.{expr.id}"
        return None

    def _scan_method_growth(
        self,
        fn: FunctionInfo,
        scanner: FunctionScanner,
        local_names: FrozenSet[str],
        node: ast.Call,
        site: Site,
    ) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in _GROW_METHODS and func.attr not in _SHRINK_METHODS:
            return
        token = self._container_token(fn, scanner, local_names, func.value)
        if token is None:
            return
        if func.attr in _SHRINK_METHODS:
            self._shrunk_containers.add(token)
            return
        self._record_growth(fn, scanner, local_names, token, func.attr, site)

    def _scan_subscript_growth(
        self,
        fn: FunctionInfo,
        scanner: FunctionScanner,
        local_names: FrozenSet[str],
        stmt: ast.Assign,
    ) -> None:
        for target in stmt.targets:
            if not isinstance(target, ast.Subscript):
                continue
            token = self._container_token(
                fn, scanner, local_names, target.value
            )
            if token is None:
                continue
            self._record_growth(
                fn,
                scanner,
                local_names,
                token,
                "[]=",
                self._site(fn, target),
            )

    def _scan_delete(
        self,
        fn: FunctionInfo,
        scanner: FunctionScanner,
        local_names: FrozenSet[str],
        node: ast.Delete,
    ) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                token = self._container_token(
                    fn, scanner, local_names, target.value
                )
                if token is not None:
                    self._shrunk_containers.add(token)

    def _record_growth(
        self,
        fn: FunctionInfo,
        scanner: FunctionScanner,
        local_names: FrozenSet[str],
        token: str,
        op: str,
        site: Site,
    ) -> None:
        guards = self._len_guard_tokens(fn, scanner, local_names)
        self._growth_sites.append((token, fn.key, site, op, guards))

    def _len_guard_tokens(
        self,
        fn: FunctionInfo,
        scanner: FunctionScanner,
        local_names: FrozenSet[str],
    ) -> Set[str]:
        """Container tokens whose ``len()`` is inspected in this function."""
        guards: Set[str] = set()
        for node in ast.walk(fn.node):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "len"
                and node.args
            ):
                token = self._container_token(
                    fn, scanner, local_names, node.args[0]
                )
                if token is not None:
                    guards.add(token)
        return guards

    # ------------------------------------------------------------------
    # RPL804: lifecycle discipline
    # ------------------------------------------------------------------
    def _strict_module(self, module: ModuleInfo) -> bool:
        display = str(module.display_path).replace("\\", "/")
        return any(
            fragment in display for fragment in self.config.flow_strict_modules
        )

    def _creator_spec(
        self, scanner: FunctionScanner, node: ast.Call
    ) -> Optional[_ResourceSpec]:
        if not isinstance(node.func, (ast.Name, ast.Attribute)):
            return None
        dotted = scanner.module.resolve(node.func)
        if dotted is None:
            return None
        simple = dotted.split(".")[-1]
        for spec in self.resources:
            if dotted == spec.creator or simple == spec.creator:
                return spec
        return None

    def _scan_lifecycle(
        self,
        fn: FunctionInfo,
        module: ModuleInfo,
        scanner: FunctionScanner,
        locks: QualifiedLocksets,
    ) -> None:
        if not self._strict_module(module):
            return
        with_contexts = set()
        finally_nodes: Set[int] = set()
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    with_contexts.add(id(item.context_expr))
            elif isinstance(node, ast.Try):
                for stmt in node.finalbody:
                    for sub in ast.walk(stmt):
                        finally_nodes.add(id(sub))

        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                if (
                    isinstance(node, ast.Expr)
                    and isinstance(node.value, ast.Call)
                    and id(node.value) not in with_contexts
                ):
                    spec = self._creator_spec(scanner, node.value)
                    if spec is not None:
                        self.leaks.append(
                            LeakHit(
                                site=self._site(fn, node),
                                resource=spec.creator,
                                creator=spec.creator,
                                kind="never-released",
                                releasers=spec.releasers,
                            )
                        )
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue  # attribute-held resources are owned by the object
            if not isinstance(node.value, ast.Call):
                continue
            if id(node.value) in with_contexts:
                continue
            spec = self._creator_spec(scanner, node.value)
            if spec is None:
                continue
            self._check_local_resource(
                fn, spec, target.id, node, finally_nodes
            )

        self._check_bare_acquires(fn, module, locks, finally_nodes)

    def _check_local_resource(
        self,
        fn: FunctionInfo,
        spec: _ResourceSpec,
        var: str,
        creation: ast.Assign,
        finally_nodes: Set[int],
    ) -> None:
        used_as_context = False
        transferred = False
        releases: List[ast.Call] = []
        for node in ast.walk(fn.node):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    ctx = item.context_expr
                    if isinstance(ctx, ast.Name) and ctx.id == var:
                        used_as_context = True
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = getattr(node, "value", None)
                if value is not None and self._mentions(value, var):
                    transferred = True
            elif isinstance(node, ast.Assign) and node is not creation:
                if self._mentions(node.value, var) and any(
                    isinstance(t, (ast.Attribute, ast.Subscript))
                    for t in node.targets
                ):
                    transferred = True
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == var
                ):
                    if func.attr in spec.releasers:
                        releases.append(node)
                    continue
                for arg in (*node.args, *(kw.value for kw in node.keywords)):
                    if self._mentions(arg, var):
                        transferred = True
        if used_as_context or transferred:
            return
        site = self._site(fn, creation)
        if not releases:
            self.leaks.append(
                LeakHit(
                    site=site,
                    resource=var,
                    creator=spec.creator,
                    kind="never-released",
                    releasers=spec.releasers,
                )
            )
        elif not any(id(call) in finally_nodes for call in releases):
            self.leaks.append(
                LeakHit(
                    site=site,
                    resource=var,
                    creator=spec.creator,
                    kind="no-finally",
                    releasers=spec.releasers,
                )
            )

    @staticmethod
    def _mentions(node: ast.AST, var: str) -> bool:
        return any(
            isinstance(sub, ast.Name) and sub.id == var
            for sub in ast.walk(node)
        )

    def _check_bare_acquires(
        self,
        fn: FunctionInfo,
        module: ModuleInfo,
        locks: QualifiedLocksets,
        finally_nodes: Set[int],
    ) -> None:
        if fn.simple_name in _LOCK_WRAPPER_METHODS:
            return  # lock-wrapper implementations are the discipline
        acquires: List[Tuple[str, ast.Call]] = []
        releases: Dict[str, List[ast.Call]] = {}
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in ("acquire", "release"):
                continue
            token = locks.lock_token(func.value)
            if token is None:
                continue
            if func.attr == "acquire":
                acquires.append((token, node))
            else:
                releases.setdefault(token, []).append(node)
        for token, call in acquires:
            matching = releases.get(token, [])
            if not matching:
                self.leaks.append(
                    LeakHit(
                        site=self._site(fn, call),
                        resource=token,
                        creator="acquire",
                        kind="acquire-no-release",
                        releasers=("release",),
                    )
                )
            elif not any(id(rel) in finally_nodes for rel in matching):
                self.leaks.append(
                    LeakHit(
                        site=self._site(fn, call),
                        resource=token,
                        creator="acquire",
                        kind="acquire-no-finally",
                        releasers=("release",),
                    )
                )

    # ------------------------------------------------------------------
    # Interprocedural closures
    # ------------------------------------------------------------------
    def _acquired_closure(self, key: str) -> FrozenSet[str]:
        cached = self._closure_cache.get(key)
        if cached is not None:
            return cached
        self._closure_cache[key] = frozenset()  # cycle guard
        harvest = self._harvests.get(key)
        result: Set[str] = set(harvest.acquired) if harvest else set()
        for callee in self.graph.edges.get(key, ()):
            result |= self._acquired_closure(callee)
        frozen = frozenset(result)
        self._closure_cache[key] = frozen
        return frozen

    def _blocking_closure(self, key: str) -> FrozenSet[Tuple[str, str]]:
        """(blocking call, origin qualname) pairs reachable from ``key``
        that are *not* themselves under a lock at their own site."""
        cached = self._blocking_closure_cache.get(key)
        if cached is not None:
            return cached
        self._blocking_closure_cache[key] = frozenset()  # cycle guard
        harvest = self._harvests.get(key)
        result: Set[Tuple[str, str]] = (
            set(harvest.unlocked_blocking) if harvest else set()
        )
        for callee in self.graph.edges.get(key, ()):
            result |= self._blocking_closure(callee)
        frozen = frozenset(result)
        self._blocking_closure_cache[key] = frozen
        return frozen

    def _interprocedural_pass(self) -> None:
        for key, harvest in sorted(self._harvests.items()):
            for held, targets, site in harvest.locked_calls:
                acquired: Set[str] = set()
                blocked: Set[Tuple[str, str]] = set()
                for target in targets:
                    acquired |= self._acquired_closure(target)
                    blocked |= self._blocking_closure(target)
                for token in sorted(acquired):
                    for prior in sorted(held):
                        self._record_edge(prior, token, site)
                for call, origin in sorted(blocked):
                    self.blocking.append(
                        BlockingHit(
                            site=site,
                            call=call,
                            locks=tuple(sorted(held)),
                            via=origin,
                        )
                    )

    # ------------------------------------------------------------------
    # Cycle detection
    # ------------------------------------------------------------------
    def _find_cycles(self) -> None:
        adjacency: Dict[str, Set[str]] = {}
        for (held, acquired), _sites in self.edges.items():
            if held == acquired:
                continue
            adjacency.setdefault(held, set()).add(acquired)
            adjacency.setdefault(acquired, set())
        for component in _strongly_connected(adjacency):
            if len(component) < 2:
                continue
            tokens = tuple(sorted(component))
            site = self._component_site(tokens)
            detail = " -> ".join(tokens + (tokens[0],))
            self.cycles.append(
                CycleHit(tokens=tokens, site=site, detail=detail)
            )
        # Non-reentrant self-edges are their own (1-)cycles.
        for (held, acquired), sites in sorted(self.edges.items()):
            if held != acquired:
                continue
            self.cycles.append(
                CycleHit(
                    tokens=(held,),
                    site=sites[0],
                    detail=(
                        f"{held} re-acquired while held "
                        f"(kind: {self.lock_kinds.get(held, 'unknown')})"
                    ),
                )
            )
        self.cycles.sort(key=lambda c: (c.site.module, c.site.line, c.tokens))

    def _component_site(self, tokens: Tuple[str, ...]) -> Site:
        token_set = set(tokens)
        for (held, acquired), sites in sorted(self.edges.items()):
            if held in token_set and acquired in token_set:
                return sites[0]
        return Site(module="", line=1, col=0, fn_key="")

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def _resolve_entry(self, dotted: str) -> Optional[str]:
        for module_name, module in self.project.modules.items():
            if not dotted.startswith(module_name + "."):
                continue
            remainder = dotted[len(module_name) + 1:]
            parts = remainder.split(".")
            if len(parts) == 1 and parts[0] in module.functions:
                return module.functions[parts[0]].key
            if len(parts) == 2 and parts[0] in module.classes:
                method = module.classes[parts[0]].methods.get(parts[1])
                if method is not None:
                    return method.key
        return None

    def _compute_entries(self) -> None:
        entries = set(pool_entry_keys(self.project, self.graph, self.config))
        entries |= self._thread_targets
        for dotted in self.config.flow_entrypoints:
            key = self._resolve_entry(dotted)
            if key is not None:
                entries.add(key)
        self.entry_keys = entries
        for key in sorted(entries):
            reach = self.graph.reachable_from({key})
            tokens: Set[str] = set()
            for fn_key in reach:
                harvest = self._harvests.get(fn_key)
                if harvest is not None:
                    tokens |= harvest.acquired
            self.entry_locks[key] = tuple(sorted(tokens))

    def _growth_findings(self) -> None:
        reach = self.graph.reachable_from(self.entry_keys)
        seen: Set[Tuple[str, int]] = set()
        for token, fn_key, site, op, guards in self._growth_sites:
            if token in self._bounded_containers:
                continue
            if token in self._shrunk_containers:
                continue
            if token in guards:
                continue
            if fn_key not in reach:
                continue
            dedupe = (token, site.line)
            if dedupe in seen:
                continue
            seen.add(dedupe)
            self.growth.append(
                GrowthHit(
                    site=site,
                    container=token,
                    op=op,
                    entry=reach[fn_key][0],
                )
            )
        self.growth.sort(key=lambda g: (g.site.module, g.site.line))

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def run(self) -> "FlowAnalysis":
        for module in self.project.modules.values():
            self._harvest_module_level(module)
        # Lock kinds must be known before edges classify self-edges, so
        # harvest constructor assignments in a first cheap pass.
        for fn in self.project.iter_functions():
            module = self.project.modules[fn.module]
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Assign):
                    self._harvest_lock_kind(fn, module, node)
        for fn in self.project.iter_functions():
            self._scan_function(fn)
        self._interprocedural_pass()
        self._find_cycles()
        self._compute_entries()
        self._growth_findings()
        self.blocking.sort(
            key=lambda b: (b.site.module, b.site.line, b.call, b.via)
        )
        self.escapes.sort(key=lambda e: (e.site.module, e.site.line, e.value))
        self.leaks.sort(key=lambda l: (l.site.module, l.site.line, l.resource))
        return self


def _strongly_connected(
    adjacency: Dict[str, Set[str]]
) -> List[Set[str]]:
    """Tarjan's SCC algorithm, iterative (no recursion limit games)."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[Set[str]] = []
    counter = [0]

    for root in sorted(adjacency):
        if root in index:
            continue
        work: List[Tuple[str, List[str]]] = [
            (root, sorted(adjacency.get(root, ())))
        ]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            if children:
                child = children.pop(0)
                if child not in index:
                    index[child] = lowlink[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, sorted(adjacency.get(child, ()))))
                elif child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            else:
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component: Set[str] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    components.append(component)
    return components


# ----------------------------------------------------------------------
# Shared entry point for the rule module and the repro-flow CLI
# ----------------------------------------------------------------------
_FLOW_CACHE: Dict[Tuple[int, int], FlowAnalysis] = {}
_CACHE_LIMIT = 8


def flow_analysis(project: Project, config: LintConfig) -> FlowAnalysis:
    """Run (or reuse) the FLOW analysis for one project + config."""
    key = (id(project), hash(config))
    cached = _FLOW_CACHE.get(key)
    if cached is not None and cached.project is project:
        return cached
    if len(_FLOW_CACHE) >= _CACHE_LIMIT:
        _FLOW_CACHE.clear()
    analysis = FlowAnalysis(project, shared_callgraph(project), config).run()
    _FLOW_CACHE[key] = analysis
    return analysis
