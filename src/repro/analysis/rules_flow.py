"""FLOW family (RPL8xx): whole-program concurrency & lifecycle rules.

These rules consume the shared :class:`~.flow.FlowAnalysis` harvest:
one pass over the project yields the lock-order graph, the
blocking-under-lock sites, the thread-escape set, the lifecycle
violations, and the growth-only containers; each rule then renders its
slice as findings.  The same analysis backs the ``repro-flow`` CLI, so
the graph a finding refers to can always be inspected directly.
"""

from __future__ import annotations

from typing import Iterator

from .config import LintConfig
from .flow import FlowAnalysis, Site, flow_analysis
from .model import FLOW, Finding, Rule, register
from .project import Project


def _finding_at(
    rule: Rule, project: Project, site: Site, message: str
) -> Finding:
    module = project.modules.get(site.module)
    path = str(module.display_path) if module is not None else site.module
    return Finding(
        rule_id=rule.rule_id,
        path=path,
        line=site.line,
        col=site.col,
        message=message,
        hint=rule.autofix_hint,
    )


@register
class LockOrderCycle(Rule):
    """RPL801: the global lock-acquisition-order graph must be acyclic."""

    rule_id = "RPL801"
    name = "lock-order-cycle"
    family = FLOW
    description = (
        "Builds the interprocedural lock-acquisition-order graph (which "
        "locks are taken while which are held, qualified to Class.attr "
        "identities) and flags cycles — two threads entering a cycle "
        "from different ends deadlock.  RLock re-entry is legal and "
        "exempt; a plain Lock re-acquired while held self-deadlocks."
    )
    autofix_hint = (
        "Impose a global lock order (acquire in one documented order "
        "everywhere) or narrow one critical section so the second lock "
        "is taken after the first is released; repro-flow renders the "
        "full graph."
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        analysis = flow_analysis(project, config)
        for cycle in analysis.cycles:
            yield _finding_at(
                self,
                project,
                cycle.site,
                f"lock-order cycle: {cycle.detail}",
            )


@register
class BlockingUnderLock(Rule):
    """RPL802: no blocking call inside a held-lock region."""

    rule_id = "RPL802"
    name = "blocking-under-lock"
    family = FLOW
    description = (
        "Flags registry-listed blocking operations (file/socket IO, "
        "sleep, subprocess, physics observation, Future.result) "
        "executed while a lock is definitely held — directly or via a "
        "call whose callee blocks — the classic tail-latency hazard "
        "for a long-lived service."
    )
    autofix_hint = (
        "Move the blocking work outside the critical section (copy "
        "state under the lock, block after release), or suppress with "
        "a reason when blocking under the lock is the design (e.g. "
        "durability writes)."
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        analysis = flow_analysis(project, config)
        for hit in analysis.blocking:
            locks = ", ".join(hit.locks)
            if hit.via:
                message = (
                    f"call into {hit.via!r} blocks ({hit.call}) while "
                    f"holding {locks}"
                )
            else:
                message = f"blocking call {hit.call} while holding {locks}"
            yield _finding_at(self, project, hit.site, message)


@register
class ThreadEscape(Rule):
    """RPL803: values crossing into worker threads must be registered."""

    rule_id = "RPL803"
    name = "thread-escape"
    family = FLOW
    description = (
        "Arguments and closure captures flowing into Executor.submit / "
        "Thread(target=...) whose inferred class is a mutable project "
        "type that is neither frozen, a guarded/shared class, "
        "register_shared in its constructor, nor allowlisted — the gap "
        "RPL603 only covers for already-known shared objects."
    )
    autofix_hint = (
        "Register the object (register_shared(self, ...) in its "
        "constructor), freeze the dataclass, or add the class to "
        "flow-shared-ok with a reason if it is thread-safe by design."
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        analysis = flow_analysis(project, config)
        for hit in analysis.escapes:
            yield _finding_at(
                self,
                project,
                hit.site,
                (
                    f"{hit.value!r} (a mutable {hit.cls}) escapes into a "
                    f"worker thread without registration"
                ),
            )


@register
class LifecycleDiscipline(Rule):
    """RPL804: resource release must be guaranteed on all paths."""

    rule_id = "RPL804"
    name = "lifecycle-discipline"
    family = FLOW
    description = (
        "Locally-created resources (open files, pools, servers, "
        "stores, bare lock.acquire()) must be released on every path: "
        "used as a context manager, released in a finally block, or "
        "ownership transferred (returned, stored on an object, passed "
        "on).  Enforced inside flow-strict-modules only."
    )
    autofix_hint = (
        "Wrap the resource in a with-statement, or release it in a "
        "try/finally so exception edges cannot leak it."
    )

    _MESSAGES = {
        "never-released": (
            "{creator} result {resource!r} is never released "
            "(expected {releasers})"
        ),
        "no-finally": (
            "{creator} result {resource!r} is not released on exception "
            "paths (call {releasers} in a finally block or use with)"
        ),
        "acquire-no-release": (
            "{resource} is acquired but never released in this function"
        ),
        "acquire-no-finally": (
            "{resource} is acquired without releasing in a finally "
            "block; an exception leaks the lock"
        ),
    }

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        analysis = flow_analysis(project, config)
        for hit in analysis.leaks:
            template = self._MESSAGES[hit.kind]
            message = template.format(
                creator=hit.creator,
                resource=hit.resource,
                releasers="/".join(hit.releasers),
            )
            yield _finding_at(self, project, hit.site, message)


@register
class UnboundedGrowth(Rule):
    """RPL805: long-lived containers need an eviction path or a bound."""

    rule_id = "RPL805"
    name = "unbounded-growth"
    family = FLOW
    description = (
        "Growth operations (append/add/insert/extend/setdefault/[k]=v) "
        "on module-level or long-lived-object containers, on paths "
        "reachable from a loop entry point, with no shrink operation "
        "anywhere in the project, no len() bound guard at the growth "
        "site, and no deque(maxlen=...) bound — the memory-leak class "
        "that kills services."
    )
    autofix_hint = (
        "Add an eviction/clear path, bound the container (deque with "
        "maxlen, len() guard before insert), or allowlist it in "
        "flow-bounded-containers with the reason it cannot grow."
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        analysis = flow_analysis(project, config)
        for hit in analysis.growth:
            entry = hit.entry.split(":")[-1]
            yield _finding_at(
                self,
                project,
                hit.site,
                (
                    f"container {hit.container} only grows ({hit.op}) on a "
                    f"path reachable from loop entry {entry!r}; no "
                    f"eviction, bound guard, or maxlen found"
                ),
            )


#: Imported for re-export convenience (repro-flow shares the harvest).
__all__ = [
    "LockOrderCycle",
    "BlockingUnderLock",
    "ThreadEscape",
    "LifecycleDiscipline",
    "UnboundedGrowth",
    "FlowAnalysis",
]
