"""Numerics-hygiene rules (RPL4xx), scoped to the BO hot path.

The GP/acquisition stack is where float semantics bite: exact equality
on floats silently flips on the last ulp, and a stray float32 cast
poisons the Cholesky updates with precision the incremental-vs-batch
equivalence tests cannot tell apart from real bugs.  Both are only
checked inside the configured ``hot_path`` modules — elsewhere they are
style questions, here they are correctness ones.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from .config import LintConfig
from .model import NUMERICS, Finding, Rule, register
from .project import ModuleInfo, Project

#: dtype names whose use in the hot path silently narrows precision.
_NARROW_DTYPES = {"float32", "float16", "half", "int32", "int16", "int8"}


def _in_hot_path(module: ModuleInfo, config: LintConfig) -> bool:
    posix = module.path.as_posix()
    return any(fragment in posix for fragment in config.hot_path)


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        return _is_float_literal(node.operand)
    return False


@register
class FloatEquality(Rule):
    rule_id = "RPL401"
    name = "float-equality"
    family = NUMERICS
    description = (
        "Bare ==/!= against a float literal in the BO hot path: "
        "acquisition values and GP posteriors differ in the last ulp "
        "between algebraically equivalent code paths, so exact equality "
        "is order-dependent."
    )
    autofix_hint = (
        "Compare with an explicit tolerance (math.isclose / np.isclose, "
        "or a named epsilon constant); for sentinel checks use "
        "math.isinf/math.isnan."
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        for module in project.modules.values():
            if not _in_hot_path(module, config):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Compare):
                    continue
                operands = [node.left, *node.comparators]
                for op, left, right in zip(
                    node.ops, operands[:-1], operands[1:]
                ):
                    if not isinstance(op, (ast.Eq, ast.NotEq)):
                        continue
                    if _is_float_literal(left) or _is_float_literal(right):
                        yield self.finding(
                            project,
                            module.name,
                            node,
                            "exact ==/!= against a float literal in the "
                            "BO hot path",
                        )
                        break


@register
class DtypeNarrowing(Rule):
    rule_id = "RPL402"
    name = "dtype-narrowing"
    family = NUMERICS
    description = (
        "Silent dtype narrowing (float32/int32/...) in the BO hot path: "
        "the incremental Cholesky updates assume float64 end to end, "
        "and a narrowed intermediate degrades them without failing "
        "loudly."
    )
    autofix_hint = (
        "Keep float64/platform-int in the hot path; if a narrow dtype "
        "is genuinely required at a boundary, cast there and suppress "
        "this finding on that line with a justification."
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        for module in project.modules.values():
            if not _in_hot_path(module, config):
                continue
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                narrow = self._narrowing_in_call(node)
                if narrow is not None:
                    yield self.finding(
                        project,
                        module.name,
                        node,
                        f"silent narrowing to {narrow} in the BO hot path",
                    )

    def _narrowing_in_call(self, node: ast.Call) -> Optional[str]:
        func = node.func
        # arr.astype(np.float32) / arr.astype("float32")
        if isinstance(func, ast.Attribute) and func.attr == "astype":
            for arg in node.args:
                name = _dtype_name(arg)
                if name in _NARROW_DTYPES:
                    return name
        # np.float32(x) constructor casts.
        direct = _dtype_name(func)
        if direct in _NARROW_DTYPES:
            return direct
        # dtype=np.float32 keywords on any constructor.
        for keyword in node.keywords:
            if keyword.arg == "dtype":
                name = _dtype_name(keyword.value)
                if name in _NARROW_DTYPES:
                    return name
        return None


def _dtype_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None
