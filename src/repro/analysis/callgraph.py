"""Static call-graph construction and thread-pool reachability.

The thread-safety family needs to know which functions can execute on a
worker thread: everything transitively callable from a function handed
to ``Executor.submit``/``Executor.map``.  This pass builds a syntactic
call graph with a small, deliberately conservative type inferencer —
parameter annotations (including string annotations and
``Optional[...]`` unwrapping), ``x = Ctor(...)`` locals with
re-assignment, instance-attribute types harvested from class bodies and
``self.x = ...`` writes, and annotated return types — which is enough to
follow chains like ``node_state.build_node(...)`` →
``CLITEEngine(node, cfg).optimize()`` or
``tel.metrics.counter(...).add(...)``.

The interprocedural dataflow pass (:mod:`.dataflow`, RPL6xx) reuses the
same :class:`FunctionScanner` resolution machinery, so both layers see
one consistent view of the project's types.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .project import FunctionInfo, ModuleInfo, Project

#: Executor methods whose first argument runs on a pool thread.
_POOL_DISPATCH = {"submit", "map", "apply_async", "starmap"}


def _annotation_class(annotation: Optional[ast.AST]) -> Optional[str]:
    """Simple class name of an annotation, unwrapping Optional/quotes."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        # String annotation: parse it and recurse, so "Optional[Node]"
        # unwraps the same way the unquoted form does.
        try:
            parsed = ast.parse(annotation.value.strip(), mode="eval")
        except SyntaxError:
            return None
        return _annotation_class(parsed.body)
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Subscript):
        # Optional[T] / Union[T, None] / List[T]: unwrap to the lone class.
        base = _annotation_class(annotation.value)
        if base == "Optional":
            return _annotation_class(annotation.slice)
        if base == "Union" and isinstance(annotation.slice, ast.Tuple):
            members = [
                _annotation_class(e)
                for e in annotation.slice.elts
                if not (isinstance(e, ast.Constant) and e.value is None)
            ]
            members = [m for m in members if m is not None and m != "None"]
            if len(set(members)) == 1:
                return members[0]
            return None
        return base
    return None


@dataclass
class CallGraph:
    """Edges between function keys plus discovered pool entry points."""

    project: Project
    edges: Dict[str, Set[str]] = field(default_factory=dict)
    pool_entrypoints: Set[str] = field(default_factory=set)
    #: function key -> parameter name -> simple class name
    param_types: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: (class name, attribute) -> simple class name of the attribute
    attr_types: Dict[Tuple[str, str], str] = field(default_factory=dict)

    def attr_type(self, class_name: str, attr: str) -> Optional[str]:
        """Type of ``class_name.attr``, walking base classes by name."""
        seen: Set[str] = set()
        queue = [class_name]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            found = self.attr_types.get((current, attr))
            if found is not None:
                return found
            for cls in self.project.classes_by_name.get(current, ()):
                queue.extend(cls.base_names)
        return None

    def reachable_from(
        self, entry_keys: Set[str]
    ) -> Dict[str, Tuple[str, ...]]:
        """BFS closure: function key -> call path from an entry point."""
        paths: Dict[str, Tuple[str, ...]] = {}
        queue: List[str] = []
        for key in sorted(entry_keys):
            if key in self.project.functions:
                paths[key] = (key,)
                queue.append(key)
        while queue:
            current = queue.pop(0)
            for callee in sorted(self.edges.get(current, ())):
                if callee not in paths:
                    paths[callee] = paths[current] + (callee,)
                    queue.append(callee)
        return paths


class FunctionScanner(ast.NodeVisitor):
    """Collects call edges and local types inside one function body.

    Also the project's shared expression-type oracle: the dataflow pass
    (:mod:`.dataflow`) instantiates one per function to resolve call
    targets and receiver types with the same rules the call graph uses.
    ``fn`` may be ``None`` for module-level code (no parameters, no
    ``self``).
    """

    def __init__(
        self,
        graph: CallGraph,
        fn: Optional[FunctionInfo],
        module: ModuleInfo,
    ) -> None:
        self.graph = graph
        self.project = graph.project
        self.fn = fn
        self.module = module
        self.local_types: Dict[str, str] = dict(
            graph.param_types.get(fn.key, {}) if fn is not None else {}
        )
        self.callees: Set[str] = set()

    # -- type bookkeeping ------------------------------------------------
    def _record_self_attr(self, attr: str, inferred: Optional[str]) -> None:
        if (
            inferred is not None
            and self.fn is not None
            and self.fn.class_name is not None
        ):
            self.graph.attr_types.setdefault(
                (self.fn.class_name, attr), inferred
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        inferred = self._value_type(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if inferred is not None:
                    self.local_types[target.id] = inferred
                else:
                    # Re-assignment to something untypeable invalidates
                    # whatever the local held before.
                    self.local_types.pop(target.id, None)
            elif (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                self._record_self_attr(target.attr, inferred)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        cls = _annotation_class(node.annotation)
        if isinstance(node.target, ast.Name) and cls is not None:
            self.local_types[node.target.id] = cls
        elif (
            isinstance(node.target, ast.Attribute)
            and isinstance(node.target.value, ast.Name)
            and node.target.value.id == "self"
        ):
            self._record_self_attr(node.target.attr, cls)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested defs get their own scan via the class/module walk; their
        # bodies still execute on the same thread when called, so edges
        # from the enclosing function to locals are approximated by
        # treating the nested body as inline.
        for child in node.body:
            self.visit(child)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    # -- call edges ------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        self._record_pool_dispatch(node)
        for key in self._resolve_call_targets(node):
            self.callees.add(key)
        self.generic_visit(node)

    def _record_pool_dispatch(self, node: ast.Call) -> None:
        func = node.func
        if not (
            isinstance(func, ast.Attribute) and func.attr in _POOL_DISPATCH
        ):
            return
        if not node.args:
            return
        target = node.args[0]
        resolved = self._resolve_callable_ref(target)
        if resolved is not None:
            self.graph.pool_entrypoints.add(resolved)

    def _resolve_callable_ref(self, node: ast.AST) -> Optional[str]:
        """A bare function reference (not a call) to a project function."""
        if isinstance(node, (ast.Name, ast.Attribute)):
            dotted = self.module.resolve(node)
            if dotted is not None:
                found = self._function_for_dotted(dotted)
                if found is not None:
                    return found
            if isinstance(node, ast.Attribute):
                keys = self._resolve_attribute_call(node, record_type=False)
                return keys[0] if keys else None
        return None

    def _function_for_dotted(self, dotted: str) -> Optional[str]:
        """Map ``pkg.mod.fn`` / ``pkg.mod.Cls.meth`` to a function key."""
        for module_name, module in self.project.modules.items():
            if dotted == module_name or not dotted.startswith(module_name + "."):
                continue
            remainder = dotted[len(module_name) + 1 :]
            parts = remainder.split(".")
            if len(parts) == 1:
                if parts[0] in module.functions:
                    return module.functions[parts[0]].key
                if parts[0] in module.classes:
                    return self._class_ctor_key(parts[0])
            elif len(parts) == 2 and parts[0] in module.classes:
                method = self.project.lookup_method(parts[0], parts[1])
                if method is not None:
                    return method.key
        # Same-module shortcut: a bare name with no import alias.
        if "." not in dotted:
            if dotted in self.module.functions:
                return self.module.functions[dotted].key
            if dotted in self.module.classes:
                return self._class_ctor_key(dotted)
        return None

    def _class_ctor_key(self, class_name: str) -> Optional[str]:
        for method in ("__init__", "__post_init__"):
            found = self.project.lookup_method(class_name, method)
            if found is not None:
                return found.key
        # A class with no explicit constructor still types its result.
        return None

    def _class_ctor_keys(self, class_name: str) -> List[str]:
        keys = []
        for method in ("__init__", "__post_init__"):
            found = self.project.lookup_method(class_name, method)
            if found is not None:
                keys.append(found.key)
        return keys

    def _call_result_type(self, node: ast.AST) -> Optional[str]:
        """Class name a call expression evaluates to, when knowable."""
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if isinstance(func, (ast.Name, ast.Attribute)):
            dotted = self.module.resolve(func)
            if dotted is not None:
                simple = dotted.split(".")[-1]
                if simple in self.project.classes_by_name:
                    return simple
                fn_key = self._function_for_dotted(dotted)
                if fn_key is not None:
                    target = self.project.functions[fn_key]
                    return _annotation_class(target.node.returns)
        if isinstance(func, ast.Attribute):
            owner = self._value_type(func.value)
            if owner is not None:
                method = self.project.lookup_method(owner, func.attr)
                if method is not None:
                    return _annotation_class(method.node.returns)
        return None

    def _value_type(self, node: ast.AST) -> Optional[str]:
        """Type of an arbitrary expression, when inferable.

        Covers names (parameters, annotated or constructor-assigned
        locals, including re-assignments), call results, conditional
        expressions, and attribute chains typed through
        :attr:`CallGraph.attr_types` (``self.telemetry.metrics`` →
        ``MetricRegistry``).
        """
        if isinstance(node, ast.Name):
            if node.id == "self" and self.fn is not None and self.fn.class_name:
                return self.local_types.get(node.id, self.fn.class_name)
            return self.local_types.get(node.id)
        if isinstance(node, ast.Call):
            return self._call_result_type(node)
        if isinstance(node, ast.IfExp):
            return self._value_type(node.body) or self._value_type(node.orelse)
        if isinstance(node, ast.Attribute):
            receiver = self._value_type(node.value)
            if receiver is not None:
                found = self.graph.attr_type(receiver, node.attr)
                if found is not None:
                    return found
            # A dotted reference to a project class (module.ClassName)
            # types as the class itself is not modelled; give up.
            return None
        if isinstance(node, ast.Await):
            return self._value_type(node.value)
        return None

    def _resolve_call_targets(self, node: ast.Call) -> List[str]:
        func = node.func
        if isinstance(func, ast.Name):
            dotted = self.module.resolve(func)
            if dotted is None:
                return []
            simple = dotted.split(".")[-1]
            if (
                simple in self.project.classes_by_name
                and self._is_project_class_ref(dotted, simple)
            ):
                return self._class_ctor_keys(simple)
            key = self._function_for_dotted(dotted)
            return [key] if key is not None else []
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute_call(func)
        return []

    def _is_project_class_ref(self, dotted: str, simple: str) -> bool:
        """Whether a dotted name plausibly refers to a project class."""
        if "." not in dotted:
            return simple in self.module.classes or dotted in self.module.imports
        return any(
            dotted == f"{cls.module}.{cls.name}"
            for cls in self.project.classes_by_name.get(simple, ())
        )

    def _resolve_attribute_call(
        self, func: ast.Attribute, record_type: bool = True
    ) -> List[str]:
        # self.method() / var.method() with an inferred receiver type.
        receiver = self._value_type(func.value)
        if receiver is None and isinstance(func.value, ast.Name):
            if (
                func.value.id == "self"
                and self.fn is not None
                and self.fn.class_name is not None
            ):
                receiver = self.fn.class_name
        if receiver is not None:
            method = self.project.lookup_method(receiver, func.attr)
            if method is not None:
                return [method.key]
            return []
        # module.function() via an import alias.
        dotted = self.module.resolve(func)
        if dotted is not None:
            key = self._function_for_dotted(dotted)
            if key is not None:
                return [key]
        return []


def build_callgraph(project: Project) -> CallGraph:
    """Construct the project call graph in three passes.

    Pass 1 records parameter types for every function (so scans can
    type ``self`` and annotated parameters) plus class-body field
    annotations; pass 2 scans every body once to harvest instance-
    attribute types from ``self.x = ...`` writes; pass 3 re-walks the
    bodies collecting edges and ``Executor.submit`` targets with the
    full attribute-type table available, so attribute-chain receivers
    (``tel.metrics.counter(...)``) resolve regardless of scan order.
    """
    graph = CallGraph(project=project)
    for fn in project.iter_functions():
        params: Dict[str, str] = {}
        args = fn.node.args
        all_args = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        for arg in all_args:
            cls = _annotation_class(arg.annotation)
            if cls is not None:
                params[arg.arg] = cls
        if all_args and all_args[0].arg == "self" and fn.class_name:
            params["self"] = fn.class_name
        graph.param_types[fn.key] = params
    for cls_info in project.iter_classes():
        for item in cls_info.node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                annotated = _annotation_class(item.annotation)
                if annotated is not None:
                    graph.attr_types.setdefault(
                        (cls_info.name, item.target.id), annotated
                    )
    for collect_edges in (False, True):
        for fn in project.iter_functions():
            module = project.modules[fn.module]
            scanner = FunctionScanner(graph, fn, module)
            for statement in fn.node.body:
                scanner.visit(statement)
            if collect_edges:
                graph.edges[fn.key] = scanner.callees
    return graph
