"""UNITS family (RPL7xx): unit-domain and interval invariants.

These rules consume the abstract interpretation in :mod:`.units`.  The
pass assigns every expression a unit domain (``Cores``, ``UnitCube``,
``Seconds``, ``Millis``, ...) plus an interval, propagated
interprocedurally, so a milliseconds target compared against a seconds
measurement — or a raw allocation vector flowing into a unit-cube
API — is flagged no matter how many assignments, fields, or calls it
was laundered through.  RPL705 closes the loop at the source: every
signature in the ``[tool.repro-lint.units]`` registry must carry its
quantity alias, so the annotations the interpreter trusts actually
exist.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Tuple

from .callgraph import _annotation_class
from .config import LintConfig
from .model import UNITS, Finding, Rule, register
from .project import Project
from .units import (
    CAPACITY,
    CROSS,
    CUBE,
    DOMAINS,
    TIME_COMPARE,
    UnitsAnalysis,
    analyze_units,
    in_units_scope,
    parse_registry,
)

#: Annotations RPL705 rejects on a registered signature: the bare
#: numeric types a quantity alias exists to replace.
_BARE_NUMERIC = {"float", "int"}


def _display_origin(analysis: UnitsAnalysis, module: str) -> str:
    info = analysis.project.modules.get(module)
    return info.display_path if info is not None else module


def _hit_findings(
    rule: Rule, project: Project, config: LintConfig, kind: str
) -> Iterator[Finding]:
    analysis = analyze_units(project, config)
    for hit in sorted(
        analysis.hits, key=lambda h: (h.module, h.line, h.col, h.message)
    ):
        if hit.kind != kind:
            continue
        yield Finding(
            rule_id=rule.rule_id,
            path=_display_origin(analysis, hit.module),
            line=hit.line,
            col=hit.col,
            message=hit.message,
            hint=rule.autofix_hint,
        )


@register
class CrossDomainArithmetic(Rule):
    """RPL701: arithmetic/assignment must stay inside one unit domain."""

    rule_id = "RPL701"
    name = "units-cross-domain"
    family = UNITS
    description = (
        "Adding, subtracting, comparing (non-time), returning, or "
        "binding a value whose inferred unit domain differs from the "
        "declared one — Seconds into Millis arithmetic, a CacheWays "
        "count into a Cores parameter, a raw allocation into a "
        "UnitCube-typed API.  Dimensionless/Fraction scalars and "
        "unknown (⊤) values never flag."
    )
    autofix_hint = (
        "Convert explicitly (to_seconds/to_millis, to_unit_cube) or fix "
        "the annotation so both sides share one quantity alias from "
        "repro.core.units."
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        yield from _hit_findings(self, project, config, CROSS)


@register
class UnitCubeEscape(Rule):
    """RPL702: values bound to UnitCube parameters must stay in [0, 1]."""

    rule_id = "RPL702"
    name = "units-cube-escape"
    family = UNITS
    description = (
        "Interval analysis proves a value fed to a UnitCube-typed "
        "parameter (from_unit_cube and friends) can leave [0, 1]; only "
        "finite bound evidence flags, so unknown values pass."
    )
    autofix_hint = (
        "Clamp with np.clip(x, 0.0, 1.0) (the optimizer's _round/"
        "_project_feasible idiom) or renormalize before crossing the "
        "cube boundary."
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        yield from _hit_findings(self, project, config, CUBE)


@register
class CapacityViolation(Rule):
    """RPL703: literal partitions must satisfy the Eq. 5/6 bounds."""

    rule_id = "RPL703"
    name = "units-capacity"
    family = UNITS
    description = (
        "A literal allocation matrix at a partition constructor "
        "(Configuration.from_matrix / Configuration(...)) provably "
        "violates Eq. 5 (every job gets >= 1 unit of every resource) "
        "or, when units-capacities is configured, the Eq. 6 capacity "
        "column sums."
    )
    autofix_hint = (
        "Give every job at least one unit per resource and make each "
        "resource column sum to its capacity (see "
        "resources.contracts.check_partition_matrix)."
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        yield from _hit_findings(self, project, config, CAPACITY)


@register
class UnconvertedTimeComparison(Rule):
    """RPL704: comparisons must not mix Seconds with Millis."""

    rule_id = "RPL704"
    name = "units-time-compare"
    family = UNITS
    description = (
        "A comparison mixes a Seconds-domain value with a Millis-domain "
        "value without an explicit to_seconds()/to_millis() conversion "
        "(or the literal *1000.0 idiom) — the classic silently-wrong "
        "QoS check, off by three orders of magnitude."
    )
    autofix_hint = (
        "Convert one side explicitly with to_seconds()/to_millis() from "
        "repro.core.units so both sides share a time domain."
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        yield from _hit_findings(self, project, config, TIME_COMPARE)


@register
class UnitlessBoundary(Rule):
    """RPL705: registered partition-math signatures carry their alias."""

    rule_id = "RPL705"
    name = "units-unitless-boundary"
    family = UNITS
    description = (
        "A signature registered in [tool.repro-lint.units] takes or "
        "returns a bare float/int (or nothing) where a quantity alias "
        "is registered — the annotation the abstract interpreter "
        "trusts at that boundary is missing, inside the configured "
        "units-modules scope."
    )
    autofix_hint = (
        "Annotate the parameter/return with the registered alias from "
        "repro.core.units (e.g. `-> Millis`, `window_s: Seconds`)."
    )

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        registry = parse_registry(config)
        if not registry:
            return
        by_qualname: Dict[str, List[Tuple[str, str]]] = {}
        for (qualname, part), domain in registry.items():
            by_qualname.setdefault(qualname, []).append((part, domain))
        findings: List[Finding] = []
        for fn in project.iter_functions():
            parts = by_qualname.get(fn.qualname)
            if parts is None:
                continue
            module = project.modules[fn.module]
            if not in_units_scope(config, str(module.display_path)):
                continue
            for part, domain in sorted(parts):
                annotation = self._annotation_for(fn.node, part)
                if annotation is None:
                    continue  # parameter not present on this overload
                cls = _annotation_class(annotation)
                if cls in DOMAINS:
                    continue
                if annotation is _MISSING or cls in _BARE_NUMERIC:
                    what = (
                        "return value" if part == "return" else f"parameter {part!r}"
                    )
                    found = "missing" if annotation is _MISSING else f"bare {cls}"
                    findings.append(
                        self.finding(
                            project,
                            fn.module,
                            fn.node,
                            f"{fn.qualname}() is registered with "
                            f"{what} = {domain} but the annotation is "
                            f"{found}",
                        )
                    )
        yield from sorted(findings, key=lambda f: (f.path, f.line, f.message))

    @staticmethod
    def _annotation_for(node: ast.FunctionDef, part: str):
        """Annotation AST for a parameter name or ``"return"``.

        Returns the sentinel ``_MISSING`` when the slot exists but has
        no annotation, and ``None`` when the parameter does not exist
        (a registry entry for another class's same-named method).
        """
        if part == "return":
            return node.returns if node.returns is not None else _MISSING
        args = node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if arg.arg == part:
                return (
                    arg.annotation if arg.annotation is not None else _MISSING
                )
        return None


#: Sentinel distinguishing "annotation absent" from "parameter absent".
_MISSING = object()
