"""Interprocedural abstract cost analysis (COST).

The ROADMAP's scale push runs warehouse scenarios at thousands of
nodes, and the paper's "low-overhead decision" claim (CLITE §V) only
survives that scale if per-event work stays *independent of fleet
size*.  PR 8 made "only displaced nodes are re-verified" an invariant;
this module makes the asymptotic statement itself statically checkable,
the way FLOW (RPL8xx) did for lock order and PURE (RPL9xx) did for
probe purity.  Five analyses share one harvest:

* **Budget check (RPL1001)** — every function registered in
  ``[tool.repro-lint.cost] budgets`` gets a *closed* symbolic cost
  (its own loops/allocations plus every callee's, bound through call
  sites) which must not exceed its declared budget polynomial.
* **Quadratic blowup (RPL1002)** — a provable same-family product:
  nested loops over two N-sized collections of the same family, or a
  list-membership / ``sorted()`` / materialization of an N collection
  inside a loop already bounded by that same N.
* **Hot-path N-allocation (RPL1003)** — an N_nodes/N_jobs-sized
  allocation or copy reachable from a hot entry point (the engine
  round loop, the warehouse event handlers, ``ServiceGateway.publish``)
  or inside a ``hot-path`` module.
* **Repeated recomputation (RPL1004)** — a PURE-clean, non-constant
  project function called at least twice with textually identical
  arguments in one dynamic scope, detected through the call graph with
  one level of argument substitution per frame (``_loads_of`` computed
  by ``_on_recheck`` and again via ``_mark_verified`` was the repo's
  own instance).
* **Registry health (RPL1005)** — stale budget/hot-entry registry
  entries, unparsable budget expressions, and hot entry points that
  carry no budget at all.

The cost domain is deliberately tiny: loop bounds are inferred from
the *identity* of the iterated collection (``cluster.nodes`` /
``used_nodes()`` → ``n_nodes``, ``self.shards`` → ``n_shards``,
``self._jobs`` → ``n_jobs``), everything else — bounded slices,
allowlisted containers, ``verified``/``displaced``/``changed`` style
locals, unknown expressions — is ``small``.  Like PURE, the analysis
is conservative in the quiet direction: a bound it cannot classify is
never charged as N, so every finding is a real symbolic fact about the
source.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .callgraph import CallGraph, FunctionScanner
from .config import LintConfig
from .dataflow import shared_callgraph
from .flow import Site
from .project import FunctionInfo, ModuleInfo, Project
from .pure import PureAnalysis, _param_names, pure_analysis

#: The N-class size variables; everything else in a term is ``small``.
N_VARS = ("n_jobs", "n_nodes", "n_shards")

#: Budget factors that do not license any N-degree.
_CONST_FACTORS = {"const", "small"}

#: Builtins that materialize their iterable argument (O(n) + O(n) mem).
_ALLOC_CALLS = {"dict", "frozenset", "list", "set", "sorted", "tuple"}

#: numpy functions that copy/materialize their array argument.
_NP_ALLOC = {"array", "asarray", "concatenate", "copy", "stack"}

#: Builtins that scan their iterable argument without materializing.
_SCAN_CALLS = {"all", "any", "max", "min", "sum"}

#: Wrappers whose result size mirrors their first argument's size.
_SIZE_WRAPPERS = {
    "enumerate", "frozenset", "iter", "list", "reversed", "set",
    "sorted", "tuple",
}

#: Receiver methods whose result size mirrors the receiver's size.
_VIEW_METHODS = {"copy", "items", "keys", "values"}

#: Attribute types for which ``in`` is a hash lookup, not a scan.
_HASHED_TYPES = {
    "Counter", "DefaultDict", "Dict", "FrozenSet", "Mapping",
    "MutableMapping", "MutableSet", "Set", "defaultdict", "dict",
    "frozenset", "set",
}

_VIA_LIMIT = 8
_TERM_LIMIT = 32
_REPEAT_SIG_LIMIT = 64


# ----------------------------------------------------------------------
# Result records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Term:
    """One symbolic cost monomial: the product of its ``vars`` factors.

    ``vars`` is sorted; ``n_*`` factors carry degree, ``small`` and
    ``param:<name>`` factors do not.  ``what`` describes the dominant
    charge and ``chain`` the callee path it was imported through.
    """

    vars: Tuple[str, ...]
    kind: str             # "loop" | "alloc" | "scan" | "membership"
    what: str
    site: Site
    chain: Tuple[str, ...] = ()

    @property
    def degree(self) -> int:
        return sum(1 for v in self.vars if v in N_VARS)


def render_terms(terms: Sequence[Term]) -> str:
    """``O(...)`` text for the worst monomials of a closed cost."""
    if not terms:
        return "O(1)"
    worst = max(t.degree for t in terms)
    if worst == 0:
        return "O(small)"
    picks = sorted(
        {t.vars for t in terms if t.degree == worst}
    )
    return " + ".join(
        "O(" + "*".join(v for v in vars if v in N_VARS) + ")"
        for vars in picks
    )


@dataclass(frozen=True)
class Budget:
    """One parsed ``[tool.repro-lint.cost] budgets`` entry."""

    entry: str            # dotted function name
    key: str              # resolved function key
    expr: str             # e.g. "small" / "n_nodes" / "n_shards*n_jobs"
    allowed: int          # licensed N-degree


@dataclass(frozen=True)
class BudgetHit:
    """RPL1001: a closed cost term exceeds the declared budget."""

    budget: Budget
    term: Term


@dataclass(frozen=True)
class QuadHit:
    """RPL1002: a provable same-family quadratic product."""

    site: Site
    fn_key: str
    vars: Tuple[str, ...]
    what: str


@dataclass(frozen=True)
class AllocHit:
    """RPL1003: an N-sized allocation on a hot path."""

    site: Site
    fn_key: str
    bound: str            # the N var sizing the allocation
    what: str
    entry: str            # hot entry key, or "" for hot-path modules


@dataclass(frozen=True)
class RepeatHit:
    """RPL1004: a pure costly call repeated with identical arguments."""

    site: Site
    fn_key: str
    callee: str           # callee function key
    args: str             # the repeated argument signature, rendered
    count: int


@dataclass(frozen=True)
class CostRegistryHit:
    """RPL1005: a cost-registry entry that is stale or malformed."""

    entry: str
    table: str            # "budgets" | "hot-entrypoints"
    module: str
    site: Site
    detail: str


# ----------------------------------------------------------------------
# Per-function harvest
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _CostCall:
    """One resolved call with loop context and argument size classes.

    ``loops`` is the lineno stack of enclosing loops (two calls with the
    same stack run in the same iteration); ``branch`` is the enclosing
    conditional-arm path, where two occurrences pair for RPL1004 only if
    no discriminator line holds them in mutually exclusive arms.
    """

    prefix: Tuple[str, ...]
    loops: Tuple[int, ...]
    branch: Tuple[Tuple[int, int], ...]
    targets: Tuple[str, ...]
    site: Site
    arg_classes: Tuple[Optional[str], ...]
    kw_classes: Tuple[Tuple[str, Optional[str]], ...]
    arg_texts: Tuple[str, ...]
    kw_texts: Tuple[Tuple[str, str], ...]
    recv_text: str


@dataclass
class _FnCost:
    """Everything one pass over a function body gives the analyses."""

    charges: List[Term] = dc_field(default_factory=list)
    calls: List[_CostCall] = dc_field(default_factory=list)
    #: (site, bound var, what) — N-sized allocations, RPL1003 material.
    allocs: List[Tuple[Site, str, str]] = dc_field(default_factory=list)
    #: (site, vars, what) — local same-family products, RPL1002.
    quads: List[Tuple[Site, Tuple[str, ...], str]] = dc_field(
        default_factory=list
    )


def _expr_text(node: ast.AST, limit: int = 60) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        text = type(node).__name__
    return text if len(text) <= limit else text[: limit - 3] + "..."


def parse_budget(expr: str) -> Optional[int]:
    """Licensed N-degree of a budget polynomial, or None if malformed.

    The grammar is ``factor ('*' factor)*`` with factors drawn from
    ``const``/``small``/``n_nodes``/``n_jobs``/``n_shards``; the
    licensed degree is the count of N factors (families are
    interchangeable for the comparison — the check is about *degree in
    fleet size*, not which fleet axis).
    """
    factors = [f.strip() for f in expr.split("*")]
    if not factors or any(not f for f in factors):
        return None
    allowed = 0
    for factor in factors:
        if factor in N_VARS:
            allowed += 1
        elif factor not in _CONST_FACTORS:
            return None
    return allowed


class _CostScanner:
    """Harvests loop/alloc/scan charges from one function body."""

    def __init__(
        self,
        analysis: "CostAnalysis",
        fn: FunctionInfo,
        module: ModuleInfo,
        scanner: FunctionScanner,
    ) -> None:
        self.analysis = analysis
        self.fn = fn
        self.module = module
        self.scanner = scanner
        self.out = _FnCost()
        self._name_class: Dict[str, Optional[str]] = {}
        self._assigns: Dict[str, List[ast.AST]] = {}
        self._seed_names()

    # -- name classification -------------------------------------------
    def _seed_names(self) -> None:
        for name in _param_names(self.fn):
            if name in ("self", "cls"):
                self._name_class[name] = "small"
            elif name in self.analysis.small_names:
                self._name_class[name] = "small"
            else:
                self._name_class[name] = f"param:{name}"
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._assigns.setdefault(target.id, []).append(
                            node.value
                        )
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    self._assigns.setdefault(node.target.id, []).append(
                        node.value
                    )
            elif isinstance(node, ast.NamedExpr):
                if isinstance(node.target, ast.Name):
                    self._assigns.setdefault(node.target.id, []).append(
                        node.value
                    )
        for _ in range(2):  # x = sorted(y) chains settle in two rounds
            for name in sorted(self._assigns):
                if name in self.analysis.small_names:
                    self._name_class[name] = "small"
                    continue
                classes = {
                    self._bound_of(value) for value in self._assigns[name]
                }
                if name in _param_names(self.fn):
                    classes.add(f"param:{name}")
                if len(classes) == 1:
                    self._name_class[name] = classes.pop()
                else:
                    self._name_class[name] = "small"

    # -- bound classification ------------------------------------------
    def _token_of(self, expr: ast.Attribute) -> Optional[str]:
        owner = self.scanner._value_type(expr.value)
        if owner is None and isinstance(expr.value, ast.Name):
            if (
                expr.value.id == "self"
                and self.fn.class_name is not None
            ):
                owner = self.fn.class_name
        if owner is None:
            return None
        return f"{owner}.{expr.attr}"

    def _rank(self, cls: Optional[str]) -> int:
        if cls is None:
            return 0
        if cls in N_VARS:
            return 2
        return 1

    def _max_class(
        self, a: Optional[str], b: Optional[str]
    ) -> Optional[str]:
        return a if self._rank(a) >= self._rank(b) else b

    def _bound_of(self, expr: ast.AST) -> Optional[str]:
        """Size class of an expression: None (const), small, param, N."""
        if isinstance(expr, ast.Constant):
            return None
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set, ast.Dict)):
            return None  # literal: statically fixed length
        if isinstance(expr, ast.Name):
            if expr.id in self.analysis.small_names:
                return "small"
            return self._name_class.get(expr.id, "small")
        if isinstance(expr, ast.Starred):
            return self._bound_of(expr.value)
        if isinstance(expr, ast.Attribute):
            token = self._token_of(expr)
            if token is not None:
                if token in self.analysis.bounded:
                    return "small"
                found = self.analysis.collections.get(token)
                if found is not None:
                    return found
            return "small"
        if isinstance(expr, ast.Subscript):
            # Indexing/slicing an N collection yields an element or a
            # bounded window (`occupied[:max_probe_nodes]`): small.  A
            # full copy (`x[:]`) keeps the base's size.
            if isinstance(expr.slice, ast.Slice):
                if expr.slice.upper is None and expr.slice.lower is None:
                    return self._bound_of(expr.value)
                return "small"
            return "small"
        if isinstance(expr, ast.Call):
            return self._call_bound(expr)
        if isinstance(
            expr, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            return self._bound_of(expr.generators[0].iter)
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor, ast.Add)
        ):
            return self._max_class(
                self._bound_of(expr.left), self._bound_of(expr.right)
            )
        if isinstance(expr, ast.IfExp):
            return self._max_class(
                self._bound_of(expr.body), self._bound_of(expr.orelse)
            )
        if isinstance(expr, ast.Await):
            return self._bound_of(expr.value)
        return "small"

    def _call_bound(self, call: ast.Call) -> Optional[str]:
        func = call.func
        simple = None
        if isinstance(func, ast.Name):
            simple = func.id
        elif isinstance(func, ast.Attribute):
            simple = func.attr
        if simple == "range":
            if len(call.args) == 1 and isinstance(
                call.args[0], ast.Call
            ):
                inner = call.args[0]
                if (
                    isinstance(inner.func, ast.Name)
                    and inner.func.id == "len"
                    and inner.args
                ):
                    return self._bound_of(inner.args[0])
            if all(isinstance(a, ast.Constant) for a in call.args):
                return None
            return "small"
        if simple in _SIZE_WRAPPERS and call.args:
            return self._bound_of(call.args[0])
        if isinstance(func, ast.Attribute):
            token = self._token_of(func)
            if token is not None:
                if token in self.analysis.bounded:
                    return "small"
                found = self.analysis.collections.get(token)
                if found is not None:
                    return found
            if func.attr in _VIEW_METHODS:
                return self._bound_of(func.value)
        return "small"

    def _hashed_membership(self, expr: ast.AST) -> bool:
        """True when ``x in expr`` is a hash lookup by container type."""
        if isinstance(expr, (ast.Set, ast.SetComp, ast.Dict, ast.DictComp)):
            return True
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, (ast.Name, ast.Attribute)):
                name = func.id if isinstance(func, ast.Name) else func.attr
                if name in ("set", "frozenset", "dict"):
                    return True
        if isinstance(expr, ast.Attribute):
            owner = self.scanner._value_type(expr.value)
            if owner is None and isinstance(expr.value, ast.Name):
                if expr.value.id == "self" and self.fn.class_name:
                    owner = self.fn.class_name
            if owner is not None:
                ctype = self.analysis.graph.attr_type(owner, expr.attr)
                if ctype in _HASHED_TYPES:
                    return True
        return False

    # -- charging -------------------------------------------------------
    def _site(self, node: ast.AST) -> Site:
        return Site(
            module=self.fn.module,
            line=getattr(node, "lineno", self.fn.node.lineno),
            col=getattr(node, "col_offset", 0),
            fn_key=self.fn.key,
        )

    def _charge(
        self,
        prefix: Tuple[str, ...],
        bound: Optional[str],
        kind: str,
        node: ast.AST,
        what: str,
    ) -> None:
        if bound is None:
            return
        vars = tuple(sorted(prefix + (bound,)))
        site = self._site(node)
        self.out.charges.append(
            Term(vars=vars, kind=kind, what=what, site=site)
        )
        if kind == "alloc" and bound in ("n_jobs", "n_nodes"):
            self.out.allocs.append((site, bound, what))
        for v in set(vars):
            if v in N_VARS and vars.count(v) >= 2:
                self.out.quads.append((site, vars, what))
                break

    # -- statement / expression walk -----------------------------------
    def scan(self) -> _FnCost:
        self._walk_block(self.fn.node.body, ((), (), ()))
        return self.out

    @staticmethod
    def _terminal(stmts: Sequence[ast.stmt]) -> bool:
        """True when a block always leaves the enclosing suite."""
        return bool(stmts) and isinstance(
            stmts[-1], (ast.Return, ast.Raise, ast.Break, ast.Continue)
        )

    def _walk_block(
        self,
        stmts: Sequence[ast.stmt],
        ctx: Tuple[
            Tuple[str, ...],
            Tuple[int, ...],
            Tuple[Tuple[int, int], ...],
        ],
    ) -> None:
        prefix, loops, branch = ctx
        for index, stmt in enumerate(stmts):
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                bound = self._bound_of(stmt.iter)
                self._walk_expr(stmt.iter, ctx)
                self._charge(
                    prefix, bound, "loop", stmt,
                    f"for over {_expr_text(stmt.iter)}",
                )
                inner = prefix + (bound,) if bound is not None else prefix
                self._walk_block(
                    stmt.body, (inner, loops + (stmt.lineno,), branch)
                )
                self._walk_block(stmt.orelse, ctx)
            elif isinstance(stmt, ast.While):
                self._walk_expr(stmt.test, ctx)
                self._charge(prefix, "small", "loop", stmt, "while loop")
                self._walk_block(
                    stmt.body,
                    (prefix + ("small",), loops + (stmt.lineno,), branch),
                )
                self._walk_block(stmt.orelse, ctx)
            elif isinstance(stmt, ast.If):
                self._walk_expr(stmt.test, ctx)
                arm = branch + ((stmt.lineno, 0),)
                self._walk_block(stmt.body, (prefix, loops, arm))
                other = branch + ((stmt.lineno, 1),)
                self._walk_block(stmt.orelse, (prefix, loops, other))
                if self._terminal(stmt.body):
                    # `if c: return` — the rest of the suite is the
                    # else arm for exclusivity purposes.
                    self._walk_block(
                        stmts[index + 1:], (prefix, loops, other)
                    )
                    return
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._walk_expr(item.context_expr, ctx)
                self._walk_block(stmt.body, ctx)
            elif isinstance(stmt, ast.Try):
                self._walk_block(stmt.body, ctx)
                for arm_id, handler in enumerate(stmt.handlers):
                    self._walk_block(
                        handler.body,
                        (prefix, loops, branch + ((stmt.lineno, arm_id),)),
                    )
                self._walk_block(stmt.orelse, ctx)
                self._walk_block(stmt.finalbody, ctx)
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                # Nested defs execute inline when called from this frame
                # (the callgraph makes the same approximation).
                self._walk_block(stmt.body, ctx)
            elif isinstance(stmt, ast.ClassDef):
                continue
            else:
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.expr):
                        self._walk_expr(child, ctx)

    def _walk_expr(
        self,
        expr: Optional[ast.AST],
        ctx: Tuple[
            Tuple[str, ...],
            Tuple[int, ...],
            Tuple[Tuple[int, int], ...],
        ],
    ) -> None:
        if expr is None:
            return
        prefix, loops, branch = ctx
        if isinstance(expr, ast.Call):
            self._handle_call(expr, ctx)
            for child in ast.iter_child_nodes(expr):
                if isinstance(child, ast.expr):
                    self._walk_expr(child, ctx)
            for kw in expr.keywords:
                self._walk_expr(kw.value, ctx)
            return
        if isinstance(
            expr, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            inner = ctx
            for gen in expr.generators:
                bound = self._bound_of(gen.iter)
                self._walk_expr(gen.iter, inner)
                kind = (
                    "loop"
                    if isinstance(expr, ast.GeneratorExp)
                    else "alloc"
                )
                self._charge(
                    inner[0], bound, kind, expr,
                    f"comprehension over {_expr_text(gen.iter)}",
                )
                step = inner[0] + (bound,) if bound is not None else inner[0]
                inner = (step, inner[1] + (expr.lineno,), inner[2])
                for cond in gen.ifs:
                    self._walk_expr(cond, inner)
            if isinstance(expr, ast.DictComp):
                self._walk_expr(expr.key, inner)
                self._walk_expr(expr.value, inner)
            else:
                self._walk_expr(expr.elt, inner)
            return
        if isinstance(expr, ast.Compare):
            left = expr.left
            for op, comparator in zip(expr.ops, expr.comparators):
                if isinstance(op, (ast.In, ast.NotIn)):
                    bound = self._bound_of(comparator)
                    if bound in N_VARS and not self._hashed_membership(
                        comparator
                    ):
                        self._charge(
                            prefix, bound, "membership", expr,
                            f"'in' scan of {_expr_text(comparator)}",
                        )
                left = comparator
            for child in ast.iter_child_nodes(expr):
                if isinstance(child, ast.expr):
                    self._walk_expr(child, ctx)
            return
        if isinstance(expr, ast.Lambda):
            self._walk_expr(expr.body, ctx)
            return
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                self._walk_expr(child, ctx)

    def _handle_call(
        self,
        call: ast.Call,
        ctx: Tuple[
            Tuple[str, ...],
            Tuple[int, ...],
            Tuple[Tuple[int, int], ...],
        ],
    ) -> None:
        prefix, loops, branch = ctx
        func = call.func
        simple = None
        if isinstance(func, ast.Name):
            simple = func.id
        elif isinstance(func, ast.Attribute):
            simple = func.attr

        if simple in _ALLOC_CALLS and call.args:
            bound = self._bound_of(call.args[0])
            self._charge(
                prefix, bound, "alloc", call,
                f"{simple}({_expr_text(call.args[0], 40)})",
            )
        elif simple in _SCAN_CALLS and call.args:
            bound = self._bound_of(call.args[0])
            self._charge(
                prefix, bound, "scan", call,
                f"{simple}({_expr_text(call.args[0], 40)})",
            )
        elif (
            isinstance(func, ast.Attribute)
            and simple == "join"
            and call.args
        ):
            self._charge(
                prefix, self._bound_of(call.args[0]), "scan", call,
                f"join({_expr_text(call.args[0], 40)})",
            )
        elif isinstance(func, ast.Attribute) and simple == "copy":
            if not call.args:
                self._charge(
                    prefix, self._bound_of(func.value), "alloc", call,
                    f"{_expr_text(func.value, 40)}.copy()",
                )
        elif isinstance(func, (ast.Name, ast.Attribute)):
            dotted = self.module.resolve(func)
            if (
                dotted is not None
                and dotted.startswith("numpy.")
                and dotted.split(".")[-1] in _NP_ALLOC
                and call.args
            ):
                self._charge(
                    prefix, self._bound_of(call.args[0]), "alloc", call,
                    f"{dotted}({_expr_text(call.args[0], 40)})",
                )

        targets = tuple(sorted(self.scanner._resolve_call_targets(call)))
        if targets:
            self.out.calls.append(
                _CostCall(
                    prefix=prefix,
                    loops=loops,
                    branch=branch,
                    targets=targets,
                    site=self._site(call),
                    arg_classes=tuple(
                        self._bound_of(arg) for arg in call.args
                    ),
                    kw_classes=tuple(
                        (kw.arg, self._bound_of(kw.value))
                        for kw in call.keywords
                        if kw.arg is not None
                    ),
                    arg_texts=tuple(
                        _expr_text(arg) for arg in call.args
                    ),
                    kw_texts=tuple(
                        (kw.arg, _expr_text(kw.value))
                        for kw in call.keywords
                        if kw.arg is not None
                    ),
                    recv_text=(
                        _expr_text(call.func.value)
                        if isinstance(call.func, ast.Attribute)
                        else ""
                    ),
                )
            )


# ----------------------------------------------------------------------
# The analysis
# ----------------------------------------------------------------------
class CostAnalysis:
    """Shared harvest + the five COST analyses over one project."""

    def __init__(
        self, project: Project, graph: CallGraph, config: LintConfig
    ) -> None:
        self.project = project
        self.graph = graph
        self.config = config

        self.collections: Dict[str, str] = {}
        self.bounded: Dict[str, str] = {}
        self.small_names: Set[str] = set(config.cost_small_names)
        for entry in config.cost_collections:
            token, _, var = entry.partition("=")
            if var in N_VARS:
                self.collections[token.strip()] = var.strip()
        for entry in config.cost_bounded:
            token, _, reason = entry.partition("=")
            self.bounded[token.strip()] = reason.strip()

        self.budgets: Dict[str, Budget] = {}      # key -> Budget
        self.hot_entries: Dict[str, str] = {}     # key -> config entry
        self.hot_scope: Dict[str, Tuple[str, ...]] = {}

        self.budget_hits: List[BudgetHit] = []
        self.quads: List[QuadHit] = []
        self.allocs: List[AllocHit] = []
        self.repeats: List[RepeatHit] = []
        self.registry: List[CostRegistryHit] = []

        self._harvests: Dict[str, _FnCost] = {}
        self._closure_cache: Dict[str, Tuple[Term, ...]] = {}
        self._repeat_maps: Dict[
            str, Dict[Tuple[str, Tuple[str, ...]], Tuple[int, Site]]
        ] = {}
        self._repeat_reported: Set[Tuple[str, Tuple[str, ...]]] = set()
        self._repeat_candidates: Dict[str, bool] = {}
        self._pure: Optional[PureAnalysis] = None

    # ------------------------------------------------------------------
    # Registry resolution (pure.py's dotted-name discipline)
    # ------------------------------------------------------------------
    def _resolve_dotted(self, dotted: str) -> Optional[str]:
        for module_name, module in self.project.modules.items():
            if not dotted.startswith(module_name + "."):
                continue
            remainder = dotted[len(module_name) + 1:]
            parts = remainder.split(".")
            if len(parts) == 1 and parts[0] in module.functions:
                return module.functions[parts[0]].key
            if len(parts) == 2 and parts[0] in module.classes:
                method = module.classes[parts[0]].methods.get(parts[1])
                if method is not None:
                    return method.key
        return None

    def _owning_module(self, dotted: str) -> Optional[str]:
        best = None
        for module_name in self.project.modules:
            if dotted.startswith(module_name + "."):
                if best is None or len(module_name) > len(best):
                    best = module_name
        return best

    def _registry_hit(
        self, entry: str, table: str, detail: str
    ) -> Optional[CostRegistryHit]:
        module = self._owning_module(entry)
        if module is None:
            return None  # entry targets a module outside this run
        site = Site(module=module, line=1, col=0, fn_key="")
        return CostRegistryHit(
            entry=entry, table=table, module=module, site=site,
            detail=detail,
        )

    def _resolve_tables(self) -> None:
        for raw in self.config.cost_budgets:
            dotted, _, expr = raw.partition("=")
            dotted = dotted.strip()
            expr = expr.strip()
            allowed = parse_budget(expr) if expr else None
            key = self._resolve_dotted(dotted)
            if key is None:
                hit = self._registry_hit(
                    dotted, "budgets", "no such function"
                )
                if hit is not None:
                    self.registry.append(hit)
                continue
            if allowed is None:
                hit = self._registry_hit(
                    dotted, "budgets", f"unparsable budget {expr!r}"
                )
                if hit is not None:
                    self.registry.append(hit)
                continue
            self.budgets[key] = Budget(
                entry=dotted, key=key, expr=expr, allowed=allowed
            )
        for entry in self.config.cost_hot_entrypoints:
            key = self._resolve_dotted(entry)
            if key is None:
                hit = self._registry_hit(
                    entry, "hot-entrypoints", "no such function"
                )
                if hit is not None:
                    self.registry.append(hit)
                continue
            self.hot_entries[key] = entry
            if key not in self.budgets:
                hit = self._registry_hit(
                    entry, "hot-entrypoints", "hot entry has no budget"
                )
                if hit is not None:
                    self.registry.append(hit)

    # ------------------------------------------------------------------
    # Closures with call-site binding
    # ------------------------------------------------------------------
    def _map_vars(
        self, vars: Tuple[str, ...], call: _CostCall, callee: FunctionInfo
    ) -> Tuple[str, ...]:
        params = _param_names(callee)
        bound = bool(params) and params[0] in ("self", "cls")
        positional = params[1:] if bound else params
        mapped: List[str] = []
        for v in vars:
            if not v.startswith("param:"):
                mapped.append(v)
                continue
            name = v[len("param:"):]
            cls: Optional[str] = "small"
            found = False
            for kw_name, kw_cls in call.kw_classes:
                if kw_name == name:
                    cls = kw_cls
                    found = True
                    break
            if not found:
                try:
                    index = positional.index(name)
                except ValueError:
                    index = -1
                if 0 <= index < len(call.arg_classes):
                    cls = call.arg_classes[index]
                else:
                    cls = None  # defaulted parameter: no caller size
            if cls is not None:
                mapped.append(cls)
        return tuple(mapped)

    def _cost_closure(self, key: str) -> Tuple[Term, ...]:
        cached = self._closure_cache.get(key)
        if cached is not None:
            return cached
        self._closure_cache[key] = ()  # cycle guard
        harvest = self._harvests.get(key)
        out: List[Term] = list(harvest.charges) if harvest else []
        if harvest is not None:
            for call in harvest.calls:
                for target in call.targets:
                    callee = self.project.functions.get(target)
                    if callee is None:
                        continue
                    for term in self._cost_closure(target):
                        mapped = self._map_vars(term.vars, call, callee)
                        chain = (callee.qualname,) + term.chain
                        if len(chain) > _VIA_LIMIT:
                            chain = chain[:_VIA_LIMIT]
                        out.append(
                            Term(
                                vars=tuple(sorted(call.prefix + mapped)),
                                kind=term.kind,
                                what=term.what,
                                site=term.site,
                                chain=chain,
                            )
                        )
        by_vars: Dict[Tuple[str, ...], Term] = {}
        for term in sorted(
            out,
            key=lambda t: (t.vars, t.site.module, t.site.line, t.what),
        ):
            by_vars.setdefault(term.vars, term)
        pruned = sorted(
            by_vars.values(), key=lambda t: (-t.degree, t.vars)
        )[:_TERM_LIMIT]
        closed = tuple(
            sorted(pruned, key=lambda t: (t.vars, t.site.line))
        )
        self._closure_cache[key] = closed
        return closed

    # ------------------------------------------------------------------
    # RPL1004: repeated identical calls to pure costly functions
    # ------------------------------------------------------------------
    def _is_repeat_candidate(self, key: str) -> bool:
        cached = self._repeat_candidates.get(key)
        if cached is not None:
            return cached
        self._repeat_candidates[key] = False  # cycle guard
        fn = self.project.functions.get(key)
        verdict = False
        if fn is not None and self._pure is not None:
            if not self._pure._effect_closure(key):
                verdict = bool(self._cost_closure(key))
        self._repeat_candidates[key] = verdict
        return verdict

    @staticmethod
    def _call_sig_args(call: _CostCall) -> Tuple[str, ...]:
        args = call.arg_texts + tuple(
            f"{name}={text}" for name, text in sorted(call.kw_texts)
        )
        if call.recv_text:
            # The receiver is part of the call's identity: two probes of
            # different spaces are not a recomputation.
            args = (f"@{call.recv_text}",) + args
        return args

    def _substitute_args(
        self,
        args: Tuple[str, ...],
        call: _CostCall,
        callee: FunctionInfo,
    ) -> Tuple[str, ...]:
        """Rewrite a child-frame argument signature into this frame."""
        params = _param_names(callee)
        bound = bool(params) and params[0] in ("self", "cls")
        positional = params[1:] if bound else params
        mapping: Dict[str, str] = {}
        for name, text in call.kw_texts:
            mapping[name] = text
        for index, name in enumerate(positional):
            if name not in mapping and index < len(call.arg_texts):
                mapping[name] = call.arg_texts[index]
        out: List[str] = []
        for arg in args:
            recv = arg.startswith("@")
            text = arg[1:] if recv else arg
            head, dot, rest = text.partition(".")
            if text in mapping:
                text = mapping[text]
            elif head == "self" and bound and call.recv_text:
                # Rebase the child frame's instance onto this call's
                # receiver (`self._loads_of` via `self._mark_verified`
                # keeps `self`; via `shard.check` it becomes `shard.`).
                text = call.recv_text + (dot + rest if dot else "")
            elif dot and head in mapping:
                text = mapping[head] + dot + rest
            else:
                text = f"{callee.simple_name}::{text}"
            out.append(f"@{text}" if recv else text)
        return tuple(out)

    @staticmethod
    def _compatible(
        a: Tuple[Tuple[int, int], ...], b: Tuple[Tuple[int, int], ...]
    ) -> bool:
        """False iff some conditional holds ``a``/``b`` in opposite arms."""
        arms = dict(a)
        return all(arms.get(line, arm) == arm for line, arm in b)

    def _repeat_map(
        self, key: str
    ) -> Dict[Tuple[str, Tuple[str, ...]], Tuple[int, Site]]:
        cached = self._repeat_maps.get(key)
        if cached is not None:
            return cached
        self._repeat_maps[key] = {}  # cycle guard
        harvest = self._harvests.get(key)
        if harvest is None:
            return {}
        # Group occurrences by (loop stack, callee, argument signature):
        # two calls in the same loop body repeat within one iteration,
        # calls under different loops never pair.
        groups: Dict[
            Tuple[Tuple[int, ...], str, Tuple[str, ...]],
            List[Tuple[Tuple[Tuple[int, int], ...], Site, int]],
        ] = {}
        for call in harvest.calls:
            if len(call.targets) != 1:
                continue
            target = call.targets[0]
            callee = self.project.functions.get(target)
            if callee is None:
                continue
            if self._is_repeat_candidate(target):
                sig_args = self._call_sig_args(call)
                groups.setdefault((call.loops, target, sig_args), []).append(
                    (call.branch, call.site, 1)
                )
            child = self._repeat_map(target)
            for (c_target, c_args), (c_count, _) in child.items():
                sub = self._substitute_args(c_args, call, callee)
                if any("::" in a for a in sub):
                    continue  # unbindable child-frame state: no merge
                groups.setdefault((call.loops, c_target, sub), []).append(
                    (call.branch, call.site, c_count)
                )
        propagated: Dict[Tuple[str, Tuple[str, ...]], Tuple[int, Site]] = {}
        for group_key in sorted(groups):
            loops, target, args = group_key
            occurrences = groups[group_key]
            # Max recomputations on any one execution path: occurrences
            # in mutually exclusive branch arms never run together.
            count = max(
                sum(
                    n
                    for other, _, n in occurrences
                    if self._compatible(branch, other)
                )
                for branch, _, _ in occurrences
            )
            site = min(
                (s for _, s, _ in occurrences),
                key=lambda s: (s.line, s.col),
            )
            sig = (target, args)
            if count >= 2 and sig not in self._repeat_reported:
                self._repeat_reported.add(sig)
                self.repeats.append(
                    RepeatHit(
                        site=site,
                        fn_key=key,
                        callee=target,
                        args=", ".join(args),
                        count=count,
                    )
                )
            if not loops:
                # A repeat already reported here propagates as a single
                # computation; callers pair it with their own calls.
                propagated[sig] = (1 if count >= 2 else count, site)
        if len(propagated) > _REPEAT_SIG_LIMIT:
            propagated = dict(
                sorted(propagated.items())[:_REPEAT_SIG_LIMIT]
            )
        self._repeat_maps[key] = propagated
        return propagated

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def _suppressed(self, rule_id: str, site: Site) -> bool:
        module = self.project.modules.get(site.module)
        return module is not None and module.suppressed(rule_id, site.line)

    def _hot_module_keys(self) -> Set[str]:
        keys: Set[str] = set()
        for fn in self.project.iter_functions():
            module = self.project.modules[fn.module]
            path = str(module.display_path).replace("\\", "/")
            if any(sub in path for sub in self.config.hot_path):
                keys.add(fn.key)
        return keys

    def run(self) -> "CostAnalysis":
        self._resolve_tables()
        self._pure = pure_analysis(self.project, self.config)
        for fn in self.project.iter_functions():
            module = self.project.modules[fn.module]
            scanner = FunctionScanner(self.graph, fn, module)
            for stmt in fn.node.body:
                scanner.visit(stmt)
            self._harvests[fn.key] = _CostScanner(
                self, fn, module, scanner
            ).scan()

        # RPL1001: closed cost vs declared budget.
        for key in sorted(self.budgets):
            budget = self.budgets[key]
            for term in self._cost_closure(key):
                if term.degree <= budget.allowed:
                    continue
                if self._suppressed("RPL1001", term.site):
                    continue
                self.budget_hits.append(BudgetHit(budget=budget, term=term))

        # RPL1002: local same-family products, project-wide.
        for fn_key in sorted(self._harvests):
            for site, vars, what in self._harvests[fn_key].quads:
                if self._suppressed("RPL1002", site):
                    continue
                self.quads.append(
                    QuadHit(site=site, fn_key=fn_key, vars=vars, what=what)
                )

        # RPL1003: N-sized allocations in the hot scope.
        self.hot_scope = self.graph.reachable_from(set(self.hot_entries))
        hot_keys: Dict[str, str] = {
            key: path[0] for key, path in self.hot_scope.items()
        }
        for key in self._hot_module_keys():
            hot_keys.setdefault(key, "")
        for fn_key in sorted(hot_keys):
            harvest = self._harvests.get(fn_key)
            if harvest is None:
                continue
            for site, bound, what in harvest.allocs:
                if self._suppressed("RPL1003", site):
                    continue
                self.allocs.append(
                    AllocHit(
                        site=site,
                        fn_key=fn_key,
                        bound=bound,
                        what=what,
                        entry=hot_keys[fn_key],
                    )
                )

        # RPL1004: repeated pure recomputation, reported at the frame
        # where the repetition first becomes provable, gated to the
        # budget registry — the functions whose per-event cost is a
        # declared invariant are the ones where recomputing a pure
        # answer is a reportable defect.
        for fn_key in sorted(self._harvests):
            self._repeat_map(fn_key)
        report_scope = set(self.budgets)
        self.repeats = [
            hit
            for hit in self.repeats
            if hit.fn_key in report_scope
            and not self._suppressed("RPL1004", hit.site)
        ]

        self.registry = [
            hit
            for hit in self.registry
            if not self._suppressed("RPL1005", hit.site)
        ]

        self.budget_hits.sort(
            key=lambda h: (
                h.budget.entry, h.term.vars, h.term.site.module,
                h.term.site.line,
            )
        )
        self.quads.sort(
            key=lambda q: (q.site.module, q.site.line, q.vars)
        )
        self.allocs.sort(
            key=lambda a: (a.site.module, a.site.line, a.what)
        )
        self.repeats.sort(
            key=lambda r: (r.site.module, r.site.line, r.callee, r.args)
        )
        self.registry.sort(key=lambda r: (r.table, r.entry, r.detail))
        return self

    @property
    def violation_count(self) -> int:
        return (
            len(self.budget_hits)
            + len(self.quads)
            + len(self.allocs)
            + len(self.repeats)
            + len(self.registry)
        )


# ----------------------------------------------------------------------
# Shared entry point for the rule module and the repro-cost CLI
# ----------------------------------------------------------------------
_COST_CACHE: Dict[Tuple[int, int], CostAnalysis] = {}
_CACHE_LIMIT = 8


def cost_analysis(project: Project, config: LintConfig) -> CostAnalysis:
    """Run (or reuse) the COST analysis for one project + config."""
    key = (id(project), hash(config))
    cached = _COST_CACHE.get(key)
    if cached is not None and cached.project is project:
        return cached
    if len(_COST_CACHE) >= _CACHE_LIMIT:
        _COST_CACHE.clear()
    analysis = CostAnalysis(project, shared_callgraph(project), config).run()
    _COST_CACHE[key] = analysis
    return analysis
