"""Incremental lint cache: replay a clean run when nothing changed.

Most of the rule families are *whole-program* analyses (call graph,
taint fixpoint, lock-order graph), so per-file result reuse would be
unsound: editing one file can create findings in another (a new lock
acquisition in a callee changes its callers' order edges).  The cache
is therefore all-or-nothing at invocation granularity — the stored
findings are replayed only when *every* input file's content hash, the
effective configuration, and the analysis package itself are
unchanged.  Any difference re-runs the full analysis.  That is exactly
the CI shape: repeated lint invocations over an unchanged tree (text
then JSON, full then ``--select FLOW``) pay for one analysis each.

The cache lives in ``.repro-lint-cache.json`` next to the invocation's
working directory by default (``--cache-file`` overrides,
``--no-cache`` bypasses), and is invalidated by:

* any input file appearing, disappearing, or changing content;
* any configuration change (including ``--select``/``--ignore``,
  which are merged into the config before keying) — nested tables like
  ``[tool.repro-lint.flow]`` and ``[tool.repro-lint.pure]`` are parsed
  into ``LintConfig`` fields before the digest is taken, so editing a
  purity-registry or probe-entrypoint entry invalidates cached PURE
  runs like any other config edit;
* any change to ``repro.analysis`` itself (rule logic edits must not
  replay stale verdicts).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .config import LintConfig
from .model import Finding

#: Bumped when the stored payload shape changes.
CACHE_SCHEMA = 1

#: Default cache file name, resolved against the current directory.
DEFAULT_CACHE_FILE = ".repro-lint-cache.json"

_TOOL_DIGEST: Optional[str] = None


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def tool_digest() -> str:
    """Content hash of the ``repro.analysis`` package sources.

    A rule-logic edit changes this digest, so a stale cache can never
    outlive the code that produced it.  Computed once per process.
    """
    global _TOOL_DIGEST
    if _TOOL_DIGEST is None:
        digest = hashlib.sha256()
        package_dir = Path(__file__).parent
        for path in sorted(package_dir.glob("*.py")):
            digest.update(path.name.encode("utf-8"))
            digest.update(path.read_bytes())
        _TOOL_DIGEST = digest.hexdigest()[:24]
    return _TOOL_DIGEST


def config_digest(config: LintConfig) -> str:
    """Hash of the effective configuration (frozen dataclass repr)."""
    return _sha256(repr(config).encode("utf-8"))[:24]


def file_digests(files: Sequence[Path]) -> Dict[str, str]:
    """Per-file content hashes, keyed by display path."""
    return {str(path): _sha256(path.read_bytes()) for path in files}


def cache_key(files: Sequence[Path], config: LintConfig) -> Dict[str, object]:
    return {
        "schema": CACHE_SCHEMA,
        "tool": tool_digest(),
        "config": config_digest(config),
        "files": file_digests(files),
    }


class LintCache:
    """One JSON cache file: a key plus the findings it vouches for."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)

    def lookup(self, key: Dict[str, object]) -> Optional[List[Finding]]:
        """The cached findings if ``key`` matches exactly, else ``None``."""
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(data, dict):
            return None
        for field in ("schema", "tool", "config", "files"):
            if data.get(field) != key[field]:
                return None
        findings = data.get("findings")
        if not isinstance(findings, list):
            return None
        try:
            return [Finding(**entry) for entry in findings]
        except TypeError:
            return None

    def store(
        self, key: Dict[str, object], findings: Sequence[Finding]
    ) -> None:
        """Persist ``findings`` under ``key`` (atomic best-effort)."""
        payload = dict(key)
        payload["findings"] = [asdict(finding) for finding in findings]
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            tmp.write_text(
                json.dumps(payload, sort_keys=True), encoding="utf-8"
            )
            os.replace(tmp, self.path)
        except OSError:
            # A read-only tree must not fail the lint run; the cache is
            # an optimisation only.
            try:
                tmp.unlink()
            except OSError:
                pass
