"""Contract-presence rules (RPL3xx).

The partition invariants (every resource column sums to capacity, every
job holds >= 1 unit, units are integers — Eqs. 5-6) are enforced at
runtime by the decorators in :mod:`repro.resources.contracts`.  These
rules close the loop statically: every function whose outputs cross a
contract boundary must actually carry its decorator, so a new policy or
constructor cannot silently opt out.
"""

from __future__ import annotations

from typing import Iterator, Optional, Set

from .config import LintConfig
from .model import CONTRACTS, Finding, Rule, register
from .project import ClassInfo, FunctionInfo, Project


def _is_abstract(fn: FunctionInfo) -> bool:
    return any(
        name in ("abstractmethod", "abstractproperty")
        for name in fn.decorator_names()
    )


def _inherits_from(
    project: Project, cls: ClassInfo, base_names: Set[str], _seen=None
) -> bool:
    seen = _seen if _seen is not None else set()
    if cls.key in seen:
        return False
    seen.add(cls.key)
    for base in cls.base_names:
        if base in base_names:
            return True
        for parent in project.classes_by_name.get(base, ()):
            if _inherits_from(project, parent, base_names, seen):
                return True
    return False


class _DecoratorPresenceRule(Rule):
    """Shared machinery: method M of matching classes needs decorator D."""

    required_decorator: str = ""

    def _missing(
        self, fn: FunctionInfo, what: str
    ) -> Optional[str]:
        if _is_abstract(fn):
            return None
        if self.required_decorator in fn.decorator_names():
            return None
        return (
            f"{what} must be decorated with @{self.required_decorator} "
            "so its output is checked against the partition contracts"
        )


@register
class PlacementMissingContract(_DecoratorPresenceRule):
    rule_id = "RPL301"
    name = "placement-missing-contract"
    family = CONTRACTS
    description = (
        "A cluster placement policy's place() lacks @placement_contract: "
        "its PlacementOutcome (node indices, rejected set, machine "
        "count) would go unchecked."
    )
    autofix_hint = (
        "Decorate place() with "
        "repro.resources.contracts.placement_contract."
    )
    required_decorator = "placement_contract"

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        bases = set(config.placement_bases)
        for cls in project.iter_classes():
            if cls.name in bases or not _inherits_from(project, cls, bases):
                continue
            method = cls.methods.get("place")
            if method is None:
                continue
            message = self._missing(method, f"{cls.name}.place")
            if message is not None:
                yield self.finding(project, cls.module, method.node, message)


@register
class ProposeMissingContract(_DecoratorPresenceRule):
    rule_id = "RPL302"
    name = "propose-missing-contract"
    family = CONTRACTS
    description = (
        "An acquisition optimizer's propose()/propose_exploit() lacks "
        "@proposal_contract: proposed candidate partitions would not be "
        "validated against Eqs. 5-6 before being observed."
    )
    autofix_hint = (
        "Decorate the propose method with "
        "repro.resources.contracts.proposal_contract."
    )
    required_decorator = "proposal_contract"

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        targets = set(config.optimizer_classes)
        for cls in project.iter_classes():
            if cls.name not in targets:
                continue
            for method_name in ("propose", "propose_exploit"):
                method = cls.methods.get(method_name)
                if method is None:
                    continue
                message = self._missing(method, f"{cls.name}.{method_name}")
                if message is not None:
                    yield self.finding(
                        project, cls.module, method.node, message
                    )


@register
class PolicyMissingContract(_DecoratorPresenceRule):
    rule_id = "RPL303"
    name = "policy-missing-contract"
    family = CONTRACTS
    description = (
        "A scheduling policy's partition() lacks @policy_contract: the "
        "partition it reports best could violate Eqs. 5-6 or "
        "misreport QoS."
    )
    autofix_hint = (
        "Decorate partition() with "
        "repro.resources.contracts.policy_contract."
    )
    required_decorator = "policy_contract"

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        bases = set(config.policy_bases)
        for cls in project.iter_classes():
            if cls.name in bases or not _inherits_from(project, cls, bases):
                continue
            method = cls.methods.get("partition")
            if method is None:
                continue
            message = self._missing(method, f"{cls.name}.partition")
            if message is not None:
                yield self.finding(project, cls.module, method.node, message)


@register
class ConstructorMissingContract(_DecoratorPresenceRule):
    rule_id = "RPL304"
    name = "constructor-missing-contract"
    family = CONTRACTS
    description = (
        "A configured partition constructor lacks @partition_contract: "
        "partitions it fabricates (equal split, random draws, cube "
        "projections) would enter the search unchecked."
    )
    autofix_hint = (
        "Decorate the constructor with "
        "repro.resources.contracts.partition_contract."
    )
    required_decorator = "partition_contract"

    def check(self, project: Project, config: LintConfig) -> Iterator[Finding]:
        for dotted in config.partition_constructors:
            class_name, _, method_name = dotted.rpartition(".")
            found = False
            if class_name:
                for cls in project.classes_by_name.get(class_name, ()):
                    method = cls.methods.get(method_name)
                    if method is None:
                        continue
                    found = True
                    message = self._missing(method, dotted)
                    if message is not None:
                        yield self.finding(
                            project, cls.module, method.node, message
                        )
            else:
                for module in project.modules.values():
                    fn = module.functions.get(method_name)
                    if fn is None:
                        continue
                    found = True
                    message = self._missing(fn, dotted)
                    if message is not None:
                        yield self.finding(
                            project, module.name, fn.node, message
                        )
            # A configured constructor that does not exist is itself a
            # finding: the contract list has drifted from the code.
            if not found and project.modules:
                first = next(iter(project.modules.values()))
                yield Finding(
                    rule_id=self.rule_id,
                    path=str(first.display_path),
                    line=1,
                    col=0,
                    message=(
                        f"configured partition constructor {dotted!r} was "
                        "not found in the linted sources"
                    ),
                    hint=(
                        "Update [tool.repro-lint] partition_constructors "
                        "to match the code."
                    ),
                )
