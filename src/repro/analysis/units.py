"""Units-and-bounds abstract interpretation (UNITS family, RPL7xx).

CLITE's control loop mixes quantities whose units are mutually
incompatible: discrete resource units (cores, LLC ways, membw slices;
Eqs. 5-6), normalized unit-cube coordinates in [0, 1], latencies in
*both* seconds and milliseconds, per-second rates, and dimensionless
fractions.  The runtime contracts from PR 2 only catch the subset a
test happens to execute; this pass closes the class statically.

Every expression is assigned an abstract value — a unit *domain*
(``Cores``, ``CacheWays``, ``MembwUnits``, ``UnitCube``, ``Seconds``,
``Millis``, ``Rate``, ``Fraction``, ``Dimensionless``, or ⊤ for
unknown) plus a numeric interval — seeded from the quantity aliases in
:mod:`repro.core.units` (read off real annotations) and the
``[tool.repro-lint.units]`` registry, then propagated
interprocedurally over the PR-4 call graph to a fixpoint (function
returns, instance fields, module globals), exactly like the RPL6xx
taint pass.  A final reporting pass collects typed hits for the rules
in :mod:`.rules_units`:

* cross-domain arithmetic and mis-domained call/return/annotation
  boundaries (RPL701),
* provable unit-cube range escapes at ``from_unit_cube*``-style
  ``UnitCube`` parameters (RPL702),
* partition literals that provably violate the Eq. 5 floor or the
  Eq. 6 capacity sums (RPL703),
* comparisons mixing ``Seconds`` with ``Millis`` (RPL704).

The interpreter understands the two sanctioned conversion idioms — an
explicit :func:`repro.core.units.to_seconds` / ``to_millis`` call, or
multiplying/dividing by a literal 1000 — so ``total_s * 1000.0``
correctly *becomes* ``Millis`` instead of flagging.  Everything is
conservative: ⊤ and scalar (``Dimensionless``/``Fraction``) operands
never flag, intervals only prove an escape when both the offending
bound and the evidence are finite, so the pass only reports flows it
can actually justify.
"""

from __future__ import annotations

import ast
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .callgraph import CallGraph, FunctionScanner, _annotation_class
from .config import LintConfig
from .dataflow import shared_callgraph
from .project import FunctionInfo, ModuleInfo, Project

INF = math.inf

# ----------------------------------------------------------------------
# The unit-domain lattice
# ----------------------------------------------------------------------
CORES = "Cores"
CACHE_WAYS = "CacheWays"
MEMBW_UNITS = "MembwUnits"
UNIT_CUBE = "UnitCube"
SECONDS = "Seconds"
MILLIS = "Millis"
RATE = "Rate"
FRACTION = "Fraction"
DIMENSIONLESS = "Dimensionless"
TOP = "?"  # unknown domain: never participates in a finding

DOMAINS = frozenset(
    {
        CORES,
        CACHE_WAYS,
        MEMBW_UNITS,
        UNIT_CUBE,
        SECONDS,
        MILLIS,
        RATE,
        FRACTION,
        DIMENSIONLESS,
    }
)

#: Domains that act as pure scalars under arithmetic: combining them
#: with a unit-bearing value preserves the unit and never flags.
_SCALARS = frozenset({DIMENSIONLESS, FRACTION})

#: The two time domains; mixing them is RPL701 (arithmetic) / RPL704
#: (comparison) unless converted through to_seconds/to_millis or a
#: literal 1000 factor.
_TIME = frozenset({SECONDS, MILLIS})

#: Default interval each domain guarantees at a trusted boundary
#: (annotated parameter / registry entry), mirroring the runtime
#: contracts: allocations are >= 1 unit (Eq. 5), cube coordinates and
#: fractions live in [0, 1], times and rates are non-negative.
_DOMAIN_RANGES: Dict[str, Tuple[float, float]] = {
    CORES: (1.0, INF),
    CACHE_WAYS: (1.0, INF),
    MEMBW_UNITS: (1.0, INF),
    UNIT_CUBE: (0.0, 1.0),
    FRACTION: (0.0, 1.0),
    SECONDS: (0.0, INF),
    MILLIS: (0.0, INF),
    RATE: (0.0, INF),
    DIMENSIONLESS: (-INF, INF),
}

MS_PER_S = 1000.0

#: Dotted constants the interpreter knows exactly.
_DOTTED_CONSTS: Dict[str, Tuple[float, float]] = {
    "math.inf": (INF, INF),
    "numpy.inf": (INF, INF),
    "math.pi": (math.pi, math.pi),
    "numpy.pi": (math.pi, math.pi),
    "math.e": (math.e, math.e),
    "math.tau": (math.tau, math.tau),
}


@dataclass(frozen=True)
class UnitValue:
    """Abstract value: a unit domain plus a numeric interval."""

    domain: str
    lo: float = -INF
    hi: float = INF

    @property
    def is_top(self) -> bool:
        return self.domain == TOP

    @property
    def is_scalar(self) -> bool:
        return self.domain in _SCALARS

    @property
    def is_unit(self) -> bool:
        """Concrete, unit-bearing (flaggable) domain."""
        return self.domain in DOMAINS and self.domain not in _SCALARS

    @property
    def is_constant(self) -> bool:
        return self.lo == self.hi and math.isfinite(self.lo)


UNKNOWN = UnitValue(TOP)


def from_domain(domain: str) -> UnitValue:
    lo, hi = _DOMAIN_RANGES.get(domain, (-INF, INF))
    return UnitValue(domain, lo, hi)


def join(a: UnitValue, b: UnitValue) -> UnitValue:
    """Least upper bound: interval hull + domain merge.

    A plain ``Dimensionless`` constant merging with a unit-bearing
    value keeps the unit (``x = 0.0`` on one branch, ``x = window_s``
    on the other); two *different* unit-bearing domains merge to ⊤.
    """
    lo, hi = min(a.lo, b.lo), max(a.hi, b.hi)
    if a.domain == b.domain:
        domain = a.domain
    elif a.is_top or b.is_top:
        domain = TOP
    elif a.domain == DIMENSIONLESS:
        domain = b.domain
    elif b.domain == DIMENSIONLESS:
        domain = a.domain
    else:
        domain = TOP
    return UnitValue(domain, lo, hi)


# ----------------------------------------------------------------------
# Interval arithmetic (nan-safe: indeterminate forms widen to the line)
# ----------------------------------------------------------------------
def _sane(lo: float, hi: float) -> Tuple[float, float]:
    if math.isnan(lo):
        lo = -INF
    if math.isnan(hi):
        hi = INF
    if lo > hi:
        return (-INF, INF)
    return (lo, hi)


def _iv_add(a: UnitValue, b: UnitValue) -> Tuple[float, float]:
    return _sane(a.lo + b.lo, a.hi + b.hi)


def _iv_sub(a: UnitValue, b: UnitValue) -> Tuple[float, float]:
    return _sane(a.lo - b.hi, a.hi - b.lo)


def _prod(x: float, y: float) -> float:
    if x == 0.0 or y == 0.0:
        return 0.0  # interval-arithmetic convention: 0 * inf == 0
    return x * y


def _iv_mul(a: UnitValue, b: UnitValue) -> Tuple[float, float]:
    products = [
        _prod(a.lo, b.lo),
        _prod(a.lo, b.hi),
        _prod(a.hi, b.lo),
        _prod(a.hi, b.hi),
    ]
    if any(math.isnan(p) for p in products):
        return (-INF, INF)
    return _sane(min(products), max(products))


def _iv_div(a: UnitValue, b: UnitValue) -> Tuple[float, float]:
    if b.lo <= 0.0 <= b.hi:
        return (-INF, INF)
    quotients = []
    for x in (a.lo, a.hi):
        for y in (b.lo, b.hi):
            if x == 0.0:
                quotients.append(0.0)
                continue
            q = x / y
            if math.isnan(q):
                return (-INF, INF)
            quotients.append(q)
    return _sane(min(quotients), max(quotients))


def _iv_scale(v: UnitValue, factor: float) -> Tuple[float, float]:
    lo, hi = _prod(v.lo, factor), _prod(v.hi, factor)
    if factor < 0:
        lo, hi = hi, lo
    return _sane(lo, hi)


def _const_factor(v: UnitValue) -> Optional[float]:
    """The exact value of a dimensionless constant, else ``None``."""
    if v.domain == DIMENSIONLESS and v.is_constant:
        return v.lo
    return None


def _time_scale(domain: str, factor: float) -> Optional[str]:
    """Time domain produced by multiplying ``domain`` by ``factor``."""
    if domain == SECONDS and factor == MS_PER_S:
        return MILLIS
    if domain == MILLIS and abs(factor - 1.0 / MS_PER_S) < 1e-15:
        return SECONDS
    return None


# ----------------------------------------------------------------------
# Registry + hits
# ----------------------------------------------------------------------
def parse_registry(config: LintConfig) -> Dict[Tuple[str, str], str]:
    """``"Qualname.param=Domain"`` entries -> {(qualname, part): domain}.

    ``part`` is a parameter name or the literal ``"return"``.  Entries
    naming an unknown domain are skipped (the analysis must stay
    conservative, never crash on config).
    """
    table: Dict[Tuple[str, str], str] = {}
    for entry in config.units:
        key, sep, domain = entry.rpartition("=")
        if not sep or domain.strip() not in DOMAINS:
            continue
        qualname, dot, part = key.strip().rpartition(".")
        if not dot or not qualname or not part:
            continue
        table[(qualname, part)] = domain.strip()
    return table


def parse_capacities(config: LintConfig) -> Tuple[float, ...]:
    """``"name=value"`` column capacities, in configured order."""
    out: List[float] = []
    for entry in config.units_capacities:
        _, sep, value = entry.rpartition("=")
        if not sep:
            continue
        try:
            out.append(float(value))
        except ValueError:
            continue
    return tuple(out)


def in_units_scope(config: LintConfig, display_path: str) -> bool:
    """Whether a module is inside the configured partition-math scope."""
    return any(prefix in display_path for prefix in config.units_modules)


def admits_partition(
    cells: Sequence[Sequence[Tuple[float, float]]],
    capacities: Sequence[float] = (),
) -> Tuple[bool, str]:
    """Whether an interval matrix *may* be a valid partition.

    ``cells`` holds one ``(lo, hi)`` interval per matrix entry (exact
    values are degenerate intervals).  Returns ``(False, reason)`` only
    on a *proven* violation — an entry provably below the Eq. 5 floor
    of one unit, or a column whose interval sum provably misses the
    Eq. 6 capacity — so every partition the runtime contracts accept
    is admitted here.
    """
    for i, row in enumerate(cells):
        for j, (_, hi) in enumerate(row):
            if hi < 1.0:
                return False, (
                    f"entry ({i}, {j}) is provably below the Eq. 5 floor "
                    f"of 1 unit (at most {hi:g})"
                )
    if capacities and cells and len(capacities) == len(cells[0]):
        for j, cap in enumerate(capacities):
            lo = sum(row[j][0] for row in cells)
            hi = sum(row[j][1] for row in cells)
            if cap < lo or cap > hi:
                return False, (
                    f"column {j} sums to [{lo:g}, {hi:g}] units but the "
                    f"configured capacity is {cap:g} (Eq. 6)"
                )
    return True, ""


#: Hit kinds consumed by the RPL7xx rules.
CROSS = "cross"        # RPL701
CUBE = "cube"          # RPL702
CAPACITY = "capacity"  # RPL703
TIME_COMPARE = "time"  # RPL704


@dataclass(frozen=True)
class UnitHit:
    """One proven unit/bounds violation at a source location."""

    kind: str
    module: str
    line: int
    col: int
    message: str


# ----------------------------------------------------------------------
# Per-function abstract interpreter
# ----------------------------------------------------------------------
class _UnitsFlow:
    """Interprets one function (or module) body over the unit lattice."""

    def __init__(
        self,
        analysis: "UnitsAnalysis",
        fn: Optional[FunctionInfo],
        module: ModuleInfo,
        report: bool,
    ) -> None:
        self.analysis = analysis
        self.fn = fn
        self.module = module
        self.report = report
        self.scanner = FunctionScanner(analysis.graph, fn, module)
        body = fn.node.body if fn is not None else module.tree.body
        for stmt in body:
            if fn is None and isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            self.scanner.visit(stmt)
        self.env: Dict[str, UnitValue] = {}
        if fn is not None:
            self._seed_params(fn)

    def _seed_params(self, fn: FunctionInfo) -> None:
        """Parameters are trusted at their own boundary: a ``Millis``
        parameter is checked at every *call site*, so inside the
        function it carries its declared domain (same philosophy as
        the RPL6xx ``_seed_params``)."""
        args = fn.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            domain = self.analysis.param_domain(fn, arg.arg)
            if domain is not None:
                self.env[arg.arg] = from_domain(domain)

    # -- hit recording ---------------------------------------------------
    def _hit(self, kind: str, node: ast.AST, message: str) -> None:
        if not self.report:
            return
        self.analysis.hits.add(
            UnitHit(
                kind=kind,
                module=self.module.name,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    @staticmethod
    def _incompatible(a: UnitValue, b: UnitValue) -> bool:
        return a.is_unit and b.is_unit and a.domain != b.domain

    # -- expression evaluation ------------------------------------------
    def eval(self, node: Optional[ast.AST]) -> UnitValue:
        if node is None:
            return UNKNOWN
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            return self._global_value(node.id)
        if isinstance(node, ast.Constant):
            value = node.value
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                return UNKNOWN
            return UnitValue(DIMENSIONLESS, float(value), float(value))
        if isinstance(node, ast.UnaryOp):
            inner = self.eval(node.operand)
            if isinstance(node.op, ast.USub):
                return UnitValue(inner.domain, *_sane(-inner.hi, -inner.lo))
            if isinstance(node.op, ast.UAdd):
                return inner
            if isinstance(node.op, ast.Not):
                return UnitValue(DIMENSIONLESS, 0.0, 1.0)
            return UNKNOWN
        if isinstance(node, ast.BinOp):
            return self._combine(
                node.op, self.eval(node.left), self.eval(node.right), node
            )
        if isinstance(node, ast.Compare):
            return self._compare(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Subscript):
            # Arrays/sequences are summarized by their element value, so
            # an element read keeps the container's domain.
            self.eval(node.slice)
            return self.eval(node.value)
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return join(self.eval(node.body), self.eval(node.orelse))
        if isinstance(node, ast.BoolOp):
            out: Optional[UnitValue] = None
            for value_node in node.values:
                value = self.eval(value_node)
                out = value if out is None else join(out, value)
            return out if out is not None else UNKNOWN
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for element in node.elts:
                self.eval(element)
            return UNKNOWN
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self.eval(key)
            for value_node in node.values:
                self.eval(value_node)
            return UNKNOWN
        if isinstance(node, ast.Starred):
            self.eval(node.value)
            return UNKNOWN
        if isinstance(node, ast.Await):
            return self.eval(node.value)
        if isinstance(node, ast.NamedExpr):
            value = self.eval(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = value
            return value
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for generator in node.generators:
                self.eval(generator.iter)
            # The element expression may reference comprehension-local
            # names; evaluate it for checks with those names unknown.
            self.eval(node.elt)
            return UNKNOWN
        return UNKNOWN

    # -- arithmetic ------------------------------------------------------
    def _combine(
        self, op: ast.operator, a: UnitValue, b: UnitValue, node: ast.AST
    ) -> UnitValue:
        if isinstance(op, (ast.Add, ast.Sub)):
            if self._incompatible(a, b):
                verb = "+" if isinstance(op, ast.Add) else "-"
                self._hit(
                    CROSS,
                    node,
                    f"cross-domain arithmetic: {a.domain} {verb} {b.domain}",
                )
            interval = _iv_add(a, b) if isinstance(op, ast.Add) else _iv_sub(a, b)
            return UnitValue(self._additive_domain(a, b), *interval)
        if isinstance(op, ast.Mult):
            return self._multiply(a, b)
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            return self._divide(a, b)
        if isinstance(op, ast.Mod):
            if b.is_scalar or b.is_top:
                return UnitValue(a.domain, -INF, INF)
            return UNKNOWN
        return UNKNOWN

    @staticmethod
    def _additive_domain(a: UnitValue, b: UnitValue) -> str:
        if a.domain == b.domain:
            return a.domain
        if a.is_top or b.is_top:
            return TOP
        if a.is_scalar:
            return b.domain
        if b.is_scalar:
            return a.domain
        return TOP

    def _multiply(self, a: UnitValue, b: UnitValue) -> UnitValue:
        interval = _iv_mul(a, b)
        factor_b = _const_factor(b)
        if a.domain in _TIME and factor_b is not None:
            converted = _time_scale(a.domain, factor_b)
            if converted is not None:
                return UnitValue(converted, *interval)
        factor_a = _const_factor(a)
        if b.domain in _TIME and factor_a is not None:
            converted = _time_scale(b.domain, factor_a)
            if converted is not None:
                return UnitValue(converted, *interval)
        if {a.domain, b.domain} == {RATE, SECONDS}:
            return UnitValue(DIMENSIONLESS, *interval)  # qps * s = count
        if a.domain == b.domain == FRACTION:
            return UnitValue(FRACTION, *interval)
        if a.domain == b.domain == DIMENSIONLESS:
            return UnitValue(DIMENSIONLESS, *interval)
        if a.is_scalar and not b.is_top:
            return UnitValue(b.domain, *interval)
        if b.is_scalar and not a.is_top:
            return UnitValue(a.domain, *interval)
        return UnitValue(TOP, *interval)

    def _divide(self, a: UnitValue, b: UnitValue) -> UnitValue:
        interval = _iv_div(a, b)
        factor_b = _const_factor(b)
        if a.domain in _TIME and factor_b is not None and factor_b != 0.0:
            converted = _time_scale(a.domain, 1.0 / factor_b)
            if converted is not None:
                return UnitValue(converted, *interval)
        if a.domain == b.domain and a.is_unit:
            return UnitValue(DIMENSIONLESS, *interval)  # ratio
        if a.domain == b.domain and a.domain in _SCALARS:
            return UnitValue(DIMENSIONLESS, *interval)
        if a.is_scalar and b.domain == RATE:
            return UnitValue(SECONDS, *interval)  # 1 / qps = seconds
        if a.is_scalar and b.domain == SECONDS:
            return UnitValue(RATE, *interval)  # count / s = rate
        if b.is_scalar and not a.is_top:
            return UnitValue(a.domain, *interval)
        return UnitValue(TOP, *interval)

    def _compare(self, node: ast.Compare) -> UnitValue:
        operands = [self.eval(node.left)]
        for comparator in node.comparators:
            operands.append(self.eval(comparator))
        for op, a, b in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.Is, ast.IsNot, ast.In, ast.NotIn)):
                continue
            if {a.domain, b.domain} == _TIME:
                self._hit(
                    TIME_COMPARE,
                    node,
                    "comparison mixes Seconds with Millis without an "
                    "explicit to_seconds()/to_millis() conversion",
                )
            elif self._incompatible(a, b):
                self._hit(
                    CROSS,
                    node,
                    f"cross-domain comparison: {a.domain} vs {b.domain}",
                )
        return UnitValue(DIMENSIONLESS, 0.0, 1.0)

    # -- names, globals, attributes -------------------------------------
    def _global_value(self, name: str) -> UnitValue:
        dotted = self.module.imports.get(name, name)
        found = self.analysis.lookup_global(self.module.name, dotted)
        return found if found is not None else UNKNOWN

    def _eval_attribute(self, node: ast.Attribute) -> UnitValue:
        receiver: Optional[str] = None
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self.fn is not None
            and self.fn.class_name is not None
        ):
            receiver = self.fn.class_name
        else:
            receiver = self.scanner._value_type(node.value)
        if receiver is not None:
            found = self.analysis.lookup_field(receiver, node.attr)
            if found is not None:
                return found
            prop = self.analysis.property_domain(receiver, node.attr)
            if prop is not None:
                return from_domain(prop)
        dotted = self.module.resolve(node)
        if dotted is not None:
            const = _DOTTED_CONSTS.get(dotted)
            if const is not None:
                return UnitValue(DIMENSIONLESS, *const)
            found = self.analysis.lookup_global(self.module.name, dotted)
            if found is not None:
                return found
        return UNKNOWN

    # -- calls -----------------------------------------------------------
    def _eval_call(self, node: ast.Call) -> UnitValue:
        func = node.func
        dotted = (
            self.module.resolve(func)
            if isinstance(func, (ast.Name, ast.Attribute))
            else None
        )
        simple = (
            dotted.split(".")[-1]
            if dotted
            else (func.attr if isinstance(func, ast.Attribute) else None)
        )
        # Evaluate every argument once so expression-level checks fire
        # even inside calls the graph cannot resolve.
        for arg in node.args:
            self.eval(arg)
        for keyword in node.keywords:
            self.eval(keyword.value)
        self._check_partition_literal(node, simple)
        self._check_call_args(node)
        return self._call_result(node, func, simple)

    def _call_result(
        self, node: ast.Call, func: ast.AST, simple: Optional[str]
    ) -> UnitValue:
        if simple == "to_seconds" and node.args:
            inner = self.eval(node.args[0])
            return UnitValue(SECONDS, *_iv_scale(inner, 1.0 / MS_PER_S))
        if simple == "to_millis" and node.args:
            inner = self.eval(node.args[0])
            return UnitValue(MILLIS, *_iv_scale(inner, MS_PER_S))
        if simple == "clip":
            clipped = self._model_clip(node, func)
            if clipped is not None:
                return clipped
        if (
            simple in ("min", "max")
            and isinstance(func, ast.Name)
            and len(node.args) >= 2
        ):
            return self._model_minmax(node, simple)
        if simple == "abs" and len(node.args) == 1:
            inner = self.eval(node.args[0])
            lo, hi = inner.lo, inner.hi
            if lo >= 0.0:
                return inner
            bound = max(abs(lo), abs(hi))
            return UnitValue(inner.domain, 0.0 if hi >= 0.0 else abs(hi), bound)
        if simple in ("float", "int") and len(node.args) == 1:
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                text = arg.value.strip().lower()
                if text in ("inf", "infinity", "+inf"):
                    return UnitValue(DIMENSIONLESS, INF, INF)
                if text in ("-inf", "-infinity"):
                    return UnitValue(DIMENSIONLESS, -INF, -INF)
                return UNKNOWN
            return self.eval(arg)
        if simple == "len":
            return UnitValue(DIMENSIONLESS, 0.0, INF)
        # Project function/method: declared (registry/annotation) return
        # domain first, else the fixpoint summary of its return values.
        out: Optional[UnitValue] = None
        for key in self.scanner._resolve_call_targets(node):
            callee = self.analysis.project.functions.get(key)
            if callee is None or callee.simple_name == "__init__":
                continue
            value = self.analysis.function_return(callee)
            out = value if out is None else join(out, value)
        return out if out is not None else UNKNOWN

    def _model_clip(
        self, node: ast.Call, func: ast.AST
    ) -> Optional[UnitValue]:
        """``np.clip(x, lo, hi)`` / ``x.clip(lo, hi)`` with constant
        bounds clamps the interval — the sanctioned way to stay inside
        the unit cube."""
        if len(node.args) >= 3:
            value_node, bounds = node.args[0], node.args[1:3]
        elif len(node.args) == 2 and isinstance(func, ast.Attribute):
            value_node, bounds = func.value, node.args[0:2]
        else:
            return None
        los = self.eval(bounds[0])
        his = self.eval(bounds[1])
        if not (los.is_constant and his.is_constant):
            return None
        value = self.eval(value_node)
        lo = min(max(value.lo, los.lo), his.lo)
        hi = min(max(value.hi, los.lo), his.lo)
        return UnitValue(value.domain, *_sane(lo, hi))

    def _model_minmax(self, node: ast.Call, which: str) -> UnitValue:
        values = [self.eval(arg) for arg in node.args]
        out = values[0]
        for value in values[1:]:
            merged = join(out, value)
            if which == "min":
                interval = _sane(min(out.lo, value.lo), min(out.hi, value.hi))
            else:
                interval = _sane(max(out.lo, value.lo), max(out.hi, value.hi))
            out = UnitValue(merged.domain, *interval)
        return out

    def _bound_args(
        self, node: ast.Call, callee: FunctionInfo
    ) -> List[Tuple[str, ast.AST]]:
        args_spec = callee.node.args
        names = [a.arg for a in (*args_spec.posonlyargs, *args_spec.args)]
        if names and names[0] in ("self", "cls"):
            names = names[1:]
        bound: List[Tuple[str, ast.AST]] = []
        for i, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                break
            if i < len(names):
                bound.append((names[i], arg))
        kw_names = {a.arg for a in args_spec.kwonlyargs} | set(names)
        for keyword in node.keywords:
            if keyword.arg is not None and keyword.arg in kw_names:
                bound.append((keyword.arg, keyword.value))
        return bound

    def _check_call_args(self, node: ast.Call) -> None:
        for key in self.scanner._resolve_call_targets(node):
            callee = self.analysis.project.functions.get(key)
            if callee is None:
                continue
            for param, expr in self._bound_args(node, callee):
                declared = self.analysis.param_domain(callee, param)
                if declared is None:
                    continue
                value = self.eval(expr)
                if declared == UNIT_CUBE:
                    self._check_cube_escape(node, expr, callee, param, value)
                if value.is_unit and value.domain != declared:
                    self._hit(
                        CROSS,
                        expr,
                        f"{value.domain} value bound to {declared} "
                        f"parameter {param!r} of {callee.qualname}()",
                    )

    def _check_cube_escape(
        self,
        node: ast.Call,
        expr: ast.AST,
        callee: FunctionInfo,
        param: str,
        value: UnitValue,
    ) -> None:
        """Finite interval evidence that a cube-bound value can leave
        [0, 1].  Unknown (infinite) bounds never flag."""
        above = value.hi > 1.0 and not math.isinf(value.hi)
        below = value.lo < 0.0 and not math.isinf(value.lo)
        if not (above or below):
            return
        span = f"[{value.lo:g}, {value.hi:g}]"
        self._hit(
            CUBE,
            expr,
            f"value in {span} can leave the unit cube [0, 1] but binds "
            f"UnitCube parameter {param!r} of {callee.qualname}() — clip "
            f"or renormalize first",
        )

    def _check_partition_literal(
        self, node: ast.Call, simple: Optional[str]
    ) -> None:
        """Eq. 5/6 check of literal matrices at partition constructors
        (``Configuration.from_matrix([[...]])`` / ``Configuration([[...]])``)."""
        if simple not in ("from_matrix", "Configuration"):
            return
        if not node.args:
            return
        matrix = node.args[0]
        if not isinstance(matrix, (ast.List, ast.Tuple)):
            return
        rows = matrix.elts
        if not rows or not all(
            isinstance(row, (ast.List, ast.Tuple)) and row.elts for row in rows
        ):
            return
        widths = {len(row.elts) for row in rows}  # type: ignore[union-attr]
        if len(widths) != 1:
            return
        cells = [
            [
                (value.lo, value.hi)
                for value in (self.eval(element) for element in row.elts)
            ]
            for row in rows
            if isinstance(row, (ast.List, ast.Tuple))
        ]
        ok, reason = admits_partition(cells, self.analysis.capacities)
        if not ok:
            self._hit(
                CAPACITY, node, f"partition literal cannot be valid: {reason}"
            )

    # -- statement walk --------------------------------------------------
    def run(self) -> None:
        body = (
            self.fn.node.body if self.fn is not None else self.module.tree.body
        )
        self.walk(body)

    def walk(self, stmts: Iterable[ast.stmt]) -> None:
        for stmt in stmts:
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value)
            for target in stmt.targets:
                self._assign_target(target, stmt.value, value)
        elif isinstance(stmt, ast.AnnAssign):
            self._ann_assign(stmt)
        elif isinstance(stmt, ast.AugAssign):
            current = self.eval(stmt.target)
            new = self._combine(
                stmt.op, current, self.eval(stmt.value), stmt
            )
            self._assign_target(stmt.target, stmt.value, new)
        elif isinstance(stmt, ast.Return):
            value = self.eval(stmt.value)
            if self.fn is not None:
                self._check_return(stmt, value)
                if value != UNKNOWN:
                    self.analysis.merge_return(self.fn.key, value)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test)
            before = dict(self.env)
            self.walk(stmt.body)
            after_body = self.env
            self.env = dict(before)
            self.walk(stmt.orelse)
            merged: Dict[str, UnitValue] = {}
            for name in set(after_body) | set(self.env):
                merged[name] = join(
                    after_body.get(name, UNKNOWN), self.env.get(name, UNKNOWN)
                )
            self.env = merged
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_value = self.eval(stmt.iter)
            self._assign_target(stmt.target, stmt.iter, iter_value)
            self.walk(stmt.body)
            self.walk(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test)
            self.walk(stmt.body)
            self.walk(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self.eval(item.context_expr)
                if isinstance(item.optional_vars, ast.Name):
                    self.env[item.optional_vars.id] = value
            self.walk(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.walk(stmt.body)
            for handler in stmt.handlers:
                self.walk(handler.body)
            self.walk(stmt.orelse)
            self.walk(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if self.fn is not None:
                # Nested def: approximate as inline, like the call graph.
                self.walk(stmt.body)
        elif isinstance(stmt, ast.ClassDef):
            pass
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child)

    def _ann_assign(self, stmt: ast.AnnAssign) -> None:
        declared = _annotation_class(stmt.annotation)
        value = self.eval(stmt.value) if stmt.value is not None else None
        if declared in DOMAINS:
            if (
                value is not None
                and value.is_unit
                and value.domain != declared
            ):
                self._hit(
                    CROSS,
                    stmt,
                    f"{value.domain} value assigned to a name annotated "
                    f"{declared}",
                )
            if value is not None and not value.is_top:
                out = UnitValue(declared, value.lo, value.hi)
            else:
                out = from_domain(declared)
        else:
            out = value if value is not None else UNKNOWN
        if stmt.value is not None or declared in DOMAINS:
            self._assign_target(stmt.target, stmt.value, out)

    def _check_return(self, stmt: ast.Return, value: UnitValue) -> None:
        if self.fn is None:
            return
        declared = self.analysis.declared_return(self.fn)
        if declared is None or declared in _SCALARS:
            return
        if value.is_unit and value.domain != declared:
            self._hit(
                CROSS,
                stmt,
                f"{self.fn.qualname}() is declared to return {declared} "
                f"but this path returns {value.domain}",
            )

    def _assign_target(
        self, target: ast.AST, value_node: Optional[ast.AST], value: UnitValue
    ) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value  # strong update
            if self.fn is None and value != UNKNOWN:
                self.analysis.merge_global(
                    self.module.name, target.id, value
                )
        elif isinstance(target, ast.Attribute):
            receiver: Optional[str] = None
            if (
                isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and self.fn is not None
            ):
                receiver = self.fn.class_name
            else:
                receiver = self.scanner._value_type(target.value)
            if receiver is None:
                return
            annotated = self.analysis.graph.attr_type(receiver, target.attr)
            if (
                annotated in DOMAINS
                and annotated not in _SCALARS
                and value.is_unit
                and value.domain != annotated
            ):
                self._hit(
                    CROSS,
                    target,
                    f"{value.domain} value assigned to "
                    f"{receiver}.{target.attr} which is annotated "
                    f"{annotated}",
                )
            if value != UNKNOWN:
                self.analysis.merge_field(receiver, target.attr, value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value_node, (ast.Tuple, ast.List)) and len(
                value_node.elts
            ) == len(target.elts):
                for sub_target, sub_value in zip(target.elts, value_node.elts):
                    self._assign_target(
                        sub_target, sub_value, self.eval(sub_value)
                    )
            else:
                for sub_target in target.elts:
                    self._assign_target(sub_target, None, UNKNOWN)
        # Subscript writes (arr[i] = x) are not tracked.


# ----------------------------------------------------------------------
# Whole-program driver
# ----------------------------------------------------------------------
class UnitsAnalysis:
    """Interprocedural unit/interval propagation to a fixpoint.

    Summaries — per-function return values, per-(class, field) values,
    per-module globals — are joined monotonically over repeated passes
    (bounded by :attr:`MAX_ITERATIONS`), then one reporting pass
    collects :class:`UnitHit` records for the RPL7xx rules.
    """

    MAX_ITERATIONS = 4

    def __init__(
        self, project: Project, graph: CallGraph, config: LintConfig
    ) -> None:
        self.project = project
        self.graph = graph
        self.config = config
        self.registry = parse_registry(config)
        self.capacities = parse_capacities(config)
        self.return_domains: Dict[str, UnitValue] = {}
        self.field_domains: Dict[Tuple[str, str], UnitValue] = {}
        self.global_domains: Dict[Tuple[str, str], UnitValue] = {}
        self.hits: Set[UnitHit] = set()
        self._changed = False

    # -- declared domains ------------------------------------------------
    def declared_return(self, fn: FunctionInfo) -> Optional[str]:
        domain = self.registry.get((fn.qualname, "return"))
        if domain is not None:
            return domain
        cls = _annotation_class(fn.node.returns)
        return cls if cls in DOMAINS else None

    def param_domain(self, fn: FunctionInfo, param: str) -> Optional[str]:
        domain = self.registry.get((fn.qualname, param))
        if domain is not None:
            return domain
        cls = self.graph.param_types.get(fn.key, {}).get(param)
        return cls if cls in DOMAINS else None

    def function_return(self, fn: FunctionInfo) -> UnitValue:
        declared = self.declared_return(fn)
        if declared is not None:
            return from_domain(declared)
        return self.return_domains.get(fn.key, UNKNOWN)

    def property_domain(self, cls: str, attr: str) -> Optional[str]:
        """Declared domain of a ``@property`` read, if any."""
        method = self.project.lookup_method(cls, attr)
        if method is None:
            return None
        for decorator in method.node.decorator_list:
            name = (
                decorator.id
                if isinstance(decorator, ast.Name)
                else decorator.attr
                if isinstance(decorator, ast.Attribute)
                else None
            )
            if name in ("property", "cached_property"):
                return self.declared_return(method)
        return None

    # -- summary tables --------------------------------------------------
    def _merge(
        self,
        table: Dict,
        key,
        value: UnitValue,
    ) -> None:
        old = table.get(key)
        new = value if old is None else join(old, value)
        if new != old:
            table[key] = new
            self._changed = True

    def merge_return(self, key: str, value: UnitValue) -> None:
        self._merge(self.return_domains, key, value)

    def merge_field(self, cls: str, attr: str, value: UnitValue) -> None:
        self._merge(self.field_domains, (cls, attr), value)

    def merge_global(self, module: str, name: str, value: UnitValue) -> None:
        self._merge(self.global_domains, (module, name), value)

    def lookup_field(self, cls: str, attr: str) -> Optional[UnitValue]:
        annotated = self.graph.attr_type(cls, attr)
        if annotated in DOMAINS:
            return from_domain(annotated)
        found = self.field_domains.get((cls, attr))
        if found is not None:
            return found
        for info in self.project.classes_by_name.get(cls, ()):
            for base in info.base_names:
                found = self.field_domains.get((base, attr))
                if found is not None:
                    return found
        return None

    def lookup_global(
        self, current_module: str, dotted: str
    ) -> Optional[UnitValue]:
        if "." not in dotted:
            return self.global_domains.get((current_module, dotted))
        for module_name in self.project.modules:
            if dotted.startswith(module_name + "."):
                remainder = dotted[len(module_name) + 1 :]
                if "." not in remainder:
                    return self.global_domains.get((module_name, remainder))
        return None

    # -- driver ----------------------------------------------------------
    def _pass(self, report: bool) -> bool:
        self._changed = False
        for module in self.project.modules.values():
            _UnitsFlow(self, None, module, report).run()
        for fn in self.project.iter_functions():
            module = self.project.modules[fn.module]
            _UnitsFlow(self, fn, module, report).run()
        return self._changed

    def run(self) -> "UnitsAnalysis":
        for _ in range(self.MAX_ITERATIONS):
            if not self._pass(report=False):
                break
        self._pass(report=True)
        return self


# ----------------------------------------------------------------------
# Shared entry point (cached like the RPL6xx dataflow analysis)
# ----------------------------------------------------------------------
_UNITS_CACHE: Dict[Tuple[int, int], UnitsAnalysis] = {}
_CACHE_LIMIT = 8


def analyze_units(project: Project, config: LintConfig) -> UnitsAnalysis:
    """Run (or reuse) the units analysis for one project + config."""
    key = (id(project), hash(config))
    cached = _UNITS_CACHE.get(key)
    if cached is not None and cached.project is project:
        return cached
    if len(_UNITS_CACHE) >= _CACHE_LIMIT:
        _UNITS_CACHE.clear()
    analysis = UnitsAnalysis(project, shared_callgraph(project), config).run()
    _UNITS_CACHE[key] = analysis
    return analysis
