"""``repro-lint`` console entry point.

Usage::

    repro-lint src/repro                 # human-readable text
    repro-lint src/repro --format json   # CI reporter
    repro-lint --list-rules              # the rule catalog

Exit status: 0 clean, 1 findings, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .cache import DEFAULT_CACHE_FILE, LintCache, cache_key
from .config import load_config
from .engine import LintEngine, discover_files
from .model import all_rules
from .reporter import render_json, render_rule_catalog, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant checker for the CLITE reproduction: "
            "determinism, thread-safety, partition contracts, numerics."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="Files or directories to lint (default: src/repro if present).",
    )
    parser.add_argument(
        "--format",
        "-f",
        choices=("text", "json"),
        default="text",
        help="Report format (json is the CI reporter).",
    )
    parser.add_argument(
        "--select",
        default="",
        help=(
            "Comma-separated rule IDs or family names (e.g. UNITS, "
            "dataflow) to run exclusively."
        ),
    )
    parser.add_argument(
        "--ignore",
        default="",
        help="Comma-separated rule IDs or family names to skip.",
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="PATH",
        help=(
            "File or directory to skip during discovery (repeatable); "
            "e.g. --exclude tests/lint_fixtures."
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="Print the rule catalog and exit.",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="Re-run the full analysis even when the cache is fresh.",
    )
    parser.add_argument(
        "--cache-file",
        default=DEFAULT_CACHE_FILE,
        metavar="PATH",
        help=(
            "Incremental cache location (default: "
            f"{DEFAULT_CACHE_FILE} in the current directory)."
        ),
    )
    return parser


def _split_rules(raw: str) -> tuple:
    return tuple(token.strip() for token in raw.split(",") if token.strip())


def _expand_families(tokens: tuple) -> tuple:
    """Expand family names (``UNITS``, ``thread-safety``) to rule IDs."""
    families: dict = {}
    for rule_id, cls in all_rules().items():
        families.setdefault(cls.family.upper().replace("-", "_"), []).append(
            rule_id
        )
    expanded: list = []
    for token in tokens:
        members = families.get(token.upper().replace("-", "_"))
        if members is not None:
            expanded.extend(members)
        else:
            expanded.append(token)
    return tuple(expanded)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rule_catalog())
        return 0

    paths = args.paths
    if not paths:
        default = Path("src/repro")
        if not default.is_dir():
            parser.print_usage(sys.stderr)
            print(
                "repro-lint: no paths given and ./src/repro not found",
                file=sys.stderr,
            )
            return 2
        paths = [str(default)]

    try:
        config = load_config(Path(paths[0]))
    except ValueError as error:
        print(f"repro-lint: {error}", file=sys.stderr)
        return 2

    select = _expand_families(_split_rules(args.select))
    ignore = _expand_families(_split_rules(args.ignore))
    if select or ignore:
        from dataclasses import replace

        config = replace(
            config,
            select=select or config.select,
            ignore=tuple(set(config.ignore) | set(ignore)),
        )

    known = set(all_rules())
    unknown = [r for r in (*select, *ignore) if r not in known]
    if unknown:
        print(
            f"repro-lint: unknown rule id(s): {', '.join(unknown)}",
            file=sys.stderr,
        )
        return 2

    cache = None
    key = None
    if not args.no_cache:
        try:
            files = discover_files(paths, exclude=args.exclude)
            key = cache_key(files, config)
        except (FileNotFoundError, OSError) as error:
            print(f"repro-lint: {error}", file=sys.stderr)
            return 2
        cache = LintCache(Path(args.cache_file))
        cached = cache.lookup(key)
        if cached is not None:
            print("repro-lint: cache hit, replaying findings", file=sys.stderr)
            if args.format == "json":
                print(render_json(cached))
            else:
                print(render_text(cached))
            return 1 if cached else 0

    engine = LintEngine(config)
    try:
        project = engine.build_project(paths, exclude=args.exclude)
    except (FileNotFoundError, SyntaxError) as error:
        print(f"repro-lint: {error}", file=sys.stderr)
        return 2
    findings = engine.run(project)
    if cache is not None and key is not None:
        cache.store(key, findings)

    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
