"""The lint engine: file discovery, rule execution, suppression.

Suppression syntax (checked against stable rule IDs, ``all`` wildcard):

* ``# repro-lint: disable=RPL101`` — this line only;
* ``# repro-lint: disable-next-line=RPL101,RPL401`` — the line below;
* ``# repro-lint: disable-file=RPL104`` — the whole file.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

from .config import LintConfig, load_config
from .model import Finding, all_rules
from .project import ModuleInfo, Project, parse_module


def discover_files(
    paths: Sequence[Union[str, Path]],
    exclude: Sequence[Union[str, Path]] = (),
) -> List[Path]:
    """Every ``.py`` file under the given files/directories, sorted.

    ``exclude`` entries are files or directory prefixes (resolved); any
    discovered file equal to or underneath one is dropped — how CI
    lints ``tests/`` while skipping the deliberately-broken
    ``tests/lint_fixtures/`` corpus.
    """
    excluded = [Path(raw).resolve() for raw in exclude]

    def is_excluded(resolved: Path) -> bool:
        return any(
            resolved == entry or entry in resolved.parents
            for entry in excluded
        )

    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {path}")
    unique = []
    seen = set()
    for path in files:
        resolved = path.resolve()
        if resolved not in seen and not is_excluded(resolved):
            seen.add(resolved)
            unique.append(path)
    return unique


class LintEngine:
    """Parses a file set once and runs every enabled rule over it."""

    def __init__(self, config: LintConfig) -> None:
        self.config = config

    def build_project(
        self,
        paths: Sequence[Union[str, Path]],
        exclude: Sequence[Union[str, Path]] = (),
    ) -> Project:
        modules: List[ModuleInfo] = []
        for path in discover_files(paths, exclude=exclude):
            modules.append(parse_module(path, display_path=str(path)))
        return Project(modules)

    def run(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for rule_id, rule_cls in all_rules().items():
            if not self.config.rule_enabled(rule_id):
                continue
            rule = rule_cls()
            findings.extend(rule.check(project, self.config))
        return self._apply_suppressions(project, findings)

    def _apply_suppressions(
        self, project: Project, findings: Iterable[Finding]
    ) -> List[Finding]:
        by_path = {
            str(module.display_path): module
            for module in project.modules.values()
        }
        kept = []
        for finding in findings:
            module = by_path.get(finding.path)
            if module is not None and module.suppressed(
                finding.rule_id, finding.line
            ):
                continue
            kept.append(finding)
        return sorted(kept, key=lambda f: (f.path, f.line, f.col, f.rule_id))


def run_lint(
    paths: Sequence[Union[str, Path]],
    config: Optional[LintConfig] = None,
    exclude: Sequence[Union[str, Path]] = (),
) -> List[Finding]:
    """Lint ``paths`` and return the surviving findings.

    When ``config`` is ``None`` the nearest ``pyproject.toml``'s
    ``[tool.repro-lint]`` table (walking up from the first path) is
    merged over the built-in defaults.
    """
    if not paths:
        raise ValueError("run_lint needs at least one path")
    if config is None:
        config = load_config(Path(paths[0]))
    engine = LintEngine(config)
    project = engine.build_project(paths, exclude=exclude)
    return engine.run(project)
