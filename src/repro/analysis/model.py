"""Core data model of the linter: findings, rules, and the registry."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .config import LintConfig
    from .project import Project

#: Rule families, in catalog order.
DETERMINISM = "determinism"
THREAD_SAFETY = "thread-safety"
CONTRACTS = "contracts"
NUMERICS = "numerics"
TELEMETRY = "telemetry"
DATAFLOW = "dataflow"
UNITS = "units"
FLOW = "flow"
PURE = "pure"
COST = "cost"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        rule_id: Stable rule identifier (e.g. ``"RPL101"``).
        path: Path of the offending file, as given to the engine.
        line: 1-based line number.
        col: 0-based column offset.
        message: What is wrong, specific to this site.
        hint: The rule's autofix hint (how to make the finding go away
            legitimately; suppression syntax is documented separately).
    """

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    hint: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


class Rule(ABC):
    """One invariant check, applied project-wide.

    Subclasses declare a stable ``rule_id``, a ``family`` (one of the
    module-level family constants), and an ``autofix_hint`` copied onto
    every finding.  ``check`` sees the whole parsed project so rules can
    be cross-module (the thread-safety family needs the call graph).
    """

    rule_id: str = ""
    name: str = ""
    family: str = ""
    description: str = ""
    autofix_hint: str = ""

    @abstractmethod
    def check(self, project: "Project", config: "LintConfig") -> Iterator[Finding]:
        """Yield every violation of this rule in the project."""

    def finding(
        self, project: "Project", module_name: str, node, message: str
    ) -> Finding:
        """Build a finding anchored at an AST node of one module."""
        module = project.modules[module_name]
        return Finding(
            rule_id=self.rule_id,
            path=str(module.display_path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=self.autofix_hint,
        )


#: Registry of every known rule class, keyed by rule ID.
_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} needs a rule_id")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> Dict[str, Type[Rule]]:
    """Every registered rule class, keyed by stable rule ID."""
    # Importing the rule modules registers them; done lazily so the
    # registry is complete no matter which module was imported first.
    from . import (  # noqa: F401
        rules_contracts,
        rules_cost,
        rules_dataflow,
        rules_determinism,
        rules_flow,
        rules_numerics,
        rules_pure,
        rules_telemetry,
        rules_threadsafety,
        rules_units,
    )

    return dict(sorted(_REGISTRY.items()))


@dataclass
class RuleCatalogEntry:
    """Human-readable catalog row (``repro-lint --list-rules``)."""

    rule_id: str
    name: str
    family: str
    description: str
    autofix_hint: str


def catalog() -> List[RuleCatalogEntry]:
    return [
        RuleCatalogEntry(
            rule_id=cls.rule_id,
            name=cls.name,
            family=cls.family,
            description=cls.description,
            autofix_hint=cls.autofix_hint,
        )
        for cls in all_rules().values()
    ]
