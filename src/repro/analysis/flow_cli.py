"""``repro-flow`` console entry point: the concurrency report.

Renders the artifacts behind the FLOW (RPL8xx) lint family for human
inspection::

    repro-flow src/repro              # lock-order graph + escape report
    repro-flow src/repro --check      # exit 1 on any lock-order cycle
    repro-flow src/repro --format json

The lock-order graph section lists every lock the analysis qualified
(with its threading kind), every order edge with one establishing
site, the reentrant (RLock) self-edges, and per-entry-point lock
coverage — which locks each thread pool / handler can end up holding.
Exit status: 0 ok, 1 cycles found with ``--check``, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .config import load_config
from .engine import LintEngine
from .flow import FlowAnalysis, flow_analysis


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-flow",
        description=(
            "Concurrency & lifecycle report: lock-order graph, "
            "blocking-under-lock, thread escapes (the FLOW lint family's "
            "working state, rendered)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="Files or directories to analyse (default: src/repro).",
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="PATH",
        help="File or directory to skip during discovery (repeatable).",
    )
    parser.add_argument(
        "--format",
        "-f",
        choices=("text", "json"),
        default="text",
        help="Report format.",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="Exit 1 if the lock-order graph has any cycle.",
    )
    return parser


def _entry_label(analysis: FlowAnalysis, key: str) -> str:
    fn = analysis.project.functions.get(key)
    if fn is None:
        return key
    return f"{fn.module}:{fn.qualname}"


def render_text(analysis: FlowAnalysis) -> str:
    lines: List[str] = []
    lines.append("lock-order graph")
    lines.append("================")
    all_tokens = sorted(
        {t for edge in analysis.edges for t in edge}
        | set(analysis.reentrant)
        | {t for locks in analysis.entry_locks.values() for t in locks}
    )
    if not all_tokens:
        lines.append("  (no locks found)")
    for token in all_tokens:
        kind = analysis.lock_kinds.get(token, "unknown")
        lines.append(f"  lock {token}  [{kind}]")
    if analysis.edges:
        lines.append("")
        lines.append("order edges (held -> acquired)")
        for (held, acquired), sites in sorted(analysis.edges.items()):
            site = sites[0]
            lines.append(
                f"  {held} -> {acquired}  "
                f"({site.module}:{site.line} in {site.fn_key.split(':')[-1]})"
            )
    if analysis.reentrant:
        lines.append("")
        lines.append("reentrant self-edges (RLock, legal)")
        for token, sites in sorted(analysis.reentrant.items()):
            lines.append(f"  {token}  ({len(sites)} site(s))")
    lines.append("")
    lines.append("entry-point lock coverage")
    if not analysis.entry_locks:
        lines.append("  (no thread-pool entry points discovered)")
    for key, locks in sorted(analysis.entry_locks.items()):
        label = _entry_label(analysis, key)
        shown = ", ".join(locks) if locks else "(none)"
        lines.append(f"  {label}: {shown}")
    lines.append("")
    if analysis.cycles:
        lines.append(f"CYCLES: {len(analysis.cycles)}")
        for cycle in analysis.cycles:
            lines.append(
                f"  {cycle.detail}  "
                f"(first edge at {cycle.site.module}:{cycle.site.line})"
            )
    else:
        lines.append("cycles: none")
    lines.append("")
    lines.append("thread-escape report")
    lines.append("====================")
    if not analysis.escapes:
        lines.append("  (no unregistered values escape into worker threads)")
    for escape in analysis.escapes:
        lines.append(
            f"  {escape.site.module}:{escape.site.line}  "
            f"{escape.value!r} ({escape.cls})"
        )
    if analysis.blocking:
        lines.append("")
        lines.append("blocking under lock")
        for hit in analysis.blocking:
            via = f" via {hit.via}" if hit.via else ""
            lines.append(
                f"  {hit.site.module}:{hit.site.line}  {hit.call}{via}  "
                f"holding {', '.join(hit.locks)}"
            )
    return "\n".join(lines)


def render_json(analysis: FlowAnalysis) -> str:
    payload = {
        "locks": {
            token: analysis.lock_kinds.get(token, "unknown")
            for token in sorted(
                {t for edge in analysis.edges for t in edge}
                | set(analysis.reentrant)
            )
        },
        "edges": [
            {
                "held": held,
                "acquired": acquired,
                "module": sites[0].module,
                "line": sites[0].line,
                "function": sites[0].fn_key,
            }
            for (held, acquired), sites in sorted(analysis.edges.items())
        ],
        "reentrant": sorted(analysis.reentrant),
        "cycles": [
            {"tokens": list(c.tokens), "detail": c.detail}
            for c in analysis.cycles
        ],
        "entry_locks": {
            _entry_label(analysis, key): list(locks)
            for key, locks in sorted(analysis.entry_locks.items())
        },
        "escapes": [
            {
                "module": e.site.module,
                "line": e.site.line,
                "value": e.value,
                "class": e.cls,
            }
            for e in analysis.escapes
        ],
        "blocking": [
            {
                "module": b.site.module,
                "line": b.site.line,
                "call": b.call,
                "locks": list(b.locks),
                "via": b.via,
            }
            for b in analysis.blocking
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    paths = args.paths
    if not paths:
        default = Path("src/repro")
        if not default.is_dir():
            parser.print_usage(sys.stderr)
            print(
                "repro-flow: no paths given and ./src/repro not found",
                file=sys.stderr,
            )
            return 2
        paths = [str(default)]

    try:
        config = load_config(Path(paths[0]))
    except ValueError as error:
        print(f"repro-flow: {error}", file=sys.stderr)
        return 2

    engine = LintEngine(config)
    try:
        project = engine.build_project(paths, exclude=args.exclude)
    except (FileNotFoundError, SyntaxError) as error:
        print(f"repro-flow: {error}", file=sys.stderr)
        return 2

    analysis = flow_analysis(project, config)
    if args.format == "json":
        print(render_json(analysis))
    else:
        print(render_text(analysis))
    if args.check and analysis.cycles:
        print(
            f"repro-flow: {len(analysis.cycles)} lock-order cycle(s) found",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
