"""Hash-order determinism probe.

CPython randomises ``str``/``bytes`` hashing per process
(``PYTHONHASHSEED``), so any code whose output depends on set or dict
*iteration order over strings* produces different trajectories in
different processes — the classic silent-nondeterminism bug that
same-process regression tests can never catch, because a test and its
expectation share one hash seed.

:func:`hash_order_probe` runs a target callable once per configured
hash seed in a fresh subprocess and diffs the ``repr`` of the results:
a determinism claim holds only if every hash universe agrees.
"""

from __future__ import annotations

import os
import subprocess
import sys
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

DEFAULT_HASH_SEEDS: Tuple[int, ...] = (0, 1)


@dataclass(frozen=True)
class ProbeResult:
    """Outputs of one target under several hash universes."""

    target: str
    outputs: Dict[int, str]

    @property
    def deterministic(self) -> bool:
        return len(set(self.outputs.values())) <= 1

    def describe(self) -> str:
        if self.deterministic:
            seeds = ", ".join(str(s) for s in sorted(self.outputs))
            return (
                f"{self.target}: identical output under "
                f"PYTHONHASHSEED in ({seeds})"
            )
        lines = [f"{self.target}: output DIFFERS across hash seeds"]
        for seed in sorted(self.outputs):
            text = self.outputs[seed]
            preview = text if len(text) <= 160 else text[:157] + "..."
            lines.append(f"  PYTHONHASHSEED={seed}: {preview}")
        return "\n".join(lines)


class ProbeError(RuntimeError):
    """The probed target crashed in a subprocess."""


def _runner_source(module: str, func: str) -> str:
    return (
        "import importlib\n"
        f"mod = importlib.import_module({module!r})\n"
        f"fn = getattr(mod, {func!r})\n"
        "print(repr(fn()))\n"
    )


def hash_order_probe(
    target: str,
    hash_seeds: Sequence[int] = DEFAULT_HASH_SEEDS,
    timeout_s: float = 300.0,
) -> ProbeResult:
    """Run ``module:function`` under each hash seed and diff outputs.

    The function must be importable, take no arguments, and return a
    value whose ``repr`` captures the trajectory being checked (e.g.
    a list of per-iteration scores).  Raises :class:`ProbeError` if any
    run crashes.
    """
    module, sep, func = target.partition(":")
    if not sep or not module or not func:
        raise ValueError(
            f"target must look like 'package.module:function', got {target!r}"
        )
    source = _runner_source(module, func)
    outputs: Dict[int, str] = {}
    for seed in hash_seeds:
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = str(seed)
        # The child must resolve the same packages as this process even
        # when repro is used from a source checkout (PYTHONPATH=src).
        env["PYTHONPATH"] = os.pathsep.join(
            [p for p in sys.path if p] + [env.get("PYTHONPATH", "")]
        ).rstrip(os.pathsep)
        proc = subprocess.run(
            [sys.executable, "-c", source],
            capture_output=True,
            text=True,
            env=env,
            timeout=timeout_s,
        )
        if proc.returncode != 0:
            raise ProbeError(
                f"probe target {target!r} failed under "
                f"PYTHONHASHSEED={seed}:\n{proc.stderr.strip()}"
            )
        outputs[seed] = proc.stdout.strip()
    return ProbeResult(target=target, outputs=outputs)


def diff_outputs(result: ProbeResult) -> List[str]:
    """Unified-style diff lines between the first two differing runs."""
    import difflib

    seeds = sorted(result.outputs)
    for i, a in enumerate(seeds):
        for b in seeds[i + 1:]:
            if result.outputs[a] != result.outputs[b]:
                return list(
                    difflib.unified_diff(
                        result.outputs[a].splitlines(),
                        result.outputs[b].splitlines(),
                        fromfile=f"PYTHONHASHSEED={a}",
                        tofile=f"PYTHONHASHSEED={b}",
                        lineterm="",
                    )
                )
    return []
