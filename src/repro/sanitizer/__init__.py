"""repro-san: runtime race and determinism sanitizer.

Layer 2 of the correctness tooling (layer 1 is the static RPL6xx
dataflow family in :mod:`repro.analysis`).  Shadow-instruments shared
objects to detect lock-discipline violations TSan-style at runtime, and
probes callables for hash-order-dependent output across
``PYTHONHASHSEED`` universes.

Usage::

    from repro.sanitizer import instrument

    with instrument(registry, cache) as san:
        run_workload()
    assert san.races() == []

Production code registers its shared objects through
:func:`register_shared`, which is a no-op (a single ``None`` check)
unless a sanitizer is active.
"""

from .hashorder import (
    DEFAULT_HASH_SEEDS,
    ProbeError,
    ProbeResult,
    diff_outputs,
    hash_order_probe,
)
from .hooks import activate, active_sanitizer, deactivate, register_shared
from .shadow import AccessRecord, RaceReport, Sanitizer, instrument

__all__ = [
    "AccessRecord",
    "DEFAULT_HASH_SEEDS",
    "ProbeError",
    "ProbeResult",
    "RaceReport",
    "Sanitizer",
    "activate",
    "active_sanitizer",
    "deactivate",
    "diff_outputs",
    "hash_order_probe",
    "instrument",
    "register_shared",
]
