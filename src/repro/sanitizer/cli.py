"""``repro-san`` — runtime race and determinism sanitizer CLI.

Two subcommands:

``repro-san stress``
    Builds a small cluster and runs the real ``verify_nodes`` thread
    pool with a live telemetry stack under the sanitizer, reporting any
    lockset-empty conflicting access pairs.  This is the dynamic
    counterpart of the static RPL603 lockset rule: the linter proves
    the lock discipline of the code it can see; the sanitizer checks
    the discipline actually held at runtime.

``repro-san probe pkg.module:function``
    Runs the target once per ``PYTHONHASHSEED`` universe in fresh
    subprocesses and diffs the trajectories, catching hash-order-
    dependent iteration that same-process tests cannot observe.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .hashorder import DEFAULT_HASH_SEEDS, ProbeError, diff_outputs, hash_order_probe
from .shadow import instrument


def _stress(args: argparse.Namespace) -> int:
    # Imported lazily so `repro-san probe` works without pulling in the
    # full engine stack (numpy/scipy).
    from repro.cluster.scheduler import verify_nodes
    from repro.cluster.state import ClusterNode, JobRequest
    from repro.core.engine import CLITEConfig
    from repro.resources import small_server
    from repro.telemetry import Telemetry
    from repro.workloads import bg_workload, lc_workload

    spec = small_server(units=6, n_resources=3)
    lc = lc_workload("memcached", server=spec)
    bg = bg_workload("canneal")
    states = []
    for i in range(args.nodes):
        states.append(
            ClusterNode(i, spec)
            .with_request(JobRequest(lc, 0.3, name=f"svc-{i}"))
            .with_request(JobRequest(bg, name=f"batch-{i}"))
        )
    engine_config = CLITEConfig(
        max_iterations=args.iterations,
        post_qos_iterations=2,
        refine_budget=3,
        confirm_top=1,
        n_restarts=2,
    )
    telemetry = Telemetry()  # live registry + tracer: real shared state
    with instrument(
        telemetry.metrics, telemetry.tracer, names=("MetricRegistry", "Tracer")
    ) as sanitizer:
        for state in states:
            sanitizer.watch(state, name=f"ClusterNode[{state.index}]")
        reports = verify_nodes(
            states,
            engine_config,
            seed=args.seed,
            max_workers=args.workers,
            telemetry=telemetry,
        )
        races = sanitizer.races()
        n_access = len(sanitizer.accesses())
    print(
        f"repro-san stress: {len(reports)} node(s) verified on "
        f"{args.workers} worker(s); {n_access} access pattern(s) recorded"
    )
    if races:
        for race in races:
            print(f"  RACE {race.describe()}")
        print(f"repro-san: {len(races)} race(s) detected")
        return 1
    print("repro-san: no races detected")
    return 0


def _probe(args: argparse.Namespace) -> int:
    seeds = tuple(int(s) for s in args.hash_seeds.split(","))
    try:
        result = hash_order_probe(args.target, hash_seeds=seeds)
    except (ProbeError, ValueError) as exc:
        print(f"repro-san: error: {exc}", file=sys.stderr)
        return 2
    print(result.describe())
    if not result.deterministic:
        for line in diff_outputs(result):
            print(f"  {line}")
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-san",
        description="Runtime race and hash-order determinism sanitizer.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    stress = sub.add_parser(
        "stress",
        help="run the verify_nodes thread pool under the sanitizer",
    )
    stress.add_argument("--nodes", type=int, default=4)
    stress.add_argument("--workers", type=int, default=4)
    stress.add_argument("--seed", type=int, default=0)
    stress.add_argument(
        "--iterations", type=int, default=6,
        help="engine iterations per node (keep small; this is a probe)",
    )
    stress.set_defaults(func=_stress)

    probe = sub.add_parser(
        "probe",
        help="diff a callable's output across PYTHONHASHSEED universes",
    )
    probe.add_argument(
        "target", help="import target, e.g. repro.experiments.demo:trajectory"
    )
    probe.add_argument(
        "--hash-seeds",
        default=",".join(str(s) for s in DEFAULT_HASH_SEEDS),
        help="comma-separated PYTHONHASHSEED values (default: 0,1)",
    )
    probe.set_defaults(func=_probe)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(
        list(argv) if argv is not None else None
    )
    return int(args.func(args))


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    raise SystemExit(main())
