"""Registration hooks production code calls at object-creation time.

Shared-state owners (the metric registry, the node observation cache,
the scheduler's per-node state) call :func:`register_shared` when they
come to life.  With no sanitizer active the call is a single ``None``
check — effectively free — so the hooks stay in production code
permanently; under ``repro-san`` (or :func:`..shadow.instrument`) the
active :class:`~.shadow.Sanitizer` shadow-wraps each registrant.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence

from .shadow import Sanitizer

_ACTIVE: Optional[Sanitizer] = None
_LOCK = threading.Lock()


def active_sanitizer() -> Optional[Sanitizer]:
    """The currently installed sanitizer, if any."""
    return _ACTIVE


def activate(sanitizer: Sanitizer) -> None:
    """Install ``sanitizer`` as the target of :func:`register_shared`."""
    global _ACTIVE
    with _LOCK:
        if _ACTIVE is not None and _ACTIVE is not sanitizer:
            raise RuntimeError("another sanitizer is already active")
        _ACTIVE = sanitizer


def deactivate() -> None:
    """Remove the active sanitizer (idempotent)."""
    global _ACTIVE
    with _LOCK:
        _ACTIVE = None


def register_shared(
    obj: object,
    name: Optional[str] = None,
    lock_attrs: Sequence[str] = (),
    container_attrs: Sequence[str] = (),
) -> object:
    """Watch ``obj`` if a sanitizer is active; no-op (and ~free) if not.

    ``container_attrs`` opts named container attributes (dicts, lists,
    sets, deques) into item-level mutation tracking (see
    :meth:`~.shadow.Sanitizer.watch`).
    """
    sanitizer = _ACTIVE
    if sanitizer is None:
        return obj
    return sanitizer.watch(
        obj, name=name, lock_attrs=lock_attrs, container_attrs=container_attrs
    )
