"""TSan-style shadow instrumentation for shared Python objects.

:class:`Sanitizer` rewrites a watched object's ``__class__`` to a
generated shadow subclass whose ``__getattribute__``/``__setattr__``
record ``(thread, field, lockset)`` access tuples.  Locks stored on the
object (``threading.Lock``/``RLock`` attributes, or any attribute named
in ``lock_attrs``) are replaced with instrumented wrappers that keep a
per-thread held-set, so every recorded access knows exactly which locks
the accessing thread held.

A data race, reported by :meth:`Sanitizer.races`, is a pair of accesses
to the same field from two different threads where at least one access
is a write and the two locksets are disjoint — the classic happens-
before-free definition specialised to lock discipline, which is the
only synchronisation idiom this codebase uses.

Recording is field-granular and deduplicated by ``(thread, kind,
lockset)``, so memory stays bounded no matter how hot the access loop
is; values are never copied or compared, which keeps same-seed runs
bit-identical with the sanitizer enabled.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

#: Lock types eligible for automatic instrumentation.
_LOCK_TYPES = (
    type(threading.Lock()),
    type(threading.RLock()),
)


@dataclass(frozen=True)
class AccessRecord:
    """One deduplicated access pattern to a watched field."""

    obj_name: str
    fld: str
    thread: str
    kind: str  # "read" | "write"
    lockset: FrozenSet[str]
    count: int = 1

    def describe(self) -> str:
        held = ", ".join(sorted(self.lockset)) or "no locks"
        return (
            f"{self.kind} of {self.obj_name}.{self.fld} on thread "
            f"{self.thread} holding {held} (x{self.count})"
        )


@dataclass(frozen=True)
class RaceReport:
    """Two conflicting accesses with no common lock."""

    obj_name: str
    fld: str
    first: AccessRecord
    second: AccessRecord

    def describe(self) -> str:
        return (
            f"data race on {self.obj_name}.{self.fld}: "
            f"[{self.first.describe()}] vs [{self.second.describe()}]"
        )


class _InstrumentedLock:
    """Delegating lock wrapper that maintains the per-thread held-set.

    Reentrant acquisitions (RLocks re-taken by self-guarding helpers)
    are depth-counted per thread: the token leaves the held-set only
    when the outermost hold releases, so code running between an inner
    release and the outer one is still seen as holding the lock.
    """

    def __init__(self, sanitizer: "Sanitizer", token: str, inner: Any) -> None:
        self._sanitizer = sanitizer
        self._token = token
        self._inner = inner
        self._depth = threading.local()

    def acquire(self, *args: Any, **kwargs: Any) -> bool:
        acquired = self._inner.acquire(*args, **kwargs)
        if acquired:
            self._depth.n = getattr(self._depth, "n", 0) + 1
            self._sanitizer._held().add(self._token)
        return bool(acquired)

    def release(self) -> None:
        self._inner.release()
        depth = getattr(self._depth, "n", 1) - 1
        self._depth.n = depth
        if depth <= 0:
            self._sanitizer._held().discard(self._token)

    def locked(self) -> bool:
        return bool(self._inner.locked())

    def __enter__(self) -> "_InstrumentedLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class _ShadowMapping:
    """Mapping proxy that records item-level mutations by reference.

    Wrapping is by reference: every operation lands on the original
    inner mapping, so unwatched aliases stay coherent and ``restore()``
    only has to put the original object back on the attribute.  The
    proxy delegates the full :class:`dict`/``OrderedDict`` surface
    (including ``move_to_end``/``popitem(last=False)``), recording each
    operation against the synthetic field ``"<attr>[]"`` so container
    races are distinguishable from rebinding races on the attribute
    itself.
    """

    __slots__ = ("_sanitizer", "_obj_name", "_fld", "_inner")

    def __init__(
        self, sanitizer: "Sanitizer", obj_name: str, fld: str, inner: Any
    ) -> None:
        self._sanitizer = sanitizer
        self._obj_name = obj_name
        self._fld = fld
        self._inner = inner

    def _note(self, kind: str) -> None:
        if self._sanitizer._recording():
            self._sanitizer._record(self._obj_name, self._fld, kind)

    # -- reads ----------------------------------------------------------
    def __getitem__(self, key: Any) -> Any:
        self._note("read")
        return self._inner[key]

    def __contains__(self, key: Any) -> bool:
        self._note("read")
        return key in self._inner

    def __len__(self) -> int:
        self._note("read")
        return len(self._inner)

    def __iter__(self) -> Iterator[Any]:
        self._note("read")
        return iter(self._inner)

    def __bool__(self) -> bool:
        self._note("read")
        return bool(self._inner)

    def get(self, key: Any, default: Any = None) -> Any:
        self._note("read")
        return self._inner.get(key, default)

    def keys(self) -> Any:
        self._note("read")
        return self._inner.keys()

    def values(self) -> Any:
        self._note("read")
        return self._inner.values()

    def items(self) -> Any:
        self._note("read")
        return self._inner.items()

    def __repr__(self) -> str:
        return f"_ShadowMapping({self._inner!r})"

    # -- writes ---------------------------------------------------------
    def __setitem__(self, key: Any, value: Any) -> None:
        self._note("write")
        self._inner[key] = value

    def __delitem__(self, key: Any) -> None:
        self._note("write")
        del self._inner[key]

    def pop(self, *args: Any, **kwargs: Any) -> Any:
        self._note("write")
        return self._inner.pop(*args, **kwargs)

    def popitem(self, *args: Any, **kwargs: Any) -> Any:
        self._note("write")
        return self._inner.popitem(*args, **kwargs)

    def setdefault(self, key: Any, default: Any = None) -> Any:
        self._note("write")
        return self._inner.setdefault(key, default)

    def update(self, *args: Any, **kwargs: Any) -> None:
        self._note("write")
        self._inner.update(*args, **kwargs)

    def clear(self) -> None:
        self._note("write")
        self._inner.clear()

    def move_to_end(self, *args: Any, **kwargs: Any) -> None:
        self._note("write")
        self._inner.move_to_end(*args, **kwargs)


class _ShadowSequence:
    """Sequence/set proxy: the list/set/deque sibling of `_ShadowMapping`.

    Same by-reference wrapping contract: every operation lands on the
    original inner container and records against the synthetic field
    ``"<attr>[]"``.  Covers the shared surface of :class:`list`,
    :class:`set`, and :class:`collections.deque`; methods a given inner
    type lacks (``add`` on a list, ``append`` on a set) raise the
    inner type's own :class:`AttributeError` at call time, exactly as
    the unwrapped container would.
    """

    __slots__ = ("_sanitizer", "_obj_name", "_fld", "_inner")

    def __init__(
        self, sanitizer: "Sanitizer", obj_name: str, fld: str, inner: Any
    ) -> None:
        self._sanitizer = sanitizer
        self._obj_name = obj_name
        self._fld = fld
        self._inner = inner

    def _note(self, kind: str) -> None:
        if self._sanitizer._recording():
            self._sanitizer._record(self._obj_name, self._fld, kind)

    def _delegate(self, method: str, kind: str, *args: Any, **kwargs: Any):
        bound = getattr(self._inner, method)  # AttributeError like inner
        self._note(kind)
        return bound(*args, **kwargs)

    # -- reads ----------------------------------------------------------
    def __getitem__(self, index: Any) -> Any:
        self._note("read")
        return self._inner[index]

    def __contains__(self, value: Any) -> bool:
        self._note("read")
        return value in self._inner

    def __len__(self) -> int:
        self._note("read")
        return len(self._inner)

    def __iter__(self) -> Iterator[Any]:
        self._note("read")
        return iter(self._inner)

    def __bool__(self) -> bool:
        self._note("read")
        return bool(self._inner)

    def index(self, *args: Any) -> int:
        return self._delegate("index", "read", *args)

    def count(self, value: Any) -> int:
        return self._delegate("count", "read", value)

    def copy(self) -> Any:
        return self._delegate("copy", "read")

    def __repr__(self) -> str:
        return f"_ShadowSequence({self._inner!r})"

    # -- writes ---------------------------------------------------------
    def __setitem__(self, index: Any, value: Any) -> None:
        self._note("write")
        self._inner[index] = value

    def __delitem__(self, index: Any) -> None:
        self._note("write")
        del self._inner[index]

    def append(self, value: Any) -> None:
        self._delegate("append", "write", value)

    def appendleft(self, value: Any) -> None:
        self._delegate("appendleft", "write", value)

    def extend(self, values: Any) -> None:
        self._delegate("extend", "write", values)

    def insert(self, index: int, value: Any) -> None:
        self._delegate("insert", "write", index, value)

    def add(self, value: Any) -> None:
        self._delegate("add", "write", value)

    def update(self, *others: Any) -> None:
        self._delegate("update", "write", *others)

    def pop(self, *args: Any) -> Any:
        return self._delegate("pop", "write", *args)

    def popleft(self) -> Any:
        return self._delegate("popleft", "write")

    def remove(self, value: Any) -> None:
        self._delegate("remove", "write", value)

    def discard(self, value: Any) -> None:
        self._delegate("discard", "write", value)

    def clear(self) -> None:
        self._delegate("clear", "write")

    def sort(self, **kwargs: Any) -> None:
        self._delegate("sort", "write", **kwargs)

    def reverse(self) -> None:
        self._delegate("reverse", "write")


class Sanitizer:
    """Records cross-thread accesses on watched objects, finds races."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tls = threading.local()
        #: (obj_name, field) -> {(thread, kind, lockset) -> count}
        self._records: Dict[
            Tuple[str, str], Dict[Tuple[str, str, FrozenSet[str]], int]
        ] = {}
        #: restore info: (object, original class, {attr: original lock})
        self._watched: List[Tuple[object, type, Dict[str, object]]] = []
        self._names: Dict[int, str] = {}

    # -- thread-local state ---------------------------------------------
    def _held(self) -> set:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = set()
            self._tls.held = held
        return held

    def _recording(self) -> bool:
        return not getattr(self._tls, "busy", False)

    # -- recording -------------------------------------------------------
    def _record(self, obj_name: str, fld: str, kind: str) -> None:
        self._tls.busy = True
        try:
            key = (
                threading.current_thread().name,
                kind,
                frozenset(self._held()),
            )
            with self._lock:
                per_field = self._records.setdefault((obj_name, fld), {})
                per_field[key] = per_field.get(key, 0) + 1
        finally:
            self._tls.busy = False

    # -- watching --------------------------------------------------------
    def watch(
        self,
        obj: object,
        name: Optional[str] = None,
        lock_attrs: Sequence[str] = (),
        container_attrs: Sequence[str] = (),
    ) -> object:
        """Shadow-instrument ``obj`` in place and return it.

        ``lock_attrs`` names lock-holding attributes to instrument in
        addition to the auto-detected ``threading.Lock``/``RLock``
        instance attributes.  ``container_attrs`` names container
        attributes (dict/``OrderedDict`` via :class:`_ShadowMapping`;
        list/set/``deque`` via :class:`_ShadowSequence`) whose
        *item-level* mutations should be tracked too — attribute
        instrumentation alone only sees the attribute read that fetches
        the container, not the ``d[k] = v`` or ``lst.append(v)`` that
        races.  The default name carries the object id
        so records from distinct same-class instances never merge (which
        would fabricate cross-thread pairs).
        """
        obj_name = (
            name if name is not None else f"{type(obj).__name__}@{id(obj):x}"
        )
        cls = type(obj)
        if cls.__name__.startswith("_Sanitized"):
            return obj  # already watched
        instance_dict = object.__getattribute__(obj, "__dict__")
        originals: Dict[str, object] = {}
        for attr, value in list(instance_dict.items()):
            if attr in lock_attrs or isinstance(value, _LOCK_TYPES):
                originals[attr] = value
                instance_dict[attr] = _InstrumentedLock(
                    self, f"{obj_name}.{attr}", value
                )
        for attr in container_attrs:
            value = instance_dict.get(attr)
            if value is None or isinstance(
                value, (_ShadowMapping, _ShadowSequence)
            ):
                continue
            if isinstance(value, dict):
                proxy_cls: type = _ShadowMapping
            elif isinstance(value, (list, set, deque)):
                proxy_cls = _ShadowSequence
            else:
                continue  # unknown container kind: leave unwrapped
            originals[attr] = value
            instance_dict[attr] = proxy_cls(
                self, obj_name, f"{attr}[]", value
            )
        shadow = self._shadow_class(cls, obj_name)
        # Not a frozen-field write: swapping __class__ is how the shadow
        # instrumentation attaches, and must bypass any custom setattr.
        object.__setattr__(obj, "__class__", shadow)  # repro-lint: disable=RPL203
        self._names[id(obj)] = obj_name
        self._watched.append((obj, cls, originals))
        return obj

    def _shadow_class(self, cls: type, obj_name: str) -> type:
        sanitizer = self

        class _Shadowed(cls):  # type: ignore[misc, valid-type]
            def __getattribute__(self, attr_name: str) -> Any:
                value = super().__getattribute__(attr_name)
                if sanitizer._should_record(self, attr_name, value):
                    sanitizer._record(
                        sanitizer._names.get(id(self), obj_name),
                        attr_name,
                        "read",
                    )
                return value

            def __setattr__(self, attr_name: str, value: Any) -> None:
                super().__setattr__(attr_name, value)
                if sanitizer._should_record(self, attr_name, value):
                    sanitizer._record(
                        sanitizer._names.get(id(self), obj_name),
                        attr_name,
                        "write",
                    )

        _Shadowed.__name__ = f"_Sanitized{cls.__name__}"
        _Shadowed.__qualname__ = f"_Sanitized{cls.__qualname__}"
        return _Shadowed

    def _should_record(self, obj: object, attr_name: str, value: Any) -> bool:
        if attr_name.startswith("__") or not self._recording():
            return False
        if isinstance(value, _InstrumentedLock):
            return False  # lock objects are the guard, not the data
        # Only data attributes: class-level methods/descriptors are
        # immutable from the races' point of view and would drown the
        # report in noise.
        return attr_name in object.__getattribute__(obj, "__dict__")

    def restore(self) -> None:
        """Undo every class swap and lock replacement."""
        while self._watched:
            obj, cls, originals = self._watched.pop()
            # Mirror of the watch()-time swap; restores the real class.
            object.__setattr__(obj, "__class__", cls)  # repro-lint: disable=RPL203
            instance_dict = object.__getattribute__(obj, "__dict__")
            for attr, original in originals.items():
                instance_dict[attr] = original

    # -- reporting -------------------------------------------------------
    def accesses(self) -> List[AccessRecord]:
        with self._lock:
            return [
                AccessRecord(obj_name, fld, thread, kind, lockset, count)
                for (obj_name, fld), per_field in sorted(self._records.items())
                for (thread, kind, lockset), count in sorted(
                    per_field.items(), key=lambda kv: (kv[0][0], kv[0][1])
                )
            ]

    def races(self) -> List[RaceReport]:
        """Every conflicting unsynchronised access pair."""
        reports: List[RaceReport] = []
        by_field: Dict[Tuple[str, str], List[AccessRecord]] = {}
        for record in self.accesses():
            by_field.setdefault((record.obj_name, record.fld), []).append(
                record
            )
        for (obj_name, fld), records in by_field.items():
            for i, first in enumerate(records):
                for second in records[i + 1:]:
                    if first.thread == second.thread:
                        continue
                    if first.kind != "write" and second.kind != "write":
                        continue
                    if first.lockset & second.lockset:
                        continue
                    reports.append(RaceReport(obj_name, fld, first, second))
        return reports


@contextmanager
def instrument(
    *objects: object,
    names: Sequence[Optional[str]] = (),
    lock_attrs: Sequence[str] = (),
    container_attrs: Sequence[str] = (),
) -> Iterator[Sanitizer]:
    """Watch ``objects`` for the duration of the block.

    Also activates the global hook registry (:mod:`.hooks`), so shared
    objects constructed *inside* the block — registries, caches, node
    state — self-register via their no-op-by-default hooks.
    """
    from . import hooks

    sanitizer = Sanitizer()
    hooks.activate(sanitizer)
    try:
        for i, obj in enumerate(objects):
            name = names[i] if i < len(names) else None
            sanitizer.watch(
                obj,
                name=name,
                lock_attrs=lock_attrs,
                container_attrs=container_attrs,
            )
        yield sanitizer
    finally:
        hooks.deactivate()
        sanitizer.restore()
