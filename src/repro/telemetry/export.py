"""Exporters: JSONL event streams and Prometheus text format.

The JSONL stream is the interchange format of the subsystem: one JSON
object per line, ``type`` discriminated (``span`` / ``event`` /
``metric``), consumed by the ``repro-trace`` CLI and by anything
downstream that wants structured traces (load replay, dashboards).
Prometheus text format covers the pull-based monitoring side.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, List, Union

from .metrics import Counter, Gauge, Histogram, MetricRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from . import Telemetry

#: Prometheus metric names allow neither dots nor leading digits.
_PROM_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_:]")


def telemetry_records(
    telemetry: "Telemetry", spans_since: int = 0
) -> Iterator[Dict[str, object]]:
    """Yield every span, event, and metric as a JSON-ready dict.

    Spans come first (finish order), then events (time order), then the
    registry's metrics — so a streaming reader sees the trace before
    the summary.
    """
    for span in telemetry.tracer.finished(since=spans_since):
        yield {
            "type": "span",
            "name": span.name,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "start_s": span.start_s,
            "end_s": span.end_s,
            "duration_s": span.duration_s,
            "attributes": dict(span.attributes),
        }
    for event in telemetry.tracer.events():
        yield {
            "type": "event",
            "name": event.name,
            "time_s": event.time_s,
            "attributes": dict(event.attributes),
        }
    for series, data in telemetry.metrics.snapshot().items():
        record: Dict[str, object] = {"type": "metric", "series": series}
        record.update(data)
        yield record


def write_jsonl(
    telemetry: "Telemetry",
    path: Union[str, Path],
    spans_since: int = 0,
) -> int:
    """Write the telemetry state as JSONL; returns the line count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in telemetry_records(telemetry, spans_since=spans_since):
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            count += 1
    return count


def read_jsonl(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Parse a JSONL trace file back into record dicts."""
    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not valid JSON ({exc})")
            if not isinstance(record, dict) or "type" not in record:
                raise ValueError(f"{path}:{lineno}: not a telemetry record")
            records.append(record)
    return records


def _prom_name(name: str) -> str:
    return _PROM_SANITIZE_RE.sub("_", name)


def _prom_labels(labels) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{_prom_name(k)}="{v}"' for k, v in labels)
    return "{" + inner + "}"


def prometheus_text(registry: MetricRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: List[str] = []
    typed: set = set()
    for instrument in registry.instruments():
        name = _prom_name(instrument.name)  # type: ignore[attr-defined]
        labels = _prom_labels(instrument.labels)  # type: ignore[attr-defined]
        if isinstance(instrument, Histogram):
            if name not in typed:
                lines.append(f"# TYPE {name} histogram")
                typed.add(name)
            cumulative = 0
            counts = instrument.bucket_counts()
            for bound, count in zip(instrument.bounds, counts):
                cumulative += count
                le = _prom_labels(
                    tuple(instrument.labels) + (("le", repr(bound)),)
                )
                lines.append(f"{name}_bucket{le} {cumulative}")
            le = _prom_labels(tuple(instrument.labels) + (("le", "+Inf"),))
            lines.append(f"{name}_bucket{le} {instrument.count}")
            lines.append(f"{name}_sum{labels} {instrument.sum}")
            lines.append(f"{name}_count{labels} {instrument.count}")
        elif isinstance(instrument, Counter):
            if name not in typed:
                lines.append(f"# TYPE {name} counter")
                typed.add(name)
            lines.append(f"{name}{labels} {instrument.value}")
        elif isinstance(instrument, Gauge):
            if name not in typed:
                lines.append(f"# TYPE {name} gauge")
                typed.add(name)
            lines.append(f"{name}{labels} {instrument.value}")
    return "\n".join(lines) + ("\n" if lines else "")
