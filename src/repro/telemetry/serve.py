"""Pull-based metrics endpoint: Prometheus text over stdlib HTTP.

The push side of the subsystem writes JSONL traces; this module covers
the pull side the paper's production setting assumes — a monitoring
system periodically scraping each node.  :func:`make_server` binds a
:class:`MetricsServer` that renders a live :class:`~repro.telemetry.
metrics.MetricRegistry` through :func:`~repro.telemetry.export.
prometheus_text` on every ``GET /metrics``, so scrapes always see the
current instrument state, not a cached snapshot.

For offline traces, :func:`registry_from_records` rebuilds a registry
from the ``metric`` records of a JSONL trace (``repro-trace serve``
uses it to re-export a finished run).  Snapshot records carry only the
summary of a histogram — bucket detail is not recoverable — so
histogram series are re-exposed as ``<name>.count`` / ``<name>.sum`` /
``<name>.p50`` / ``<name>.p95`` / ``<name>.p99`` gauges rather than
fabricating observations.
"""

from __future__ import annotations

import math
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Iterable, Tuple

from .export import prometheus_text
from .metrics import MetricRegistry

#: Inverse of :func:`~repro.telemetry.metrics.render_series`:
#: ``name{k="v",...}`` or a bare ``name``.
_SERIES_RE = re.compile(r"^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?$")
_LABEL_RE = re.compile(r'(?P<key>[^=,]+)="(?P<value>[^"]*)"')

#: The Prometheus text exposition content type.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def parse_series(series: str) -> Tuple[str, Dict[str, str]]:
    """Split a rendered series key back into ``(name, labels)``."""
    match = _SERIES_RE.match(series)
    if match is None:  # pragma: no cover - render_series can't produce this
        raise ValueError(f"unparseable series key: {series!r}")
    labels = {
        m.group("key"): m.group("value")
        for m in _LABEL_RE.finditer(match.group("labels") or "")
    }
    return match.group("name"), labels


def registry_from_records(
    records: Iterable[Dict[str, object]],
) -> MetricRegistry:
    """Rebuild a :class:`MetricRegistry` from JSONL ``metric`` records."""
    registry = MetricRegistry()
    for record in records:
        if record.get("type") != "metric":
            continue
        name, labels = parse_series(str(record["series"]))
        kind = str(record.get("kind"))
        if kind == "counter":
            registry.counter(name, **labels).add(float(record["value"]))  # type: ignore[arg-type]
        elif kind == "gauge":
            registry.gauge(name, **labels).set(float(record["value"]))  # type: ignore[arg-type]
        elif kind == "histogram":
            registry.gauge(f"{name}.count", **labels).set(
                float(record["count"])  # type: ignore[arg-type]
            )
            registry.gauge(f"{name}.sum", **labels).set(
                float(record["sum"])  # type: ignore[arg-type]
            )
            for quantile in ("p50", "p95", "p99"):
                value = float(record[quantile])  # type: ignore[arg-type]
                if math.isnan(value):
                    continue  # empty histogram: no quantile to re-expose
                registry.gauge(f"{name}.{quantile}", **labels).set(value)
    return registry


class _MetricsHandler(BaseHTTPRequestHandler):
    """Serves the owning server's registry; silent on the access log."""

    server_version = "repro-metrics/1.0"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path not in ("/", "/metrics"):
            self.send_error(404, "try /metrics")
            return
        body = prometheus_text(self.server.registry).encode("utf-8")  # type: ignore[attr-defined]
        self.send_response(200)
        self.send_header("Content-Type", CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        pass  # scrape traffic is not worth a stderr line each


class MetricsServer(ThreadingHTTPServer):
    """An HTTP server bound to one registry.

    ``daemon_threads`` keeps a slow scraper from pinning shutdown, and
    the registry reference is read by the handler on every request, so
    live instruments show their latest values.
    """

    daemon_threads = True

    def __init__(
        self, address: Tuple[str, int], registry: MetricRegistry
    ) -> None:
        super().__init__(address, _MetricsHandler)
        self.registry = registry

    @property
    def port(self) -> int:
        """The bound port (useful when constructed with port 0)."""
        return int(self.server_address[1])

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}/metrics"


def make_server(
    registry: MetricRegistry, host: str = "127.0.0.1", port: int = 0
) -> MetricsServer:
    """Bind (but do not start) a metrics endpoint for ``registry``.

    Port 0 picks a free ephemeral port; read it back from
    :attr:`MetricsServer.port`.  Call ``serve_forever()`` (typically on
    a thread) or ``handle_request()`` to actually serve.
    """
    return MetricsServer((host, port), registry)
