"""Metric instruments: counters, gauges, fixed-bucket histograms.

A :class:`MetricRegistry` hands out named instruments and snapshots
them.  All instruments are safe under the ``verify_workers`` thread
pool: creation is serialized on the registry lock and every update is
serialized on the owning instrument's lock, so concurrent engine runs
sharing one registry never lose increments.

Metric names must match ``^[a-z][a-z0-9_.]*$`` (dots as namespace
separators, e.g. ``node.cache.hits``); repro-lint RPL501 enforces the
same pattern statically at call sites.  Instruments may carry labels
(``registry.counter("cluster.verify.samples", node="3")``), which keep
one logical metric per labelled series, Prometheus-style.
"""

from __future__ import annotations

import re
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..sanitizer.hooks import register_shared

#: The legal shape of a metric name (RPL501 checks literals against it).
METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_.]*$")

#: Default histogram buckets: upper bounds in seconds, exponential from
#: 100 µs to one minute — sized for observation windows and BO phases.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Mapping[str, str]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def render_series(name: str, labels: LabelItems) -> str:
    """``name{k="v",...}`` — the snapshot/export key of one series."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def add(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: Union[int, float]) -> None:
        with self._lock:
            self._value = float(value)


class Histogram:
    """Fixed-bucket histogram with interpolated quantile estimation.

    Buckets are upper bounds; an implicit overflow bucket catches
    everything beyond the last bound.  Quantiles are estimated by
    linear interpolation inside the bucket where the target cumulative
    count falls, clamped to the observed min/max so a sparse histogram
    never reports a quantile outside the data.
    """

    def __init__(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        labels: LabelItems = (),
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("bucket bounds must be distinct")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # +1 overflow
        self._sum = 0.0
        self._count = 0
        self._min = float("inf")
        self._max = float("-inf")

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def observe(self, value: Union[int, float]) -> None:
        value = float(value)
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    def bucket_counts(self) -> Tuple[int, ...]:
        """Per-bucket counts, overflow last (not cumulative)."""
        return tuple(self._counts)

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 < q <= 1); NaN when empty."""
        if not 0 < q <= 1:
            raise ValueError("quantile must be in (0, 1]")
        if self._count == 0:
            return float("nan")
        target = q * self._count
        cumulative = 0
        lower = self._min
        for i, bound in enumerate(self.bounds):
            in_bucket = self._counts[i]
            if cumulative + in_bucket >= target and in_bucket > 0:
                fraction = (target - cumulative) / in_bucket
                estimate = lower + fraction * (bound - lower)
                return min(max(estimate, self._min), self._max)
            cumulative += in_bucket
            lower = bound
        return self._max

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)


class MetricRegistry:
    """Named instruments, created on first use, snapshotted on demand."""

    #: Whether instruments actually record (the null registry says no).
    active: bool = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, LabelItems], object] = {}
        register_shared(self, name=f"MetricRegistry@{id(self):x}")

    def _get(self, kind: type, name: str, labels: Mapping[str, str], **kwargs):
        if not METRIC_NAME_RE.match(name):
            raise ValueError(
                f"metric name {name!r} must match {METRIC_NAME_RE.pattern}"
            )
        key = (name, _label_items(labels))
        with self._lock:
            instrument = self._metrics.get(key)
            if instrument is None:
                instrument = kind(name, labels=key[1], **kwargs)
                self._metrics[key] = instrument
            elif not isinstance(instrument, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {kind.__name__}"
                )
            return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    def instruments(self) -> List[object]:
        """Every live instrument, sorted by (name, labels)."""
        with self._lock:
            items = sorted(self._metrics.items())
        return [instrument for _, instrument in items]

    def counter_value(self, name: str, **labels: str) -> float:
        """Current value of one counter series (0.0 if never touched)."""
        key = (name, _label_items(labels))
        instrument = self._metrics.get(key)
        return instrument.value if isinstance(instrument, Counter) else 0.0

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-data view: rendered series name -> kind + value(s)."""
        out: Dict[str, Dict[str, object]] = {}
        for instrument in self.instruments():
            series = render_series(instrument.name, instrument.labels)  # type: ignore[attr-defined]
            if isinstance(instrument, Counter):
                out[series] = {"kind": "counter", "value": instrument.value}
            elif isinstance(instrument, Gauge):
                out[series] = {"kind": "gauge", "value": instrument.value}
            elif isinstance(instrument, Histogram):
                out[series] = {
                    "kind": "histogram",
                    "count": instrument.count,
                    "sum": instrument.sum,
                    "p50": instrument.p50,
                    "p95": instrument.p95,
                    "p99": instrument.p99,
                }
        return out


class _NullCounter(Counter):
    def add(self, amount: Union[int, float] = 1) -> None:
        pass


class _NullGauge(Gauge):
    def set(self, value: Union[int, float]) -> None:
        pass


class _NullHistogram(Histogram):
    def observe(self, value: Union[int, float]) -> None:
        pass


class NullMetricRegistry(MetricRegistry):
    """The disabled path: every lookup returns a shared no-op instrument.

    Kept allocation-free after construction so instrumented code pays a
    dict-free attribute call and an early-returning method when
    telemetry is off.
    """

    active = False

    def __init__(self) -> None:
        super().__init__()
        self._counter = _NullCounter("null")
        self._gauge = _NullGauge("null")
        self._histogram = _NullHistogram("null")

    def counter(self, name: str, **labels: str) -> Counter:
        return self._counter

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._gauge

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._histogram

    def instruments(self) -> List[object]:
        return []
