"""repro.telemetry — tracing, metrics, and structured event export.

Production co-location controllers are operated through telemetry:
per-iteration optimizer overhead, QoS-violation windows, per-node
sample counts.  This subpackage provides that observability for the
reproduction without touching its determinism story:

* :class:`~repro.telemetry.clock.Clock` — injectable time source
  (:class:`SimulatedClock` by default, :class:`WallClock` for real
  runs; the only sanctioned wall-clock boundary in the package);
* :class:`~repro.telemetry.metrics.MetricRegistry` — thread-safe
  counters, gauges, and fixed-bucket histograms with p50/p95/p99;
* :class:`~repro.telemetry.tracer.Tracer` — context-manager spans with
  parent/child nesting, per-span attributes, and point events;
* exporters — JSONL event streams, Prometheus text format, and the
  ``repro-trace`` CLI that renders per-phase breakdowns and
  QoS-violation timelines from a JSONL file.

Instrumentation is off by default and near-free when off: every hook
routes through :data:`NULL_TELEMETRY`, whose registry and tracer are
shared no-op singletons.  Enable it per run::

    from repro.telemetry import Telemetry, WallClock

    tel = Telemetry.enabled(clock=WallClock())
    result = CLITEEngine(node, CLITEConfig(seed=0, telemetry=tel)).optimize()
    print(result.telemetry.phase_seconds)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from .clock import Clock, SimulatedClock, WallClock
from .metrics import (
    DEFAULT_BUCKETS,
    METRIC_NAME_RE,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NullMetricRegistry,
    render_series,
)
from .tracer import (
    NULL_TRACER,
    EventRecord,
    NullTracer,
    Span,
    SpanRecord,
    Tracer,
)


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Plain-data view of a telemetry session, embeddable in results.

    ``phase_seconds``/``phase_counts`` are computed over the span window
    the producer selected (e.g. one engine run), while the metric maps
    reflect the registry's cumulative state at snapshot time — a shared
    registry keeps accumulating across runs by design.
    """

    counters: Mapping[str, float]
    gauges: Mapping[str, float]
    histograms: Mapping[str, Mapping[str, float]]
    phase_seconds: Mapping[str, float]
    phase_counts: Mapping[str, int]
    span_count: int
    event_count: int
    dropped: int = 0


class Telemetry:
    """One run's telemetry context: clock + metric registry + tracer.

    Build enabled instances via :meth:`enabled`; the module-level
    :data:`NULL_TELEMETRY` singleton (returned by :meth:`disabled`) is
    the default everywhere instrumentation is threaded through.
    """

    active: bool = True

    def __init__(
        self,
        clock: Optional[Clock] = None,
        metrics: Optional[MetricRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.clock = clock if clock is not None else SimulatedClock()
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self.tracer = tracer if tracer is not None else Tracer(clock=self.clock)

    @classmethod
    def enabled(cls, clock: Optional[Clock] = None) -> "Telemetry":
        """A fresh recording context (simulated clock unless given one)."""
        return cls(clock=clock)

    @staticmethod
    def disabled() -> "Telemetry":
        """The shared no-op context."""
        return NULL_TELEMETRY

    def snapshot(self, spans_since: int = 0) -> TelemetrySnapshot:
        """Freeze the current state into a :class:`TelemetrySnapshot`.

        Args:
            spans_since: Only spans finished after this index (see
                :attr:`Tracer.finished_count`) enter the per-phase
                breakdown — producers use it to scope the breakdown to
                their own run on a shared tracer.
        """
        spans = self.tracer.finished(since=spans_since)
        totals = Tracer.phase_totals(spans)
        metric_snapshot = self.metrics.snapshot()
        counters = {
            series: data["value"]
            for series, data in metric_snapshot.items()
            if data["kind"] == "counter"
        }
        gauges = {
            series: data["value"]
            for series, data in metric_snapshot.items()
            if data["kind"] == "gauge"
        }
        histograms = {
            series: {k: v for k, v in data.items() if k != "kind"}
            for series, data in metric_snapshot.items()
            if data["kind"] == "histogram"
        }
        return TelemetrySnapshot(
            counters=counters,  # type: ignore[arg-type]
            gauges=gauges,  # type: ignore[arg-type]
            histograms=histograms,  # type: ignore[arg-type]
            phase_seconds={name: total for name, (_, total) in totals.items()},
            phase_counts={name: count for name, (count, _) in totals.items()},
            span_count=len(spans),
            event_count=len(self.tracer.events()),
            dropped=self.tracer.dropped,
        )


class _NullTelemetry(Telemetry):
    """Disabled context: shared no-op registry and tracer."""

    active = False

    def __init__(self) -> None:
        super().__init__(
            clock=SimulatedClock(),
            metrics=NullMetricRegistry(),
            tracer=NULL_TRACER,
        )


#: The package-wide disabled context; instrumented components default to it.
NULL_TELEMETRY = _NullTelemetry()

from .export import (  # noqa: E402  (exporters need the facade types above)
    prometheus_text,
    read_jsonl,
    telemetry_records,
    write_jsonl,
)
from .serve import (  # noqa: E402  (serves the exporters)
    MetricsServer,
    make_server,
    registry_from_records,
)

__all__ = [
    "Clock",
    "Counter",
    "DEFAULT_BUCKETS",
    "EventRecord",
    "Gauge",
    "Histogram",
    "METRIC_NAME_RE",
    "MetricRegistry",
    "MetricsServer",
    "NULL_TELEMETRY",
    "NULL_TRACER",
    "NullMetricRegistry",
    "NullTracer",
    "SimulatedClock",
    "Span",
    "SpanRecord",
    "Telemetry",
    "TelemetrySnapshot",
    "Tracer",
    "WallClock",
    "make_server",
    "prometheus_text",
    "read_jsonl",
    "registry_from_records",
    "render_series",
    "telemetry_records",
    "write_jsonl",
]
