"""Injectable clocks: the one sanctioned wall-clock boundary.

Everything in ``repro.telemetry`` timestamps through a :class:`Clock` so
the same instrumentation is deterministic in tests (a
:class:`SimulatedClock` advanced by hand) and measures real elapsed time
in production runs (a :class:`WallClock`).  This module is the *only*
place in the package allowed to read the host's wall clock — repro-lint
RPL104 bans wall-clock reads everywhere else, and its autofix hint
points here.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod


class Clock(ABC):
    """A monotonic time source reporting seconds as a float.

    Implementations must be monotonic (``now()`` never decreases) and
    cheap — ``now()`` sits on the per-observation hot path.
    """

    @abstractmethod
    def now(self) -> float:
        """Current time in seconds from an arbitrary origin."""


class SimulatedClock(Clock):
    """A clock that only moves when told to — the deterministic default.

    Tests (and any run where telemetry must not perturb determinism
    checks) tick it explicitly, so two identical runs see identical
    timestamps.  Not thread-safe for concurrent ``tick``; concurrent
    ``now`` reads are fine (a float load is atomic in CPython).
    """

    def __init__(self, start_s: float = 0.0) -> None:
        self._now_s = float(start_s)

    def now(self) -> float:
        return self._now_s

    def tick(self, seconds: float) -> float:
        """Advance the clock and return the new time."""
        if seconds < 0:
            raise ValueError("a clock cannot run backwards")
        self._now_s += seconds
        return self._now_s


class WallClock(Clock):
    """Real elapsed time via the host's monotonic performance counter.

    The single sanctioned RPL104 suppression in the package lives here:
    every real-run timing measurement must route through this class so
    determinism-sensitive code paths can swap in a
    :class:`SimulatedClock` without edits.
    """

    def now(self) -> float:
        return time.perf_counter()  # repro-lint: disable=RPL104
