"""Span-based tracing with parent/child nesting and point events.

Spans are opened as context managers (``with tracer.span("engine.bootstrap",
jobs=3) as span:``) and close themselves on exit, timestamped through the
tracer's injectable :class:`~repro.telemetry.clock.Clock`.  Nesting is
tracked per thread, so concurrent engine runs under the
``verify_workers`` pool each get their own parent/child chains while
sharing one finished-span log.

repro-lint RPL502 statically enforces the ``with`` discipline: a span
that is opened but never closed would silently corrupt the per-phase
breakdown the ``repro-trace`` CLI reports.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from types import TracebackType
from typing import Dict, List, Mapping, Optional, Tuple, Type, Union

from .clock import Clock, SimulatedClock

AttrValue = Union[str, int, float, bool, None]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: what happened, when, and under which parent."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start_s: float
    end_s: float
    attributes: Mapping[str, AttrValue]

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass(frozen=True)
class EventRecord:
    """A point-in-time event (e.g. one QoS violation window)."""

    name: str
    time_s: float
    attributes: Mapping[str, AttrValue]


class Span:
    """A live span; use only as a context manager."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "_start_s", "_attrs")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: Dict[str, AttrValue],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = -1  # assigned on __enter__
        self.parent_id: Optional[int] = None
        self._start_s = 0.0
        self._attrs = attrs

    def set(self, key: str, value: AttrValue) -> None:
        """Attach or overwrite one attribute on the live span."""
        self._attrs[key] = value

    def __enter__(self) -> "Span":
        self._tracer._open(self)
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        if exc_type is not None:
            self._attrs["error"] = exc_type.__name__
        self._tracer._close(self)


class _NullSpan:
    """Shared no-op span for the disabled path."""

    __slots__ = ()

    def set(self, key: str, value: AttrValue) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects finished spans and events, in memory, thread-safely.

    Args:
        clock: Time source for span boundaries and event stamps.
        max_records: Cap on retained spans + events; once reached, new
            records are counted in :attr:`dropped` instead of stored, so
            a runaway loop cannot exhaust memory through telemetry.
    """

    active: bool = True

    def __init__(
        self,
        clock: Optional[Clock] = None,
        max_records: int = 200_000,
    ) -> None:
        if max_records < 1:
            raise ValueError("max_records must be >= 1")
        self.clock = clock if clock is not None else SimulatedClock()
        self.max_records = max_records
        self.dropped = 0
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._finished: List[SpanRecord] = []
        self._events: List[EventRecord] = []
        self._stacks = threading.local()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: AttrValue) -> Span:
        """Open a span; must be used as ``with tracer.span(...):``."""
        return Span(self, name, dict(attrs))

    def event(self, name: str, **attrs: AttrValue) -> None:
        """Record a point event at the current clock time."""
        record = EventRecord(
            name=name, time_s=self.clock.now(), attributes=dict(attrs)
        )
        with self._lock:
            if len(self._finished) + len(self._events) >= self.max_records:
                self.dropped += 1
                return
            self._events.append(record)

    def _stack(self) -> List[int]:
        stack = getattr(self._stacks, "open_ids", None)
        if stack is None:
            stack = []
            self._stacks.open_ids = stack
        return stack

    def _open(self, span: Span) -> None:
        stack = self._stack()
        span.parent_id = stack[-1] if stack else None
        with self._lock:
            span.span_id = next(self._ids)
        stack.append(span.span_id)
        span._start_s = self.clock.now()

    def _close(self, span: Span) -> None:
        end_s = self.clock.now()
        stack = self._stack()
        if stack and stack[-1] == span.span_id:
            stack.pop()
        record = SpanRecord(
            name=span.name,
            span_id=span.span_id,
            parent_id=span.parent_id,
            start_s=span._start_s,
            end_s=end_s,
            attributes=dict(span._attrs),
        )
        with self._lock:
            if len(self._finished) + len(self._events) >= self.max_records:
                self.dropped += 1
                return
            self._finished.append(record)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def finished_count(self) -> int:
        return len(self._finished)

    def finished(self, since: int = 0) -> Tuple[SpanRecord, ...]:
        """Finished spans, optionally only those after index ``since``."""
        with self._lock:
            return tuple(self._finished[since:])

    def events(self) -> Tuple[EventRecord, ...]:
        with self._lock:
            return tuple(self._events)

    @staticmethod
    def phase_totals(
        spans: Tuple[SpanRecord, ...]
    ) -> Dict[str, Tuple[int, float]]:
        """Per-span-name ``(count, total seconds)`` over a span set."""
        totals: Dict[str, Tuple[int, float]] = {}
        for record in spans:
            count, total = totals.get(record.name, (0, 0.0))
            totals[record.name] = (count + 1, total + record.duration_s)
        return totals


class NullTracer(Tracer):
    """The disabled path: hands out the shared no-op span, records nothing."""

    active = False

    def __init__(self) -> None:
        super().__init__(clock=SimulatedClock())

    def span(self, name: str, **attrs: AttrValue) -> Span:
        return NULL_SPAN  # type: ignore[return-value]

    def event(self, name: str, **attrs: AttrValue) -> None:
        pass


#: Shared no-op tracer for components that take a tracer (not a full
#: :class:`~repro.telemetry.Telemetry`) and default to disabled.
NULL_TRACER = NullTracer()
