"""``repro-trace``: human-readable views of a JSONL telemetry trace.

Subcommands:

* ``summary``  — per-phase time breakdown (span name, count, total,
  mean, share of traced time) plus trace-level totals;
* ``timeline`` — the QoS story over time: violation events, monitor
  triggers, and re-invocations in time order;
* ``metrics``  — the metric snapshot lines (counters, gauges,
  histogram quantiles);
* ``diff``     — compare two traces' phase breakdowns and fail (exit
  1) when a phase regressed beyond ``--threshold``;
* ``serve``    — re-export a trace's metrics over HTTP in Prometheus
  text format (a scrape target for a finished run).

Produce traces with ``repro-clite run ... --trace FILE`` or
:func:`repro.telemetry.write_jsonl`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from .export import read_jsonl
from .serve import make_server, registry_from_records

#: Event names the timeline view knows how to narrate.
_TIMELINE_EVENTS = {
    "qos.violation": "QoS VIOLATION",
    "monitor.trigger": "monitor trigger",
    "dynamic.reinvocation": "re-invocation",
}

#: Default relative slowdown beyond which ``diff`` calls a regression.
DEFAULT_DIFF_THRESHOLD = 0.10


def _format_table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: List[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def _seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.3f}s"
    return f"{value * 1e3:.3f}ms"


def _load(path: str) -> List[Dict[str, object]]:
    """Read one trace, mapping I/O and parse errors to SystemExit(2)."""
    try:
        return read_jsonl(path)
    except (OSError, ValueError) as exc:
        print(f"repro-trace: {exc}", file=sys.stderr)
        raise SystemExit(2)


def _phase_totals(
    records: List[Dict[str, object]],
) -> Dict[str, Tuple[int, float]]:
    """Span name -> (count, total seconds)."""
    totals: Dict[str, Tuple[int, float]] = {}
    for record in records:
        if record["type"] != "span":
            continue
        name = str(record["name"])
        count, total = totals.get(name, (0, 0.0))
        totals[name] = (count + 1, total + float(record["duration_s"]))  # type: ignore[arg-type]
    return totals


def cmd_summary(args: argparse.Namespace) -> int:
    records = _load(args.trace)
    spans = [r for r in records if r["type"] == "span"]
    events = [r for r in records if r["type"] == "event"]
    if not spans:
        print("no spans in trace")
        return 0
    phases: Dict[str, List[float]] = {}
    for span in spans:
        phases.setdefault(str(span["name"]), []).append(
            float(span["duration_s"])  # type: ignore[arg-type]
        )
    start = min(float(s["start_s"]) for s in spans)  # type: ignore[arg-type]
    end = max(float(s["end_s"]) for s in spans)  # type: ignore[arg-type]
    wall = max(end - start, 0.0)
    rows = []
    for name, durations in sorted(
        phases.items(), key=lambda kv: -sum(kv[1])
    ):
        total = sum(durations)
        rows.append(
            [
                name,
                str(len(durations)),
                _seconds(total),
                _seconds(total / len(durations)),
                f"{total / wall:.1%}" if wall > 0 else "-",
            ]
        )
    print(_format_table(["phase", "count", "total", "mean", "of trace"], rows))
    print(
        f"\nspans: {len(spans)}   events: {len(events)}   "
        f"traced time: {_seconds(wall)}"
    )
    return 0


def _event_time(record: Dict[str, object]) -> float:
    """Simulated node time when the event carries one, else the stamp.

    Instrumented components attach ``node_time_s`` so the QoS story
    reads in the server's own timeline even when the tracer runs on a
    wall clock.
    """
    attrs = record.get("attributes") or {}
    if isinstance(attrs, dict) and "node_time_s" in attrs:
        return float(attrs["node_time_s"])  # type: ignore[arg-type]
    return float(record["time_s"])  # type: ignore[arg-type]


def cmd_timeline(args: argparse.Namespace) -> int:
    records = _load(args.trace)
    events = [
        r
        for r in records
        if r["type"] == "event" and str(r["name"]) in _TIMELINE_EVENTS
    ]
    if not events:
        print("no QoS events in trace (telemetry on a violation-free run?)")
        return 0
    events.sort(key=_event_time)
    violations = 0
    for event in events:
        name = str(event["name"])
        attrs = event.get("attributes") or {}
        detail = "  ".join(
            f"{key}={value}"
            for key, value in sorted(attrs.items())  # type: ignore[union-attr]
            if key != "node_time_s"
        )
        print(
            f"t={_event_time(event):10.2f}s  "
            f"{_TIMELINE_EVENTS[name]:16s} {detail}"
        )
        if name == "qos.violation":
            violations += 1
    print(f"\n{violations} QoS-violation window(s), {len(events)} event(s)")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    records = _load(args.trace)
    metrics = [r for r in records if r["type"] == "metric"]
    if not metrics:
        print("no metrics in trace")
        return 0
    rows = []
    for record in sorted(metrics, key=lambda r: str(r["series"])):
        kind = str(record["kind"])
        if kind == "histogram":
            value = (
                f"count={record['count']} sum={float(record['sum']):.6g} "  # type: ignore[arg-type]
                f"p50={float(record['p50']):.6g} "  # type: ignore[arg-type]
                f"p95={float(record['p95']):.6g} "  # type: ignore[arg-type]
                f"p99={float(record['p99']):.6g}"  # type: ignore[arg-type]
            )
        else:
            value = f"{float(record['value']):.6g}"  # type: ignore[arg-type]
        rows.append([str(record["series"]), kind, value])
    print(_format_table(["series", "kind", "value"], rows))
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    """Phase-by-phase comparison of two traces, with a verdict.

    A phase regresses when its total time grows by more than
    ``--threshold`` (relative), or when it is new in the AFTER trace
    with nonzero time (growth from zero is unbounded).  Phases that
    only exist in BEFORE read as improvements and never fail the diff.
    """
    before = _phase_totals(_load(args.before))
    after = _phase_totals(_load(args.after))
    if not before and not after:
        print("no spans in either trace")
        return 0
    rows: List[List[str]] = []
    regressions: List[str] = []
    for name in sorted(set(before) | set(after), key=lambda n: n):
        b_count, b_total = before.get(name, (0, 0.0))
        a_count, a_total = after.get(name, (0, 0.0))
        delta = a_total - b_total
        if b_total > 0.0:
            change = delta / b_total
            verdict = "slower" if change > args.threshold else (
                "faster" if change < -args.threshold else "~"
            )
            change_cell = f"{change:+.1%}"
            if change > args.threshold:
                regressions.append(name)
        elif a_total > 0.0:
            verdict, change_cell = "new", "new"
            regressions.append(name)
        else:
            verdict, change_cell = "~", "-"
        if a_count == 0:
            verdict, change_cell = "gone", "gone"
        rows.append(
            [
                name,
                f"{b_count}x {_seconds(b_total)}" if b_count else "-",
                f"{a_count}x {_seconds(a_total)}" if a_count else "-",
                f"{delta:+.6f}s",
                change_cell,
                verdict,
            ]
        )
    print(
        _format_table(
            ["phase", "before", "after", "delta", "change", "verdict"], rows
        )
    )
    b_sum = sum(t for _, t in before.values())
    a_sum = sum(t for _, t in after.values())
    print(
        f"\ntotal traced time: {_seconds(b_sum)} -> {_seconds(a_sum)} "
        f"({a_sum - b_sum:+.6f}s)"
    )
    if regressions:
        print(
            f"REGRESSION: {len(regressions)} phase(s) beyond the "
            f"{args.threshold:.0%} threshold: {', '.join(sorted(regressions))}"
        )
        return 1
    print(f"no regression (threshold {args.threshold:.0%})")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve a trace's metric snapshot as a Prometheus scrape target."""
    records = _load(args.trace)
    registry = registry_from_records(records)
    if not registry.instruments():
        print("no metrics in trace; serving an empty exposition", file=sys.stderr)
    server = make_server(registry, host=args.host, port=args.port)
    print(f"serving {args.trace} at {server.url}", flush=True)
    try:
        if args.requests is not None:
            for _ in range(args.requests):
                server.handle_request()
        else:
            server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Render a repro.telemetry JSONL trace for humans",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, handler, help_text in (
        ("summary", cmd_summary, "per-phase time breakdown"),
        ("timeline", cmd_timeline, "QoS violations and re-invocations over time"),
        ("metrics", cmd_metrics, "counter/gauge/histogram snapshot"),
    ):
        command = sub.add_parser(name, help=help_text)
        command.add_argument("trace", help="path to a JSONL trace file")
        command.set_defaults(handler=handler)

    diff = sub.add_parser(
        "diff", help="compare two traces' phase breakdowns"
    )
    diff.add_argument("before", help="baseline JSONL trace")
    diff.add_argument("after", help="candidate JSONL trace")
    diff.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_DIFF_THRESHOLD,
        help="relative slowdown that counts as a regression "
        f"(default {DEFAULT_DIFF_THRESHOLD:.0%})",
    )
    diff.set_defaults(handler=cmd_diff)

    serve = sub.add_parser(
        "serve", help="serve a trace's metrics in Prometheus text format"
    )
    serve.add_argument("trace", help="path to a JSONL trace file")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=0, help="bind port (0 = ephemeral)"
    )
    serve.add_argument(
        "--requests",
        type=int,
        default=None,
        help="exit after serving N requests (default: serve forever)",
    )
    serve.set_defaults(handler=cmd_serve)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except SystemExit as exc:  # _load's error path
        code = exc.code
        return code if isinstance(code, int) else 2
    except BrokenPipeError:  # e.g. `repro-trace summary t.jsonl | head`
        return 0


if __name__ == "__main__":
    sys.exit(main())
