"""``repro-trace``: human-readable views of a JSONL telemetry trace.

Subcommands:

* ``summary``  — per-phase time breakdown (span name, count, total,
  mean, share of traced time) plus trace-level totals;
* ``timeline`` — the QoS story over time: violation events, monitor
  triggers, and re-invocations in time order;
* ``metrics``  — the metric snapshot lines (counters, gauges,
  histogram quantiles).

Produce traces with ``repro-clite run ... --trace FILE`` or
:func:`repro.telemetry.write_jsonl`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from .export import read_jsonl

#: Event names the timeline view knows how to narrate.
_TIMELINE_EVENTS = {
    "qos.violation": "QoS VIOLATION",
    "monitor.trigger": "monitor trigger",
    "dynamic.reinvocation": "re-invocation",
}


def _format_table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: List[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def _seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.3f}s"
    return f"{value * 1e3:.3f}ms"


def cmd_summary(records: List[Dict[str, object]]) -> int:
    spans = [r for r in records if r["type"] == "span"]
    events = [r for r in records if r["type"] == "event"]
    if not spans:
        print("no spans in trace")
        return 0
    phases: Dict[str, List[float]] = {}
    for span in spans:
        phases.setdefault(str(span["name"]), []).append(
            float(span["duration_s"])  # type: ignore[arg-type]
        )
    start = min(float(s["start_s"]) for s in spans)  # type: ignore[arg-type]
    end = max(float(s["end_s"]) for s in spans)  # type: ignore[arg-type]
    wall = max(end - start, 0.0)
    rows = []
    for name, durations in sorted(
        phases.items(), key=lambda kv: -sum(kv[1])
    ):
        total = sum(durations)
        rows.append(
            [
                name,
                str(len(durations)),
                _seconds(total),
                _seconds(total / len(durations)),
                f"{total / wall:.1%}" if wall > 0 else "-",
            ]
        )
    print(_format_table(["phase", "count", "total", "mean", "of trace"], rows))
    print(
        f"\nspans: {len(spans)}   events: {len(events)}   "
        f"traced time: {_seconds(wall)}"
    )
    return 0


def _event_time(record: Dict[str, object]) -> float:
    """Simulated node time when the event carries one, else the stamp.

    Instrumented components attach ``node_time_s`` so the QoS story
    reads in the server's own timeline even when the tracer runs on a
    wall clock.
    """
    attrs = record.get("attributes") or {}
    if isinstance(attrs, dict) and "node_time_s" in attrs:
        return float(attrs["node_time_s"])  # type: ignore[arg-type]
    return float(record["time_s"])  # type: ignore[arg-type]


def cmd_timeline(records: List[Dict[str, object]]) -> int:
    events = [
        r
        for r in records
        if r["type"] == "event" and str(r["name"]) in _TIMELINE_EVENTS
    ]
    if not events:
        print("no QoS events in trace (telemetry on a violation-free run?)")
        return 0
    events.sort(key=_event_time)
    violations = 0
    for event in events:
        name = str(event["name"])
        attrs = event.get("attributes") or {}
        detail = "  ".join(
            f"{key}={value}"
            for key, value in sorted(attrs.items())  # type: ignore[union-attr]
            if key != "node_time_s"
        )
        print(
            f"t={_event_time(event):10.2f}s  "
            f"{_TIMELINE_EVENTS[name]:16s} {detail}"
        )
        if name == "qos.violation":
            violations += 1
    print(f"\n{violations} QoS-violation window(s), {len(events)} event(s)")
    return 0


def cmd_metrics(records: List[Dict[str, object]]) -> int:
    metrics = [r for r in records if r["type"] == "metric"]
    if not metrics:
        print("no metrics in trace")
        return 0
    rows = []
    for record in sorted(metrics, key=lambda r: str(r["series"])):
        kind = str(record["kind"])
        if kind == "histogram":
            value = (
                f"count={record['count']} sum={float(record['sum']):.6g} "  # type: ignore[arg-type]
                f"p50={float(record['p50']):.6g} "  # type: ignore[arg-type]
                f"p95={float(record['p95']):.6g} "  # type: ignore[arg-type]
                f"p99={float(record['p99']):.6g}"  # type: ignore[arg-type]
            )
        else:
            value = f"{float(record['value']):.6g}"  # type: ignore[arg-type]
        rows.append([str(record["series"]), kind, value])
    print(_format_table(["series", "kind", "value"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Render a repro.telemetry JSONL trace for humans",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, handler, help_text in (
        ("summary", cmd_summary, "per-phase time breakdown"),
        ("timeline", cmd_timeline, "QoS violations and re-invocations over time"),
        ("metrics", cmd_metrics, "counter/gauge/histogram snapshot"),
    ):
        command = sub.add_parser(name, help=help_text)
        command.add_argument("trace", help="path to a JSONL trace file")
        command.set_defaults(handler=handler)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        records = read_jsonl(args.trace)
    except (OSError, ValueError) as exc:
        print(f"repro-trace: {exc}", file=sys.stderr)
        return 2
    return args.handler(records)


if __name__ == "__main__":
    sys.exit(main())
