"""Explicit RNG threading (the runtime half of repro-lint RPL101).

Seed-determinism only holds if every randomized component draws from a
generator the engine seeded.  Components therefore never fall back to
fresh OS entropy: they accept a ``np.random.Generator`` or an integer
seed, and refuse ``None`` loudly so a forgotten hand-off fails at
construction instead of as unreproducible results three figures later.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

#: What randomized components accept: a generator or an explicit seed.
RNGLike = Union[np.random.Generator, int, np.integer]


def resolve_rng(rng: Optional[RNGLike], *, owner: str) -> np.random.Generator:
    """Return a :class:`np.random.Generator` from an explicit source.

    Args:
        rng: A generator (used as-is, typically the engine's shared
            stream) or an integer seed (a fresh seeded generator).
        owner: Component name for the error message.

    Raises:
        ValueError: if ``rng`` is ``None`` — randomness must be threaded
            from the engine's seed (``CLITEConfig.seed``), never
            defaulted from fresh entropy.
        TypeError: if ``rng`` is neither a generator nor an integer.
    """
    if rng is None:
        raise ValueError(
            f"{owner} requires an explicit np.random.Generator or integer "
            "seed; thread the engine's seeded rng (CLITEConfig.seed) "
            "instead of relying on fresh entropy"
        )
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(
        f"{owner}: rng must be a np.random.Generator or int seed, "
        f"got {type(rng).__name__}"
    )
