"""Quantity aliases: the unit vocabulary of the partition math.

CLITE's control loop is arithmetic over quantities with mutually
incompatible units — discrete resource units (cores, LLC ways, membw
slices; Eqs. 5-6), normalized unit-cube coordinates in [0, 1] that the
Gaussian process optimizes over, tail latencies (seconds *and*
milliseconds), arrival/service rates, and dimensionless fractions.
This module gives each of those families a *named* ``TypeAlias`` so the
units are visible in every signature, and ``repro-lint``'s UNITS family
(RPL701-705, :mod:`repro.analysis.units`) reads the alias names off
annotations and propagates them interprocedurally: adding ``Seconds``
to ``Millis``, feeding a raw allocation into a unit-cube API, or
comparing a QoS target against a measurement in the wrong time domain
becomes a static finding instead of a silently shrunken feasible
region.

The aliases are intentionally plain ``float``/``int`` aliases rather
than ``NewType`` wrappers: they cost nothing at runtime, they stay
assignment-compatible under mypy (the hot path never boxes a float),
and the *checker* — not the type system — carries the proof, exactly
the way the determinism and thread-safety families work.

Conventions:

* ``*_s`` names and ``Seconds`` values are wall/simulated seconds;
  ``*_ms`` names and ``Millis`` values are milliseconds.  Convert only
  through :func:`to_seconds` / :func:`to_millis` (or an explicit
  ``* 1000.0`` / ``/ 1000.0``, which the checker also understands).
* ``Cores`` / ``CacheWays`` / ``MembwUnits`` are discrete allocation
  units (Eq. 5 floors them at 1 per job).
* ``UnitCube`` values live in [0, 1]; everything entering
  ``from_unit_cube*`` must be provably inside the cube (RPL702).
* ``Fraction`` is a dimensionless ratio in [0, 1] (load fractions,
  shares, scores); ``Rate`` is per-second (QPS, service rates).
"""

from __future__ import annotations

from typing import TypeAlias

#: Discrete allocation units of one resource (Eq. 5 floors them at 1).
Cores: TypeAlias = int
CacheWays: TypeAlias = int
MembwUnits: TypeAlias = int

#: A coordinate of the GP's normalized search cube, in [0, 1].
UnitCube: TypeAlias = float

#: Wall or simulated time in seconds.
Seconds: TypeAlias = float

#: Tail latency (and other durations) in milliseconds.
Millis: TypeAlias = float

#: Per-second rates: arrival QPS, service rates, throughputs.
Rate: TypeAlias = float

#: A dimensionless ratio in [0, 1]: load fractions, shares, Eq. 3 scores.
Fraction: TypeAlias = float

#: Explicitly unitless quantities (counts, multipliers, exponents).
Dimensionless: TypeAlias = float

#: The one sanctioned conversion factor between the two time domains.
MS_PER_S: Dimensionless = 1000.0


def to_seconds(value_ms: Millis) -> Seconds:
    """Convert milliseconds to seconds (the only sanctioned direction API)."""
    return value_ms / MS_PER_S


def to_millis(value_s: Seconds) -> Millis:
    """Convert seconds to milliseconds."""
    return value_s * MS_PER_S
