"""Dropout-copy dimensionality reduction (Sec. 4).

BO degrades in high-dimensional spaces, and a co-location with J jobs
and R resources has J x R dimensions.  CLITE adapts the "dropout-copy"
idea: hold some dimensions at the best value sampled so far while
optimizing the rest.  Instead of dropping *random* dimensions, CLITE
drops the whole allocation of the **job performing best so far** (met
or closest to its QoS), pinned to the allocation it performed best
with.  Exactly one job is dropped — dropping more is known to prevent
finding the optimum — and a small probability of picking a random job
instead keeps the choice from locking in early (the paper credits this
probabilistic factor for CLITE's small residual run-to-run variability,
Fig. 11).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..resources.allocation import Configuration
from ..server.node import LC_ROLE, Node, Observation
from .rng import RNGLike, resolve_rng
from .units import Fraction


@dataclass(frozen=True)
class DropoutDecision:
    """Which job to pin, and the allocation row to pin it at.

    ``job_index is None`` means no dropout this round (e.g. a
    single-job node, or dropout disabled).
    """

    job_index: Optional[int]
    allocation: Optional[Tuple[int, ...]]


def job_performance(observation: Observation, job_name: str) -> Fraction:
    """A job's scalar performance within one observation, in [0, 1].

    LC jobs report QoS progress ``min(1, target/latency)``; BG jobs
    report throughput normalized to isolation.
    """
    reading = observation.job(job_name)
    if reading.role == LC_ROLE:
        if math.isinf(reading.p95_ms):
            return 0.0
        return reading.qos_ratio
    return min(1.0, reading.throughput_norm)


class DropoutCopy:
    """Tracks per-job bests and chooses the job to pin each round.

    Args:
        random_job_prob: Probability of pinning a uniformly random job
            instead of the best performer.
        enabled: Disable to run the no-dropout ablation.
        rng: Random generator shared with the engine, or an explicit
            integer seed.  Required: the probabilistic job pick is the
            paper's source of residual run-to-run variability (Fig. 11),
            so it must draw from the engine's seeded stream (RPL101).
    """

    def __init__(
        self,
        random_job_prob: Fraction = 0.1,
        enabled: bool = True,
        rng: Optional[RNGLike] = None,
    ) -> None:
        if not 0 <= random_job_prob <= 1:
            raise ValueError(
                f"random_job_prob must be in [0, 1], got {random_job_prob}"
            )
        self.random_job_prob = random_job_prob
        self.enabled = enabled
        self._rng = resolve_rng(rng, owner="DropoutCopy")
        self._best_perf: Dict[str, float] = {}
        self._best_row: Dict[str, Tuple[int, ...]] = {}

    def update(self, config: Configuration, observation: Observation, node: Node) -> None:
        """Fold one sample into the per-job best-performance records."""
        for job_index, job in enumerate(node.jobs):
            perf = job_performance(observation, job.name)
            if perf >= self._best_perf.get(job.name, -1.0):
                self._best_perf[job.name] = perf
                self._best_row[job.name] = config.job_allocation(job_index)

    def best_performance(self, job_name: str) -> Optional[float]:
        return self._best_perf.get(job_name)

    def choose(self, node: Node) -> DropoutDecision:
        """Pick the job to pin for the next acquisition optimization."""
        if not self.enabled or node.n_jobs < 2 or not self._best_perf:
            return DropoutDecision(None, None)
        names: Sequence[str] = node.job_names()
        if self._rng.random() < self.random_job_prob:
            pick = int(self._rng.integers(node.n_jobs))
        else:
            pick = max(
                range(node.n_jobs),
                key=lambda i: self._best_perf.get(names[i], -1.0),
            )
        row = self._best_row.get(names[pick])
        if row is None:  # pragma: no cover - update() always fills both maps
            return DropoutDecision(None, None)
        return DropoutDecision(job_index=pick, allocation=row)
