"""The CLITE objective-score function (Eq. 3).

CLITE cannot feed BO a raw "throughput" number because its objective is
a *set* of goals: meet every LC job's QoS, then maximize BG performance.
Eq. 3 folds these into one smooth scalar in [0, 1]:

* **mode 1** — some LC job misses its QoS: half the geometric mean of
  each LC job's QoS progress ``min(1, target / latency)``.  Never
  exceeds 0.5, and rises smoothly as jobs get closer to their targets
  (the paper stresses that a flat 0-for-violation score would strand
  the search).
* **mode 2** — every LC job meets QoS: ``0.5 + 0.5 x`` the geometric
  mean of each BG job's throughput normalized to its isolated
  performance (sampled during the bootstrap phase).  With no BG jobs
  co-located, LC latency improvement relative to isolation takes the
  BG term's place, so CLITE keeps optimizing past the QoS bar.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Optional

from ..server.node import BG_ROLE, JobObservation, Observation
from .units import Fraction

#: Scores live in [0, 1]; QoS-meeting configurations score above this.
QOS_MET_THRESHOLD: Fraction = 0.5


def _geometric_mean(factors: Iterable[float]) -> float:
    values = list(factors)
    if not values:
        raise ValueError("geometric mean of an empty set")
    if any(v < 0 for v in values):
        raise ValueError(f"factors must be >= 0, got {values}")
    if any(v == 0 for v in values):
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


class ScoreFunction:
    """Eq. 3, with isolation baselines learned from bootstrap samples.

    The controller measures each job's isolated performance once, from
    the per-job maximum-allocation bootstrap configurations (Sec. 4);
    those readings become the ``Iso-Perf`` denominators here.  Nothing
    model-internal leaks in: only observed counter readings are used.
    """

    def __init__(self) -> None:
        self._iso_bg_perf: Dict[str, float] = {}
        self._iso_lc_latency: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Baselines
    # ------------------------------------------------------------------
    def record_isolation(self, job_name: str, observation: Observation) -> None:
        """Record ``job_name``'s reading as its isolated baseline.

        Call with the observation of the bootstrap configuration that
        gave ``job_name`` the maximum allocation.
        """
        reading = observation.job(job_name)
        if reading.role == BG_ROLE:
            if reading.throughput_norm > 0:
                self._iso_bg_perf[job_name] = reading.throughput_norm
        elif math.isfinite(reading.p95_ms) and reading.p95_ms > 0:
            self._iso_lc_latency[job_name] = reading.p95_ms

    def iso_bg_perf(self, job_name: str) -> Optional[float]:
        return self._iso_bg_perf.get(job_name)

    def iso_lc_latency(self, job_name: str) -> Optional[float]:
        return self._iso_lc_latency.get(job_name)

    # ------------------------------------------------------------------
    # Eq. 3
    # ------------------------------------------------------------------
    def _qos_progress(self, job: JobObservation) -> float:
        """``min(1, target / latency)`` — 0 for a saturated queue."""
        if math.isinf(job.p95_ms):
            return 0.0
        return job.qos_ratio

    def _bg_performance(self, job: JobObservation) -> float:
        """``Colo-Perf / Iso-Perf`` clipped to [0, 1]."""
        baseline = self._iso_bg_perf.get(job.name, 1.0)
        return min(1.0, job.throughput_norm / baseline)

    def _lc_performance(self, job: JobObservation) -> float:
        """``Iso-Latency / Colo-Latency`` clipped to [0, 1] (no-BG mode)."""
        if math.isinf(job.p95_ms) or job.p95_ms <= 0:
            return 0.0
        baseline = self._iso_lc_latency.get(job.name, job.qos_target_ms)
        return min(1.0, baseline / job.p95_ms)

    def __call__(self, observation: Observation) -> Fraction:
        """Score an observation per Eq. 3; result is in [0, 1]."""
        lc_jobs = observation.lc_jobs
        bg_jobs = observation.bg_jobs
        if not lc_jobs and not bg_jobs:
            raise ValueError("observation has no jobs to score")

        if lc_jobs and not observation.all_qos_met:
            return 0.5 * _geometric_mean(
                self._qos_progress(job) for job in lc_jobs
            )
        if bg_jobs:
            tail = _geometric_mean(self._bg_performance(job) for job in bg_jobs)
        else:
            tail = _geometric_mean(self._lc_performance(job) for job in lc_jobs)
        return 0.5 + 0.5 * tail


def qos_met(score: Fraction) -> bool:
    """Whether a score implies every LC job met QoS (mode 2 of Eq. 3)."""
    return score >= QOS_MET_THRESHOLD
