"""Bootstrapping configuration samples (Sec. 4).

Instead of random seeding, CLITE constructs an informed initial set:

1. the **equal partition** — every resource divided as evenly as
   possible among the co-located jobs, a sensible center point;
2. one **maximum-allocation extremum per job** — that job receives
   every unit of every resource except the one-unit floor the others
   keep.  These points (a) anchor the surrogate at the corners of the
   search space, (b) provide each job's isolated-performance baseline
   for the Eq. 3 score, and (c) immediately expose LC jobs that cannot
   meet their QoS even with everything — such jobs should be scheduled
   elsewhere without wasting any BO cycles.

That is ``n_jobs + 1`` samples, which is also the paper's default
initial-sample count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..resources.allocation import Configuration, ConfigurationSpace
from ..server.node import LC_ROLE, Node, Observation
from .score import ScoreFunction


@dataclass(frozen=True)
class BootstrapResult:
    """Outcome of the bootstrap phase.

    Attributes:
        configs: The configurations sampled, in order (equal partition
            first, then one maximum-allocation extremum per job).
        observations: The corresponding (noisy) observations.
        scores: Eq. 3 score of each observation, after isolation
            baselines were recorded.
        infeasible_jobs: Names of LC jobs that violated their QoS even
            under their own maximum allocation — no partition can save
            them in this mix.
    """

    configs: Tuple[Configuration, ...]
    observations: Tuple[Observation, ...]
    scores: Tuple[float, ...]
    infeasible_jobs: Tuple[str, ...]


def bootstrap_configurations(space: ConfigurationSpace) -> List[Configuration]:
    """The informed initial set: equal partition + per-job extrema."""
    configs = [space.equal_partition()]
    configs.extend(space.max_allocation(j) for j in range(space.n_jobs))
    return configs


def run_bootstrap(node: Node, score_fn: ScoreFunction) -> BootstrapResult:
    """Sample the bootstrap set on ``node`` and fill in baselines.

    The per-job extremum observations are recorded as that job's
    isolated baseline *before* any scores are computed, so every score
    (including the bootstrap samples' own) uses the same normalization.
    """
    configs = bootstrap_configurations(node.space)
    observations = [node.observe(config) for config in configs]

    infeasible: List[str] = []
    for job_index, job in enumerate(node.jobs):
        extremum_obs = observations[1 + job_index]
        score_fn.record_isolation(job.name, extremum_obs)
        reading = extremum_obs.job(job.name)
        if reading.role == LC_ROLE and not reading.qos_met:
            infeasible.append(job.name)

    scores = tuple(score_fn(obs) for obs in observations)
    return BootstrapResult(
        configs=tuple(configs),
        observations=tuple(observations),
        scores=scores,
        infeasible_jobs=tuple(infeasible),
    )
