"""Exact Gaussian-process regression, from scratch on numpy/scipy.

The surrogate model of CLITE's Bayesian optimizer (Sec. 4).  The paper
deliberately keeps the GP small — it "mitigates [the O(n^3)] overhead by
carefully limiting the number of sampled data points" rather than using
sparse approximations that degrade uncertainty estimates — so a dense
Cholesky implementation is exactly the right tool.

Because the BO loop adds exactly one observation per iteration, the GP
also supports :meth:`GaussianProcess.add_sample`: an O(n^2) rank-1
extension of the stored Cholesky factor that avoids re-factorizing the
whole kernel matrix every window.  A full refit is triggered only when
the lengthscale heuristic shifts materially or the extended factor would
be numerically unsafe, so incremental and batch posteriors agree to
machine precision whenever the kernel and jitter coincide.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.linalg import cho_factor, cho_solve, solve_triangular

from .kernels import Kernel, Matern52, median_lengthscale

#: Jitter used as the escalation seed when the configured noise is zero.
_MIN_JITTER = 1e-12


class GaussianProcess:
    """GP regression with a fixed-form kernel and heuristic lengthscale.

    Targets are standardized internally (zero mean, unit variance), so
    score magnitudes never interact with kernel hyperparameters.

    Args:
        kernel: Covariance function; default Matérn-5/2 (the paper's
            choice).  Its lengthscale is treated as a fallback — at fit
            time the median-distance heuristic replaces it unless
            ``adapt_lengthscale`` is False.
        noise: Observation-noise variance added to the kernel diagonal
            (in standardized-target units).  Counter noise on scores is
            real, so this should not be zero.
        adapt_lengthscale: Re-estimate the lengthscale from the data at
            every fit.
        lengthscale_rtol: Relative drift of the median-distance
            lengthscale that :meth:`add_sample` tolerates before falling
            back to a full refit.  0 forces a refit on every add (the
            pre-incremental behavior); larger values keep the O(n^2)
            fast path longer at the cost of a slightly stale kernel.
    """

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        noise: float = 1e-3,
        adapt_lengthscale: bool = True,
        lengthscale_rtol: float = 0.05,
    ) -> None:
        if noise < 0:
            raise ValueError(f"noise variance must be >= 0, got {noise}")
        if lengthscale_rtol < 0:
            raise ValueError(
                f"lengthscale_rtol must be >= 0, got {lengthscale_rtol}"
            )
        self.kernel = kernel if kernel is not None else Matern52()
        self.noise = noise
        self.adapt_lengthscale = adapt_lengthscale
        self.lengthscale_rtol = lengthscale_rtol
        self._x: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._chol: Optional[np.ndarray] = None  # lower-triangular factor
        self._jitter: float = noise
        self._y_mean = 0.0
        self._y_std = 1.0

    @property
    def is_fitted(self) -> bool:
        return self._x is not None

    @property
    def n_samples(self) -> int:
        return 0 if self._x is None else len(self._x)

    @property
    def jitter(self) -> float:
        """Diagonal jitter of the current factorization (>= ``noise``)."""
        return self._jitter

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        """Condition the GP on observations ``(x, y)``.

        Args:
            x: Sample locations, shape (n, d), in the unit cube.
            y: Observed objective scores, shape (n,).
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if len(x) != len(y):
            raise ValueError(f"got {len(x)} points but {len(y)} targets")
        if len(x) == 0:
            raise ValueError("cannot fit a GP on zero samples")
        if not np.isfinite(x).all() or not np.isfinite(y).all():
            raise ValueError("GP inputs must be finite")

        if self.adapt_lengthscale:
            self.kernel = self.kernel.with_lengthscale(median_lengthscale(x))

        self._x = x
        self._y = y
        self._refactor()
        return self

    def _refactor(self) -> None:
        """Full Cholesky factorization of the current training set."""
        x, y = self._x, self._y
        gram = self.kernel(x, x)
        jitter = self.noise
        for _ in range(8):
            try:
                factor, _ = cho_factor(
                    gram + jitter * np.eye(len(x)), lower=True
                )
                break
            except np.linalg.LinAlgError:
                jitter = jitter * 10.0 if jitter > 0 else _MIN_JITTER
        else:  # pragma: no cover - requires a pathological kernel matrix
            raise np.linalg.LinAlgError("kernel matrix is not positive definite")
        # cho_factor leaves garbage in the unused triangle; keep a clean
        # lower-triangular matrix so add_sample can extend it in place.
        self._chol = np.tril(factor)
        self._jitter = jitter
        self._restandardize()

    def _restandardize(self) -> None:
        """Recompute target standardization and the alpha weights (O(n^2))."""
        y = self._y
        self._y_mean = float(y.mean())
        self._y_std = float(y.std())
        if self._y_std < 1e-12:
            self._y_std = 1.0
        z = (y - self._y_mean) / self._y_std
        self._alpha = cho_solve((self._chol, True), z, check_finite=False)

    def add_sample(self, x_new: np.ndarray, y_new: float) -> "GaussianProcess":
        """Condition on one more observation via a rank-1 Cholesky update.

        Extends the stored lower-triangular factor with one new row in
        O(n^2) instead of re-factorizing the whole (n, n) kernel matrix
        in O(n^3).  Falls back to a full :meth:`fit` when (a) the GP is
        not fitted yet, (b) the median-lengthscale heuristic has drifted
        by more than ``lengthscale_rtol`` relative, or (c) the extended
        factor's new pivot would be numerically unsafe (the jitter needs
        re-escalation).  In every case the resulting posterior is the
        exact posterior of the full data set under the current kernel
        and jitter — matching a from-scratch ``fit`` whenever that fit
        would pick the same lengthscale and jitter.
        """
        x_new = np.asarray(x_new, dtype=float).ravel()
        if not np.isfinite(x_new).all() or not np.isfinite(y_new):
            raise ValueError("GP inputs must be finite")
        if not self.is_fitted:
            return self.fit(x_new[None, :], np.array([float(y_new)]))
        if x_new.shape[0] != self._x.shape[1]:
            raise ValueError(
                f"expected a {self._x.shape[1]}-dim point, got {x_new.shape[0]}"
            )

        x = np.vstack([self._x, x_new[None, :]])
        y = np.append(self._y, float(y_new))

        if self.adapt_lengthscale:
            fresh = median_lengthscale(x)
            current = self.kernel.lengthscale
            if abs(fresh - current) > self.lengthscale_rtol * current:
                return self.fit(x, y)

        k_vec = self.kernel(self._x, x_new[None, :]).ravel()
        ell = solve_triangular(
            self._chol, k_vec, lower=True, check_finite=False
        )
        k_self = float(self.kernel.diag(x_new[None, :])[0]) + self._jitter
        pivot_sq = k_self - float(ell @ ell)
        if pivot_sq <= max(_MIN_JITTER, 1e-10 * k_self):
            # The extension is (numerically) rank-deficient at the current
            # jitter; rebuild from scratch so escalation can kick in.
            self._x, self._y = x, y
            self._refactor()
            return self

        n = len(x)
        chol = np.zeros((n, n))
        chol[: n - 1, : n - 1] = self._chol
        chol[n - 1, : n - 1] = ell
        chol[n - 1, n - 1] = np.sqrt(pivot_sq)
        self._chol = chol
        self._x, self._y = x, y
        self._restandardize()
        return self

    def predict(self, xq: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation at query points.

        Args:
            xq: Query locations, shape (m, d).

        Returns:
            ``(mean, std)`` arrays of shape (m,), in original target units.
        """
        if not self.is_fitted:
            raise RuntimeError("predict() before fit()")
        xq = np.atleast_2d(np.asarray(xq, dtype=float))
        k_star = self.kernel(xq, self._x)
        mean_z = k_star @ self._alpha
        # var = k(x,x) - ||L^-1 k*||^2: one triangular solve, and the
        # prior variance comes from the kernel's diagonal fast path
        # instead of an (m, m) Gram matrix built just for its diagonal.
        v = solve_triangular(
            self._chol, k_star.T, lower=True, check_finite=False
        )
        prior_var = self.kernel.diag(xq)
        var_z = np.maximum(prior_var - np.einsum("ij,ij->j", v, v), 0.0)
        mean = mean_z * self._y_std + self._y_mean
        std = np.sqrt(var_z) * self._y_std
        return mean, std
