"""Exact Gaussian-process regression, from scratch on numpy/scipy.

The surrogate model of CLITE's Bayesian optimizer (Sec. 4).  The paper
deliberately keeps the GP small — it "mitigates [the O(n^3)] overhead by
carefully limiting the number of sampled data points" rather than using
sparse approximations that degrade uncertainty estimates — so a dense
Cholesky implementation is exactly the right tool.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.linalg import cho_factor, cho_solve

from .kernels import Kernel, Matern52, median_lengthscale


class GaussianProcess:
    """GP regression with a fixed-form kernel and heuristic lengthscale.

    Targets are standardized internally (zero mean, unit variance), so
    score magnitudes never interact with kernel hyperparameters.

    Args:
        kernel: Covariance function; default Matérn-5/2 (the paper's
            choice).  Its lengthscale is treated as a fallback — at fit
            time the median-distance heuristic replaces it unless
            ``adapt_lengthscale`` is False.
        noise: Observation-noise variance added to the kernel diagonal
            (in standardized-target units).  Counter noise on scores is
            real, so this should not be zero.
        adapt_lengthscale: Re-estimate the lengthscale from the data at
            every fit.
    """

    def __init__(
        self,
        kernel: Optional[Kernel] = None,
        noise: float = 1e-3,
        adapt_lengthscale: bool = True,
    ) -> None:
        if noise < 0:
            raise ValueError(f"noise variance must be >= 0, got {noise}")
        self.kernel = kernel if kernel is not None else Matern52()
        self.noise = noise
        self.adapt_lengthscale = adapt_lengthscale
        self._x: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._cho = None
        self._y_mean = 0.0
        self._y_std = 1.0

    @property
    def is_fitted(self) -> bool:
        return self._x is not None

    @property
    def n_samples(self) -> int:
        return 0 if self._x is None else len(self._x)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        """Condition the GP on observations ``(x, y)``.

        Args:
            x: Sample locations, shape (n, d), in the unit cube.
            y: Observed objective scores, shape (n,).
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if len(x) != len(y):
            raise ValueError(f"got {len(x)} points but {len(y)} targets")
        if len(x) == 0:
            raise ValueError("cannot fit a GP on zero samples")
        if not np.isfinite(x).all() or not np.isfinite(y).all():
            raise ValueError("GP inputs must be finite")

        if self.adapt_lengthscale:
            self.kernel = self.kernel.with_lengthscale(median_lengthscale(x))

        self._y_mean = float(y.mean())
        self._y_std = float(y.std())
        if self._y_std < 1e-12:
            self._y_std = 1.0
        z = (y - self._y_mean) / self._y_std

        gram = self.kernel(x, x)
        jitter = self.noise
        for _ in range(8):
            try:
                self._cho = cho_factor(
                    gram + jitter * np.eye(len(x)), lower=True
                )
                break
            except np.linalg.LinAlgError:
                jitter *= 10.0
        else:  # pragma: no cover - requires a pathological kernel matrix
            raise np.linalg.LinAlgError("kernel matrix is not positive definite")
        self._alpha = cho_solve(self._cho, z)
        self._x = x
        return self

    def predict(self, xq: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation at query points.

        Args:
            xq: Query locations, shape (m, d).

        Returns:
            ``(mean, std)`` arrays of shape (m,), in original target units.
        """
        if not self.is_fitted:
            raise RuntimeError("predict() before fit()")
        xq = np.atleast_2d(np.asarray(xq, dtype=float))
        k_star = self.kernel(xq, self._x)
        mean_z = k_star @ self._alpha
        v = cho_solve(self._cho, k_star.T)
        prior_var = np.diag(self.kernel(xq, xq))
        var_z = np.maximum(prior_var - np.einsum("ij,ji->i", k_star, v), 0.0)
        mean = mean_z * self._y_std + self._y_mean
        std = np.sqrt(var_z) * self._y_std
        return mean, std
