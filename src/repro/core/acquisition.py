"""Acquisition functions.

CLITE uses Expected Improvement augmented with the exploration factor
``zeta`` of Lizotte (Eq. 2 of the paper): cheap to evaluate, with a
practical exploration/exploitation balance; the paper rejects
probability-of-improvement (gets stuck in local optima) and entropy/UCB
methods (too expensive for an online, time-constrained controller).
PI and UCB are provided for the acquisition ablation bench.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import math

import numpy as np
from scipy.special import ndtr

from .units import Fraction

_SQRT_2PI = math.sqrt(2.0 * math.pi)


def _pdf(z: np.ndarray) -> np.ndarray:
    # |z| > 40 already underflows to 0; clipping avoids overflow warnings
    # from squaring extreme z when sigma is tiny.
    z = np.clip(z, -40.0, 40.0)
    return np.exp(-0.5 * z * z) / _SQRT_2PI


@dataclass(frozen=True)
class AcquisitionFunction(ABC):
    """Maps posterior ``(mean, std)`` and the incumbent to a utility."""

    @abstractmethod
    def __call__(
        self, mean: np.ndarray, std: np.ndarray, best: Fraction
    ) -> np.ndarray:
        """Acquisition value at each query point (higher = sample sooner)."""


@dataclass(frozen=True)
class ExpectedImprovement(AcquisitionFunction):
    """EI with the ζ exploration factor (Eq. 2).

    ``E(x) = (mu - best - zeta) * Phi(z) + sigma * phi(z)`` with
    ``z = (mu - best - zeta) / sigma``, and 0 wherever ``sigma == 0``.
    Small ζ (the paper suggests 0.01) nudges the search to explore.
    """

    zeta: float = 0.01

    def __post_init__(self) -> None:
        if self.zeta < 0:
            raise ValueError(f"zeta must be >= 0, got {self.zeta}")

    def __call__(
        self, mean: np.ndarray, std: np.ndarray, best: Fraction
    ) -> np.ndarray:
        mean = np.asarray(mean, dtype=float)
        std = np.asarray(std, dtype=float)
        improvement = mean - best - self.zeta
        result = np.zeros_like(mean)
        positive = std > 0
        with np.errstate(over="ignore"):  # z saturates ndtr/pdf anyway
            z = improvement[positive] / std[positive]
        result[positive] = improvement[positive] * ndtr(z) + std[positive] * _pdf(z)
        return result


@dataclass(frozen=True)
class ProbabilityOfImprovement(AcquisitionFunction):
    """PI — cheap but exploitation-heavy (ablation baseline)."""

    zeta: float = 0.01

    def __call__(
        self, mean: np.ndarray, std: np.ndarray, best: Fraction
    ) -> np.ndarray:
        mean = np.asarray(mean, dtype=float)
        std = np.asarray(std, dtype=float)
        result = np.zeros_like(mean)
        positive = std > 0
        with np.errstate(over="ignore"):  # z saturates ndtr anyway
            z = (mean[positive] - best - self.zeta) / std[positive]
        result[positive] = ndtr(z)
        result[(~positive) & (mean - best - self.zeta > 0)] = 1.0
        return result


@dataclass(frozen=True)
class UpperConfidenceBound(AcquisitionFunction):
    """UCB ``mu + kappa * sigma`` (ablation baseline)."""

    kappa: float = 2.0

    def __post_init__(self) -> None:
        if self.kappa < 0:
            raise ValueError(f"kappa must be >= 0, got {self.kappa}")

    def __call__(
        self, mean: np.ndarray, std: np.ndarray, best: Fraction
    ) -> np.ndarray:
        del best  # UCB does not use the incumbent
        return np.asarray(mean, dtype=float) + self.kappa * np.asarray(
            std, dtype=float
        )
