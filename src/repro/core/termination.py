"""Job-mix-aware termination condition (Sec. 4).

A static iteration budget would terminate too early for large job mixes
and waste samples on small ones, so CLITE stops when the acquisition
signal itself — the expected improvement of the best proposable sample —
drops below a threshold.  The threshold is scaled with the number of
co-located jobs because the EI curve decays more slowly as mixes grow,
and a patience count keeps a single noisy dip from ending the search.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class EITermination:
    """Stop when expected improvement stays below a scaled threshold.

    Attributes:
        base_threshold: EI threshold for a single co-located job (the
            paper suggests values as low as 1%).
        jobs_scale: Per-additional-job multiplier applied to the
            threshold; > 1 loosens the bar for larger mixes, matching
            the slower EI decay the paper observes.
        patience: Consecutive below-threshold iterations required.
        min_iterations: Iterations that must elapse before termination
            can fire at all; the surrogate is too uncertain to trust an
            EI reading any earlier.
    """

    base_threshold: float = 0.01
    jobs_scale: float = 1.25
    patience: int = 2
    min_iterations: int = 5
    _below: int = field(default=0, init=False)
    _updates: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.base_threshold <= 0:
            raise ValueError("base threshold must be positive")
        if self.jobs_scale < 1:
            raise ValueError("jobs_scale must be >= 1")
        if self.patience < 1:
            raise ValueError("patience must be >= 1")
        if self.min_iterations < 0:
            raise ValueError("min_iterations must be >= 0")

    def threshold_for(self, n_jobs: int) -> float:
        """The EI bar for a mix of ``n_jobs`` co-located jobs."""
        if n_jobs < 1:
            raise ValueError("need at least one job")
        return self.base_threshold * self.jobs_scale ** (n_jobs - 1)

    def update(self, max_expected_improvement: float, n_jobs: int) -> bool:
        """Record one iteration's EI; return True when it is time to stop."""
        self._updates += 1
        if max_expected_improvement < self.threshold_for(n_jobs):
            self._below += 1
        else:
            self._below = 0
        return (
            self._updates > self.min_iterations
            and self._below >= self.patience
        )

    def reset(self) -> None:
        self._below = 0
        self._updates = 0
