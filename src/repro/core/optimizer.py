"""Constrained acquisition maximization (Eqs. 4-6).

Each BO iteration must find the partition maximizing the acquisition
function subject to the allocation constraints: at least one unit of
every resource per job (Eq. 5) and column sums equal to each resource's
capacity (Eq. 6).  Following the paper, the continuous relaxation is
solved with Sequential Least Squares Programming (SLSQP) from multiple
starts, then projected back onto the integer lattice.  When a
dropout-copy decision pins one job's allocation, those coordinates are
frozen via degenerate bounds and the projection preserves the pinned
row exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, List, Optional, Set, Tuple

import numpy as np
from scipy.optimize import minimize

from ..resources.allocation import (
    Configuration,
    ConfigurationSpace,
    _round_columns_batch,
)
from ..resources.contracts import proposal_contract
from ..telemetry.tracer import NULL_TRACER, Tracer
from .acquisition import AcquisitionFunction, ExpectedImprovement
from .dropout import DropoutDecision
from .gp import GaussianProcess
from .rng import RNGLike, resolve_rng
from .units import Fraction

#: Infinity-norm of the finite-difference gradient below which a start is
#: considered dead-flat: SLSQP cannot move from it, so the (expensive)
#: solver call is skipped and the start itself stands as the solution.
_FLAT_GRAD_TOL = 1e-12

#: Forward-difference step for the acquisition gradient.
_FD_EPS = 1e-6


@dataclass(frozen=True)
class Candidate:
    """A proposed next sample with its acquisition value."""

    config: Configuration
    acquisition_value: float


@dataclass(frozen=True)
class Proposal:
    """Result of one acquisition-optimization round.

    Attributes:
        candidates: Unseen configurations ranked by acquisition value,
            best first.  May be empty if every optimum rounds onto an
            already-sampled point.
        max_acquisition: Largest acquisition value over the *continuous*
            SLSQP optima — the "expected improvement" signal the
            termination condition watches.  Using the relaxation rather
            than the rounded lattice points keeps the signal from
            collapsing just because the optima round onto
            already-sampled configurations.
    """

    candidates: Tuple[Candidate, ...]
    max_acquisition: float

    #: Seed for the running maximum: ``-inf`` rather than 0 so custom
    #: acquisition functions whose values can go negative still produce
    #: a faithful termination signal instead of a silent 0 floor.
    EMPTY_MAX: ClassVar[float] = float("-inf")


class AcquisitionOptimizer:
    """SLSQP-based maximizer of the acquisition over valid partitions.

    Args:
        space: The configuration space being searched.
        acquisition: Acquisition function (default: EI with ζ = 0.01).
        n_restarts: Number of random multi-start points in addition to
            the incumbent, the equal partition, and the best points of
            the screening pool.
        pool_size: Size of the random screening pool.  The pool is a
            cheap vectorized EI evaluation over valid lattice points;
            its best entries both seed SLSQP restarts and stand as
            candidates themselves, which makes the search robust in the
            high-dimensional spaces where gradient steps stall.
        rng: Random generator shared with the engine, or an explicit
            integer seed.  Required: an unseeded fallback would make
            the multi-start screening non-reproducible (RPL101).
        tracer: Optional :class:`repro.telemetry.Tracer`; each
            :meth:`propose` call is wrapped in an ``optimizer.propose``
            span.  Defaults to the shared no-op tracer.
    """

    def __init__(
        self,
        space: ConfigurationSpace,
        acquisition: Optional[AcquisitionFunction] = None,
        n_restarts: int = 8,
        pool_size: int = 256,
        rng: Optional[RNGLike] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if n_restarts < 1:
            raise ValueError("need at least one restart")
        if pool_size < 0:
            raise ValueError("pool size must be >= 0")
        self.space = space
        self.acquisition = (
            acquisition if acquisition is not None else ExpectedImprovement()
        )
        self.n_restarts = n_restarts
        self.pool_size = pool_size
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._rng = resolve_rng(rng, owner="AcquisitionOptimizer")
        self._spans = np.array(
            [r.units - space.n_jobs for r in space.spec.resources], dtype=float
        )

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def _column_targets(self) -> np.ndarray:
        """Per-resource sum each cube column must hit (1, or 0 if rigid)."""
        return (self._spans > 0).astype(float)

    def _constraints(self) -> List[dict]:
        n_jobs, n_res = self.space.n_jobs, self.space.n_resources
        targets = self._column_targets()
        constraints = []
        for r in range(n_res):
            idx = [j * n_res + r for j in range(n_jobs)]
            normal = np.zeros(n_jobs * n_res)
            normal[idx] = 1.0
            constraints.append(
                {
                    "type": "eq",
                    "fun": (lambda z, idx=idx, t=targets[r]: np.sum(z[idx]) - t),
                    # The constraints are linear; handing SLSQP their
                    # exact normals avoids per-iteration finite
                    # differencing, which otherwise dominates runtime.
                    "jac": (lambda z, normal=normal: normal),
                }
            )
        return constraints

    def _bounds(
        self,
        dropout: Optional[DropoutDecision],
        upper_caps: Optional[np.ndarray],
    ) -> List[Tuple[float, float]]:
        n_jobs, n_res = self.space.n_jobs, self.space.n_resources
        bounds: List[Tuple[float, float]] = [(0.0, 1.0)] * (n_jobs * n_res)
        if upper_caps is not None:
            for j in range(n_jobs):
                for r in range(n_res):
                    if self._spans[r] > 0:
                        ub = (upper_caps[j, r] - 1.0) / self._spans[r]
                        bounds[j * n_res + r] = (0.0, min(max(ub, 0.0), 1.0))
        for r in range(n_res):
            if self._spans[r] <= 0:  # resource fully pinned by the floor
                for j in range(n_jobs):
                    bounds[j * n_res + r] = (0.0, 0.0)
        if dropout is not None and dropout.job_index is not None:
            pinned = self._pinned_cube_row(dropout)
            for r in range(n_res):
                value = pinned[r]
                bounds[dropout.job_index * n_res + r] = (value, value)
        return bounds

    def _repair_caps(
        self,
        config: Configuration,
        upper_caps: Optional[np.ndarray],
        dropout: Optional[DropoutDecision],
    ) -> Configuration:
        """Push units over a job's cap to jobs with headroom.

        The dropout-pinned job is exempt on both sides: its row is
        neither trimmed nor grown.
        """
        if upper_caps is None:
            return config
        matrix = config.as_array()
        pin = dropout.job_index if dropout and dropout.job_index is not None else None
        n_jobs = self.space.n_jobs
        for r in range(self.space.n_resources):
            for j in range(n_jobs):
                if j == pin:
                    continue
                excess = matrix[j, r] - int(upper_caps[j, r])
                while excess > 0:
                    headroom = [
                        k
                        for k in range(n_jobs)
                        if k != j
                        and k != pin
                        and matrix[k, r] < int(upper_caps[k, r])
                    ]
                    if not headroom:
                        break
                    target = max(
                        headroom,
                        key=lambda k: int(upper_caps[k, r]) - matrix[k, r],
                    )
                    matrix[j, r] -= 1
                    matrix[target, r] += 1
                    excess -= 1
        return Configuration.from_matrix(matrix)

    def _pinned_cube_row(self, dropout: DropoutDecision) -> np.ndarray:
        row = np.asarray(dropout.allocation, dtype=float)
        cube = np.zeros(self.space.n_resources)
        positive = self._spans > 0
        cube[positive] = (row[positive] - 1.0) / self._spans[positive]
        return cube

    def _project_feasible(
        self, z: np.ndarray, dropout: Optional[DropoutDecision]
    ) -> np.ndarray:
        """Rescale each cube column so the start point satisfies Eq. 6."""
        n_jobs, n_res = self.space.n_jobs, self.space.n_resources
        z = z.reshape(n_jobs, n_res).copy()
        pin = dropout.job_index if dropout and dropout.job_index is not None else None
        if pin is not None:
            z[pin] = self._pinned_cube_row(dropout)
        targets = self._column_targets()
        for r in range(n_res):
            if self._spans[r] <= 0:
                z[:, r] = 0.0
                continue
            free = [j for j in range(n_jobs) if j != pin]
            budget = targets[r] - (z[pin, r] if pin is not None else 0.0)
            budget = max(budget, 0.0)
            total = z[free, r].sum()
            if total <= 0:
                z[free, r] = budget / len(free)
            else:
                z[free, r] *= budget / total
        return np.clip(z.reshape(-1), 0.0, 1.0)

    def _round(
        self, z: np.ndarray, dropout: Optional[DropoutDecision]
    ) -> Configuration:
        """Project a cube vector onto the lattice, honoring a pinned row."""
        vec = np.asarray(z, dtype=float).reshape(1, -1)
        return Configuration.from_matrix(self._round_batch(vec, dropout)[0])

    def _round_batch(
        self, z: np.ndarray, dropout: Optional[DropoutDecision]
    ) -> np.ndarray:
        """Vectorized :meth:`_round`: (n, n_dims) cube -> (n, j, r) ints."""
        z = np.asarray(z, dtype=float)
        if dropout is None or dropout.job_index is None:
            return self.space.from_unit_cube_batch(z)
        n_jobs, n_res = self.space.n_jobs, self.space.n_resources
        vec = np.clip(z.reshape(len(z), n_jobs, n_res), 0.0, 1.0)
        pin = dropout.job_index
        free = [j for j in range(n_jobs) if j != pin]
        out = np.empty((len(z), n_jobs, n_res), dtype=int)
        for r, resource in enumerate(self.space.spec.resources):
            pinned_units = int(dropout.allocation[r])
            remaining = resource.units - pinned_units
            if remaining < len(free):
                # The pinned row is too greedy for this column; shrink it.
                pinned_units = resource.units - len(free)
                remaining = len(free)
            out[:, pin, r] = pinned_units
            if free:
                out[:, free, r] = _round_columns_batch(
                    vec[:, free, r], remaining
                )
        return out

    def _repair_caps_batch(
        self,
        mats: np.ndarray,
        upper_caps: Optional[np.ndarray],
        dropout: Optional[DropoutDecision],
    ) -> np.ndarray:
        """Vectorized :meth:`_repair_caps` over a (n, j, r) stack.

        Implements the same per-unit waterfall — each excess unit moves
        to the not-pinned job with the most headroom, first index on
        ties — but steps all configurations of the batch at once, so the
        Python-level loop runs O(max excess) times instead of O(batch).
        """
        if upper_caps is None or len(mats) == 0:
            return mats
        caps = np.asarray(upper_caps).astype(int)
        pin = (
            dropout.job_index
            if dropout is not None and dropout.job_index is not None
            else None
        )
        mats = mats.copy()
        n_jobs = self.space.n_jobs
        for r in range(self.space.n_resources):
            col = mats[:, :, r]
            capr = caps[:, r]
            for j in range(n_jobs):
                if j == pin:
                    continue
                excess = col[:, j] - capr[j]
                active = excess > 0
                while active.any():
                    headroom = capr[None, :] - col
                    eligible = headroom > 0
                    eligible[:, j] = False
                    if pin is not None:
                        eligible[:, pin] = False
                    movable = active & eligible.any(axis=1)
                    if not movable.any():
                        break
                    masked = np.where(
                        eligible, headroom, np.iinfo(headroom.dtype).min
                    )
                    target = np.argmax(masked, axis=1)
                    rows = np.nonzero(movable)[0]
                    col[rows, j] -= 1
                    col[rows, target[rows]] += 1
                    excess[rows] -= 1
                    # Rows whose excess remains but have no headroom left
                    # stay over cap, like the scalar version's break.
                    active = movable & (excess > 0)
        return mats

    # ------------------------------------------------------------------
    # Pure exploitation: greedy walk on the posterior mean
    # ------------------------------------------------------------------
    @proposal_contract
    def propose_exploit(
        self,
        gp: GaussianProcess,
        incumbent: Configuration,
        sampled: Set[Tuple[int, ...]],
        upper_caps: Optional[np.ndarray] = None,
        max_steps: int = 25,
    ) -> Proposal:
        """Hill-climb the GP mean from the incumbent via unit transfers.

        One observation of the walk's endpoint can advance the
        partition by many units at once, which is how the post-QoS
        "reshuffle resources toward the BG jobs" phase converges in a
        handful of samples instead of one unit per window.
        """
        current = incumbent
        (current_mean,), _ = gp.predict(
            self.space.to_unit_cube(current)[None, :]
        )
        best_unseen: Optional[Tuple[Configuration, float]] = None
        for _ in range(max_steps):
            neighbors = [
                self._repair_caps(n, upper_caps, None)
                for n in self.space.neighbors(current)
            ]
            neighbors = [n for n in neighbors if n.flat() != current.flat()]
            if not neighbors:
                break
            cube = np.array([self.space.to_unit_cube(n) for n in neighbors])
            means, _ = gp.predict(cube)
            step = int(np.argmax(means))
            if means[step] <= current_mean + 1e-12:
                break
            current, current_mean = neighbors[step], float(means[step])
            if current.flat() not in sampled and (
                best_unseen is None or current_mean > best_unseen[1]
            ):
                best_unseen = (current, current_mean)
        if best_unseen is None:
            return Proposal(candidates=(), max_acquisition=0.0)
        config, mean = best_unseen
        return Proposal(
            candidates=(Candidate(config=config, acquisition_value=mean),),
            max_acquisition=mean,
        )

    # ------------------------------------------------------------------
    # The optimization itself
    # ------------------------------------------------------------------
    def _start_points(
        self,
        incumbent: Optional[Configuration],
        dropout: Optional[DropoutDecision],
    ) -> List[np.ndarray]:
        starts = [self.space.to_unit_cube(self.space.equal_partition())]
        if incumbent is not None:
            starts.append(self.space.to_unit_cube(incumbent))
        if self.n_restarts:
            starts.extend(
                self.space.to_unit_cube_batch(
                    self.space.random_batch(self.n_restarts, self._rng)
                )
            )
        return [self._project_feasible(z, dropout) for z in starts]

    @proposal_contract
    def propose(
        self,
        gp: GaussianProcess,
        best_score: Fraction,
        sampled: Set[Tuple[int, ...]],
        incumbent: Optional[Configuration] = None,
        dropout: Optional[DropoutDecision] = None,
        upper_caps: Optional[np.ndarray] = None,
        acquisition: Optional[AcquisitionFunction] = None,
        max_candidates: Optional[int] = None,
    ) -> Proposal:
        """Maximize the acquisition and return ranked unseen candidates.

        Args:
            gp: The fitted surrogate.
            best_score: Incumbent objective score (Eq. 2's ``x̂``).
            sampled: Flattened unit tuples of already-sampled configs.
            incumbent: Best configuration so far (used as a start).
            dropout: Optional dropout-copy pin for this round.
            upper_caps: Optional ``(n_jobs, n_resources)`` per-job unit
                caps — the paper's "constrained execution" pruning of
                likely-to-be-sub-optimal partitions (Eqs. 4-6 with
                individual per-job, per-resource constraints).
            acquisition: One-off acquisition override for this round
                (the engine uses it for pure-exploitation rounds).
            max_candidates: Keep only the top-k of the ranked unseen
                candidates (the engine's batch mode passes its
                ``batch_k``).  ``None`` returns the full ranking;
                ``max_acquisition`` is unaffected either way.
        """
        if max_candidates is not None and max_candidates < 1:
            raise ValueError("max_candidates must be >= 1")
        with self._tracer.span("optimizer.propose") as span:
            proposal = self._propose_impl(
                gp,
                best_score,
                sampled,
                incumbent=incumbent,
                dropout=dropout,
                upper_caps=upper_caps,
                acquisition=acquisition,
            )
            if (
                max_candidates is not None
                and len(proposal.candidates) > max_candidates
            ):
                proposal = Proposal(
                    candidates=proposal.candidates[:max_candidates],
                    max_acquisition=proposal.max_acquisition,
                )
            span.set("candidates", len(proposal.candidates))
            span.set("max_acquisition", proposal.max_acquisition)
        return proposal

    def _propose_impl(
        self,
        gp: GaussianProcess,
        best_score: Fraction,
        sampled: Set[Tuple[int, ...]],
        incumbent: Optional[Configuration] = None,
        dropout: Optional[DropoutDecision] = None,
        upper_caps: Optional[np.ndarray] = None,
        acquisition: Optional[AcquisitionFunction] = None,
    ) -> Proposal:
        acq_fn = acquisition if acquisition is not None else self.acquisition
        space = self.space
        pinned = dropout is not None and dropout.job_index is not None

        def fun_and_grad(z: np.ndarray) -> Tuple[float, np.ndarray]:
            # One batched GP predict per SLSQP iteration — value plus
            # forward differences in a single (d+1)-point call; this is
            # where the solver spends its time.
            points = np.vstack([z, z + _FD_EPS * np.eye(len(z))])
            mean, std = gp.predict(points)
            values = -acq_fn(mean, std, best_score)
            return float(values[0]), (values[1:] - values[0]) / _FD_EPS

        def batch_acq(cube: np.ndarray) -> np.ndarray:
            mean, std = gp.predict(cube)
            return np.asarray(acq_fn(mean, std, best_score), dtype=float)

        # Stage 1: screen a pool of valid lattice points — random samples
        # for coverage plus the incumbent's single-unit-transfer
        # neighborhood, which is where the post-QoS "reshuffle resources
        # toward the BG jobs" refinement happens.  The whole pool is
        # generated, (with dropout) re-projected so the pinned row
        # holds, cap-repaired, and scored as batched numpy arrays — no
        # per-configuration Python round trips.
        int_blocks: List[np.ndarray] = []
        cube_blocks: List[np.ndarray] = []
        if self.pool_size:
            int_blocks.append(space.random_batch(self.pool_size, self._rng))
        if incumbent is not None:
            neighbors = space.neighbor_matrices(incumbent)
            if len(neighbors):
                int_blocks.append(neighbors)
            # Line-search candidates: blends between the incumbent and
            # each job's maximum-allocation extremum.  These cut across
            # the resource-equivalence ridges (e.g. "shift everything
            # spare toward the BG job") that single-unit moves cross
            # only one step per sample.
            z_inc = space.to_unit_cube(incumbent)
            blends = np.array(
                [
                    (1 - t) * z_inc
                    + t * space.to_unit_cube(space.max_allocation(j))
                    for j in range(space.n_jobs)
                    for t in (0.25, 0.5, 0.75)
                ]
            )
            cube_blocks.append(blends)
        if int_blocks or cube_blocks:
            if pinned:
                cube_all = np.concatenate(
                    [space.to_unit_cube_batch(m) for m in int_blocks]
                    + cube_blocks
                )
                pool_mats = self._round_batch(cube_all, dropout)
            else:
                pool_mats = np.concatenate(
                    int_blocks
                    + [
                        self._round_batch(c, None)
                        for c in cube_blocks
                    ]
                )
            pool_mats = self._repair_caps_batch(pool_mats, upper_caps, dropout)
            pool_cube = space.to_unit_cube_batch(pool_mats)
            pool_acq = batch_acq(pool_cube)
            top = np.argsort(-pool_acq)[: max(self.n_restarts // 2, 2)]
        else:
            pool_mats = np.empty((0, space.n_jobs, space.n_resources), dtype=int)
            pool_cube = np.empty((0, space.n_dims))
            pool_acq = np.empty(0)
            top = np.empty(0, dtype=int)

        # Stage 2: SLSQP from informed starts plus the pool's best.
        starts = self._start_points(incumbent, dropout)
        starts.extend(pool_cube[i] for i in top)
        unique: dict = {}
        for z in starts:
            unique.setdefault(np.round(z, 9).tobytes(), np.asarray(z))
        starts = list(unique.values())

        # Probe every start's finite-difference gradient in one batched
        # predict; dead-flat starts (zero gradient, typical once EI has
        # collapsed everywhere) cannot move under SLSQP, so the solver
        # call is skipped and the start stands as its own optimum.
        d = space.n_dims
        eye = _FD_EPS * np.eye(d)
        probe = np.vstack([np.vstack([z, z + eye]) for z in starts])
        probe_acq = batch_acq(probe).reshape(len(starts), d + 1)
        grads = (probe_acq[:, 1:] - probe_acq[:, :1]) / _FD_EPS
        grad_flat = np.max(np.abs(grads), axis=1) < _FLAT_GRAD_TOL

        bounds = self._bounds(dropout, upper_caps)
        constraints = self._constraints()
        solutions: List[np.ndarray] = []
        for x0, flat in zip(starts, grad_flat):
            if flat:
                solutions.append(x0)
                continue
            result = minimize(
                fun_and_grad,
                x0,
                jac=True,
                method="SLSQP",
                bounds=bounds,
                constraints=constraints,
                options={"maxiter": 40, "ftol": 1e-8},
            )
            solutions.append(result.x if result.success else x0)

        # Evaluate the continuous optima (the termination signal) and
        # their lattice projections in two batched predicts.
        sol_cube = np.clip(np.array(solutions), 0.0, 1.0)
        sol_acq = batch_acq(sol_cube)
        sol_mats = self._repair_caps_batch(
            self._round_batch(sol_cube, dropout), upper_caps, dropout
        )
        sol_values = batch_acq(space.to_unit_cube_batch(sol_mats))

        max_acq = Proposal.EMPTY_MAX
        if len(sol_acq):
            max_acq = max(max_acq, float(sol_acq.max()))
        if len(pool_acq):
            max_acq = max(max_acq, float(pool_acq.max()))

        best_by_config: dict = {}

        def consider(mat: np.ndarray, value: float) -> None:
            key = tuple(v for row in mat.tolist() for v in row)
            if key in sampled:
                return
            entry = best_by_config.get(key)
            if entry is None or value > entry[1]:
                best_by_config[key] = (mat, value)

        for mat, value in zip(sol_mats, sol_values):
            consider(mat, float(value))
        for mat, value in zip(pool_mats, pool_acq):
            consider(mat, float(value))

        ranked = sorted(
            best_by_config.values(), key=lambda pair: pair[1], reverse=True
        )
        candidates = tuple(
            Candidate(config=Configuration.from_matrix(m), acquisition_value=v)
            for m, v in ranked
        )
        return Proposal(candidates=candidates, max_acquisition=max_acq)
