"""CLITE's Bayesian-optimization engine (the paper's contribution)."""

from .acquisition import (
    AcquisitionFunction,
    ExpectedImprovement,
    ProbabilityOfImprovement,
    UpperConfidenceBound,
)
from .bootstrap import BootstrapResult, bootstrap_configurations, run_bootstrap
from .dropout import DropoutCopy, DropoutDecision, job_performance
from .engine import CLITEConfig, CLITEEngine, CLITEResult, SampleRecord
from .gp import GaussianProcess
from .kernels import RBF, Kernel, Matern52, median_lengthscale
from .optimizer import AcquisitionOptimizer, Candidate, Proposal
from .score import QOS_MET_THRESHOLD, ScoreFunction, qos_met
from .termination import EITermination

__all__ = [
    "AcquisitionFunction",
    "AcquisitionOptimizer",
    "BootstrapResult",
    "CLITEConfig",
    "CLITEEngine",
    "CLITEResult",
    "Candidate",
    "DropoutCopy",
    "DropoutDecision",
    "EITermination",
    "ExpectedImprovement",
    "GaussianProcess",
    "Kernel",
    "Matern52",
    "ProbabilityOfImprovement",
    "Proposal",
    "QOS_MET_THRESHOLD",
    "RBF",
    "SampleRecord",
    "ScoreFunction",
    "UpperConfidenceBound",
    "bootstrap_configurations",
    "job_performance",
    "median_lengthscale",
    "qos_met",
    "run_bootstrap",
]
