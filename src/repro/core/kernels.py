"""Covariance kernels for the Gaussian-process surrogate.

CLITE uses the Matérn-5/2 kernel (Sec. 4): it "does not require
restrictions on strong smoothness", which matters because the score
surface over resource partitions has ridges wherever a QoS constraint
starts binding.  A squared-exponential (RBF) kernel is provided for the
kernel ablation bench.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np
from scipy.spatial.distance import cdist


def _validate_points(x1: np.ndarray, x2: np.ndarray) -> None:
    if x1.ndim != 2 or x2.ndim != 2:
        raise ValueError("kernel inputs must be 2-D (n_points, n_dims)")
    if x1.shape[1] != x2.shape[1]:
        raise ValueError(
            f"dimension mismatch: {x1.shape[1]} vs {x2.shape[1]}"
        )


@dataclass(frozen=True)
class Kernel(ABC):
    """A stationary covariance function ``k(x, x')``.

    Attributes:
        lengthscale: Characteristic distance over which the function is
            correlated, > 0.
        variance: Signal variance ``k(x, x)``, > 0.
    """

    lengthscale: float = 0.3
    variance: float = 1.0

    def __post_init__(self) -> None:
        if self.lengthscale <= 0:
            raise ValueError(f"lengthscale must be > 0, got {self.lengthscale}")
        if self.variance <= 0:
            raise ValueError(f"variance must be > 0, got {self.variance}")

    @abstractmethod
    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        """Covariance matrix between two point sets, shape (n1, n2)."""

    def diag(self, x: np.ndarray) -> np.ndarray:
        """``k(x_i, x_i)`` for each row of ``x``, shape (n,).

        For a stationary kernel this is the constant ``variance``, so
        callers that only need the prior variance (e.g. GP ``predict``)
        never have to materialize the full (n, n) Gram matrix.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.ndim != 2:
            raise ValueError("kernel inputs must be 2-D (n_points, n_dims)")
        return np.full(len(x), self.variance)

    def with_lengthscale(self, lengthscale: float) -> "Kernel":
        from dataclasses import replace

        return replace(self, lengthscale=lengthscale)


@dataclass(frozen=True)
class Matern52(Kernel):
    """Matérn kernel with smoothness parameter 5/2 (CLITE's choice)."""

    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        x1 = np.atleast_2d(np.asarray(x1, dtype=float))
        x2 = np.atleast_2d(np.asarray(x2, dtype=float))
        _validate_points(x1, x2)
        r = cdist(x1, x2) / self.lengthscale
        sqrt5_r = math.sqrt(5.0) * r
        return self.variance * (1.0 + sqrt5_r + 5.0 * r**2 / 3.0) * np.exp(-sqrt5_r)


@dataclass(frozen=True)
class RBF(Kernel):
    """Squared-exponential kernel (for the kernel-choice ablation)."""

    def __call__(self, x1: np.ndarray, x2: np.ndarray) -> np.ndarray:
        x1 = np.atleast_2d(np.asarray(x1, dtype=float))
        x2 = np.atleast_2d(np.asarray(x2, dtype=float))
        _validate_points(x1, x2)
        sq = cdist(x1, x2, "sqeuclidean") / self.lengthscale**2
        return self.variance * np.exp(-0.5 * sq)


def median_lengthscale(
    x: np.ndarray, fallback: float = 0.3, scale: float = 0.5
) -> float:
    """Scaled median pairwise distance — a robust lengthscale heuristic.

    Keeps the GP sensibly scaled as samples accumulate without a costly
    marginal-likelihood optimization (CLITE's design point is cheap,
    just-accurate-enough models).  ``scale < 1`` keeps the surrogate
    from over-smoothing early on, when the few samples sit far apart
    and a full median lengthscale would wash out all uncertainty
    between them.
    """
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    x = np.atleast_2d(np.asarray(x, dtype=float))
    if len(x) < 2:
        return fallback
    distances = cdist(x, x)
    upper = distances[np.triu_indices(len(x), k=1)]
    positive = upper[upper > 0]
    if positive.size == 0:
        return fallback
    return float(np.median(positive)) * scale
