"""The CLITE engine — Algorithm 1, put together (Fig. 5).

Seeds the surrogate with the informed bootstrap set, then iterates:
fit the Gaussian process on every (configuration, score) pair, pick a
dropout-copy pin, maximize the constrained acquisition, run the chosen
partition for one observation window, score it with Eq. 3, and repeat
until the expected-improvement signal dies down.  The best-scoring
partition is then enacted.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Set, Tuple

import numpy as np

from ..resources.allocation import Configuration
from ..resources.spec import CORES
from ..server.node import Node, Observation
from ..server.observe import ObservationService
from ..telemetry import NULL_TELEMETRY, Telemetry, TelemetrySnapshot
from .acquisition import AcquisitionFunction, ExpectedImprovement
from .bootstrap import bootstrap_configurations, run_bootstrap
from .dropout import DropoutCopy
from .gp import GaussianProcess
from .kernels import Kernel, Matern52
from .optimizer import AcquisitionOptimizer
from .score import ScoreFunction
from .termination import EITermination


@dataclass(frozen=True)
class CLITEConfig:
    """Tunables of the CLITE engine.

    The paper's point (Sec. 5.2) is that none of these need per-job-mix
    tuning; the defaults below are the paper's choices.

    Attributes:
        zeta: EI exploration factor (Eq. 2); ignored when a custom
            ``acquisition`` is given.
        acquisition: Override the acquisition function (ablations).
        kernel: Override the GP kernel (ablations); default Matérn-5/2.
        gp_noise: Observation-noise variance for the GP.
        max_iterations: Hard cap on BO iterations after the bootstrap.
        max_samples: Optional cap on *total* observations, bootstrap
            included (used for fair policy comparisons).
        n_restarts: Multi-start count for the SLSQP acquisition search.
        dropout_enabled: Use dropout-copy dimensionality reduction.
        dropout_random_prob: Chance of pinning a random job instead of
            the best performer.
        informed_bootstrap: Seed with equal partition + per-job extrema
            (True, the paper) or uniformly random samples (ablation).
        ei_threshold: Base EI termination threshold (1 job).
        ei_jobs_scale: Termination-threshold growth per extra job.
        ei_patience: Consecutive below-threshold iterations to stop.
        ei_min_iterations: Iterations before termination may fire.
        post_qos_iterations: Iterations that must elapse *after the
            first QoS-meeting sample* before EI termination is honored.
            On hard mixes the feasible region is tiny and the score
            surface nearly flat, so raw EI dies down long before the
            post-QoS reshuffling phase has had a chance to run; and if
            QoS has never been met, CLITE should keep searching to the
            iteration cap rather than give up early.
        confirm_top: Number of top-scoring configurations to re-observe
            after the search, picking the winner by the *worse* of the
            two readings.  One lucky noisy window can make a
            QoS-violating partition look safe; confirmation windows are
            how a real controller guards against enacting it.
        constrained_execution: Prune likely-to-be-sub-optimal partitions
            by capping each LC job at (one unit above) the cheapest
            allocation it has been observed meeting QoS with, funneling
            the remainder toward BG jobs (Sec. 4).
        refine_budget: Maximum observation windows spent on the greedy
            post-BO refinement phase (LC-to-BG single-unit donations
            kept only when the measured score improves).
        refine_patience: Consecutive rejected refinement moves before
            the phase gives up.
        exploit_every: Run a pure-exploitation round every this-many
            iterations (0, the default, disables): a greedy walk on the
            GP posterior mean through single-unit transfers from the
            incumbent, whose endpoint is then observed.  Kept as an
            ablation knob — on this benchmark suite the per-unit score
            deltas sit below the surrogate's resolution, so the walk
            follows model bias and measurably *hurts* final quality
            compared to spending the same windows on EI sampling.
        stop_on_infeasible: Abort early when some LC job misses QoS even
            at maximum allocation ("schedule it elsewhere").
        batch_k: Top-ranked acquisition candidates observed per BO
            round.  1 (the default) is the paper's sequential Algorithm
            1 and keeps trajectories bit-identical to it.  k > 1
            amortizes the acquisition maximization — the engine's
            dominant CPU cost — over k observation windows, trading
            some sample-efficiency fidelity (candidates 2..k are chosen
            without seeing candidate 1's outcome) for wall-clock.
        parallel_observe: With ``batch_k > 1``, warm the node's truth
            caches for the whole batch concurrently before the serial
            observe loop runs.  Results are deterministic for a given
            seed regardless of worker count or completion order: the
            workers only precompute noise-free truths at the exact
            (config, time) points the serial loop will visit, and every
            clock advance and noise draw still happens serially in
            candidate-rank order.
        observe_workers: Thread-pool width for ``parallel_observe``
            (default: the batch size, capped at 8).
        seed: Seed for all engine randomness.
        telemetry: Optional :class:`repro.telemetry.Telemetry` context.
            When given, the engine wraps each Algorithm 1 phase in a
            span, counts cache traffic and iterations in the metric
            registry, installs the context on its node, and attaches a
            :class:`repro.telemetry.TelemetrySnapshot` to the result.
            ``None`` (the default) routes every hook through the shared
            no-op context, keeping the hot path effectively free.
    """

    zeta: float = 0.01
    acquisition: Optional[AcquisitionFunction] = None
    kernel: Optional[Kernel] = None
    gp_noise: float = 1e-4
    max_iterations: int = 50
    max_samples: Optional[int] = None
    n_restarts: int = 8
    dropout_enabled: bool = True
    dropout_random_prob: float = 0.1
    informed_bootstrap: bool = True
    ei_threshold: float = 0.005
    ei_jobs_scale: float = 1.25
    ei_patience: int = 4
    ei_min_iterations: int = 8
    confirm_top: int = 3
    constrained_execution: bool = True
    exploit_every: int = 0
    post_qos_iterations: int = 20
    refine_budget: int = 20
    refine_patience: int = 5
    stop_on_infeasible: bool = True
    batch_k: int = 1
    parallel_observe: bool = False
    observe_workers: Optional[int] = None
    seed: Optional[int] = None
    telemetry: Optional[Telemetry] = None

    def build_acquisition(self) -> AcquisitionFunction:
        if self.acquisition is not None:
            return self.acquisition
        return ExpectedImprovement(zeta=self.zeta)

    def build_kernel(self) -> Kernel:
        return self.kernel if self.kernel is not None else Matern52()


@dataclass(frozen=True)
class SampleRecord:
    """One sampled configuration with everything observed about it."""

    index: int
    phase: str  # "bootstrap", "search", "refine", or "confirm"
    config: Configuration
    observation: Observation
    score: float
    expected_improvement: Optional[float] = None


@dataclass(frozen=True)
class CLITEResult:
    """Outcome of one CLITE optimization run.

    ``cache_hits``/``cache_misses`` count the node's observation-cache
    traffic during this run: a hit means the deterministic simulator had
    already answered that (partition, load) point, so the window cost no
    re-simulation (counter noise, when enabled, is still re-drawn per
    window — see :class:`repro.server.node.Node`).

    ``telemetry`` is the run-scoped snapshot (per-phase span breakdown,
    cumulative counters) when the engine ran with a telemetry context,
    else ``None``.
    """

    best_config: Optional[Configuration]
    best_score: float
    best_observation: Optional[Observation]
    samples: Tuple[SampleRecord, ...]
    infeasible_jobs: Tuple[str, ...]
    converged: bool
    cache_hits: int = 0
    cache_misses: int = 0
    telemetry: Optional[TelemetrySnapshot] = None

    @property
    def samples_taken(self) -> int:
        return len(self.samples)

    @property
    def qos_met(self) -> bool:
        """Whether the best configuration met every LC job's QoS."""
        return self.best_observation is not None and self.best_observation.all_qos_met


@dataclass
class CLITEEngine:
    """Drives Algorithm 1 on one node.

    Usage::

        engine = CLITEEngine(node)
        result = engine.optimize()
        if result.qos_met:
            node.isolation.apply(result.best_config)
    """

    node: Node
    config: CLITEConfig = field(default_factory=CLITEConfig)

    def __post_init__(self) -> None:
        if self.config.batch_k < 1:
            raise ValueError("batch_k must be >= 1")
        self._rng = np.random.default_rng(self.config.seed)
        self._telemetry = (
            self.config.telemetry
            if self.config.telemetry is not None
            else NULL_TELEMETRY
        )
        self._tracer = self._telemetry.tracer
        self._service = ObservationService(
            self.node,
            parallel=self.config.parallel_observe,
            workers=self.config.observe_workers,
            telemetry=self._telemetry,
        )
        self.score_fn = ScoreFunction()
        self._dropout = DropoutCopy(
            random_job_prob=self.config.dropout_random_prob,
            enabled=self.config.dropout_enabled,
            rng=self._rng,
        )
        self._optimizer = AcquisitionOptimizer(
            self.node.space,
            acquisition=self.config.build_acquisition(),
            n_restarts=self.config.n_restarts,
            rng=self._rng,
            tracer=self._tracer,
        )
        self._termination = EITermination(
            base_threshold=self.config.ei_threshold,
            jobs_scale=self.config.ei_jobs_scale,
            patience=self.config.ei_patience,
            min_iterations=self.config.ei_min_iterations,
        )

    # ------------------------------------------------------------------
    # Bootstrap
    # ------------------------------------------------------------------
    def _bootstrap_samples(self) -> Tuple[List[SampleRecord], Tuple[str, ...]]:
        records: List[SampleRecord] = []
        if self.config.informed_bootstrap:
            result = run_bootstrap(self.node, self.score_fn)
            for i, (config, obs, score) in enumerate(
                zip(result.configs, result.observations, result.scores)
            ):
                records.append(
                    SampleRecord(i, "bootstrap", config, obs, score)
                )
            infeasible = result.infeasible_jobs
        else:
            # Random-bootstrap ablation: same sample count, no structure.
            n_init = len(bootstrap_configurations(self.node.space))
            seen: Set[Tuple[int, ...]] = set()
            for i in range(n_init):
                config = self._random_unseen(seen)
                seen.add(config.flat())
                obs = self.node.observe(config)
                records.append(
                    SampleRecord(i, "bootstrap", config, obs, self.score_fn(obs))
                )
            infeasible = ()
        return records, infeasible

    def _batch_room(self, records: List["SampleRecord"]) -> int:
        """How many of this round's candidates the sample budget can take."""
        k = self.config.batch_k
        if self.config.max_samples is None:
            return k
        room = (
            self.config.max_samples - self.config.confirm_top - len(records)
        )
        return max(1, min(k, room))

    def _random_unseen(
        self, sampled: Set[Tuple[int, ...]], tries: int = 200
    ) -> Configuration:
        for _ in range(tries):
            config = self.node.space.random(self._rng)
            if config.flat() not in sampled:
                return config
        return self.node.space.random(self._rng)

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def optimize(self) -> CLITEResult:
        """Run the full bootstrap-then-BO loop and return the best found.

        With telemetry enabled, the run is wrapped in an
        ``engine.optimize`` root span (phases nest under it), the
        context is installed on the node so observation windows and
        cache traffic are recorded too, and the returned result carries
        a snapshot scoped to exactly this run's spans.
        """
        telemetry = self._telemetry
        if telemetry.active and not self.node.telemetry.active:
            self.node.telemetry = telemetry
        spans_before = telemetry.tracer.finished_count
        try:
            with telemetry.tracer.span(
                "engine.optimize", jobs=self.node.n_jobs
            ) as span:
                result = self._optimize()
                span.set("samples", result.samples_taken)
                span.set("qos_met", result.qos_met)
                span.set("converged", result.converged)
        finally:
            # Release the observation pool's worker threads even when a
            # run dies mid-loop; the service re-creates its pool lazily,
            # so the engine stays reusable after this.
            self._service.close()
        if not telemetry.active:
            return result
        telemetry.metrics.counter("engine.runs").add()
        telemetry.metrics.counter("engine.samples").add(result.samples_taken)
        return replace(
            result, telemetry=telemetry.snapshot(spans_since=spans_before)
        )

    def _optimize(self) -> CLITEResult:
        cache_hits0, cache_misses0 = self.node.cache_info()
        with self._tracer.span("engine.bootstrap"):
            records, infeasible = self._bootstrap_samples()
        if infeasible and self.config.stop_on_infeasible:
            best = max(records, key=lambda r: r.score)
            hits, misses = self.node.cache_info()
            return CLITEResult(
                best_config=best.config,
                best_score=best.score,
                best_observation=best.observation,
                samples=tuple(records),
                infeasible_jobs=infeasible,
                converged=False,
                cache_hits=hits - cache_hits0,
                cache_misses=misses - cache_misses0,
            )

        for record in records:
            self._dropout.update(record.config, record.observation, self.node)

        sampled: Set[Tuple[int, ...]] = {r.config.flat() for r in records}
        gp = GaussianProcess(
            kernel=self.config.build_kernel(), noise=self.config.gp_noise
        )
        self._termination.reset()
        converged = False
        first_qos_iteration: Optional[int] = None
        n_conditioned = 0  # records already folded into the GP

        for iteration in range(self.config.max_iterations):
            if (
                self.config.max_samples is not None
                and len(records)
                >= self.config.max_samples - self.config.confirm_top
            ):
                # Leave room in the budget for the confirmation windows.
                break
            self._telemetry.metrics.counter("engine.iterations").add()
            # Condition the surrogate on the new observations only: the
            # first round is a batch fit, every later round a rank-1
            # Cholesky update per new sample (the GP refits itself in
            # full only when its lengthscale heuristic shifts).
            if not gp.is_fitted:
                x = np.array(
                    [self.node.space.to_unit_cube(r.config) for r in records]
                )
                y = np.array([r.score for r in records])
                gp.fit(x, y)
            else:
                for record in records[n_conditioned:]:
                    gp.add_sample(
                        self.node.space.to_unit_cube(record.config),
                        record.score,
                    )
            n_conditioned = len(records)

            best_record = max(records, key=lambda r: r.score)

            # While QoS is unmet, alternate BO rounds with directed
            # repair moves: transfer the resource the most violating
            # job is most sensitive to, from the most comfortable
            # donor.  Repair exploits near-feasible cases in a handful
            # of windows; the interleaved BO rounds handle the mixes
            # where such coordinate moves cycle (Fig. 9b's regime).
            if not best_record.observation.all_qos_met and iteration % 2 == 0:
                repair = self._repair_candidate(best_record, sampled)
                if repair is not None:
                    with self._tracer.span("engine.observe", phase="repair"):
                        observation = self.node.observe(repair)
                    score = self.score_fn(observation)
                    self._dropout.update(repair, observation, self.node)
                    sampled.add(repair.flat())
                    records.append(
                        SampleRecord(
                            index=len(records),
                            phase="repair",
                            config=repair,
                            observation=observation,
                            score=score,
                        )
                    )
                    continue

            dropout = self._dropout.choose(self.node)
            exploit_round = (
                self.config.exploit_every > 0
                and iteration % self.config.exploit_every
                == self.config.exploit_every - 1
            )
            with self._tracer.span("engine.propose", iteration=iteration):
                if exploit_round:
                    proposal = self._optimizer.propose_exploit(
                        gp,
                        incumbent=best_record.config,
                        sampled=sampled,
                        upper_caps=self._upper_caps(records),
                    )
                else:
                    proposal = self._optimizer.propose(
                        gp,
                        best_score=best_record.score,
                        sampled=sampled,
                        incumbent=best_record.config,
                        dropout=dropout,
                        upper_caps=self._upper_caps(records),
                        max_candidates=(
                            self.config.batch_k
                            if self.config.batch_k > 1
                            else None
                        ),
                    )
            if first_qos_iteration is None and any(
                r.observation.all_qos_met for r in records
            ):
                first_qos_iteration = iteration
            stop_allowed = (
                first_qos_iteration is not None
                and iteration - first_qos_iteration
                >= self.config.post_qos_iterations
            )
            should_stop = not exploit_round and self._termination.update(
                proposal.max_acquisition, self.node.n_jobs
            )
            if should_stop and stop_allowed:
                converged = True
                break

            picks: List[Tuple[Configuration, Optional[float]]]
            if proposal.candidates:
                picks = [
                    (c.config, c.acquisition_value)
                    for c in proposal.candidates[: self._batch_room(records)]
                ]
            else:
                picks = [(self._random_unseen(sampled), None)]

            with self._tracer.span("engine.observe", phase="search"):
                observations = self._service.observe_batch(
                    [config for config, _ in picks]
                )
            for (config, ei), observation in zip(picks, observations):
                score = self.score_fn(observation)
                self._dropout.update(config, observation, self.node)
                sampled.add(config.flat())
                records.append(
                    SampleRecord(
                        index=len(records),
                        phase="search",
                        config=config,
                        observation=observation,
                        score=score,
                        expected_improvement=ei,
                    )
                )

        with self._tracer.span("engine.refine"):
            self._refine(records, sampled)
        with self._tracer.span("engine.confirm"):
            best = self._confirm_best(records)
        hits, misses = self.node.cache_info()
        return CLITEResult(
            best_config=best.config,
            best_score=best.score,
            best_observation=best.observation,
            samples=tuple(records),
            infeasible_jobs=infeasible,
            converged=converged,
            cache_hits=hits - cache_hits0,
            cache_misses=misses - cache_misses0,
        )

    def _repair_candidate(
        self,
        incumbent: SampleRecord,
        sampled: Set[Tuple[int, ...]],
    ) -> Optional[Configuration]:
        """A directed single-unit move toward feasibility.

        Finds the LC job furthest from its QoS in the incumbent and
        proposes the unsampled transfer with the best (violator
        sensitivity to the resource) x (donor comfort) product.  BG
        donors are always comfortable; LC donors are weighted by their
        squared QoS ratio so a transfer never knowingly creates a new
        violator.  Returns ``None`` when every such move was tried.
        """
        obs = incumbent.observation
        violators = [
            j
            for j in self.node.lc_indices
            if not obs.job(self.node.jobs[j].name).qos_met
        ]
        if not violators:
            return None
        victim = min(
            violators,
            key=lambda j: obs.job(self.node.jobs[j].name).qos_ratio,
        )
        victim_workload = self.node.jobs[victim].workload
        config = incumbent.config
        candidates = []
        for r, resource in enumerate(self.node.spec.resources):
            if resource.name == CORES:
                sensitivity = 0.8  # cores always relieve a saturated queue
            else:
                sensitivity = victim_workload.profile.sensitivity(resource.name)
            for donor in range(self.node.n_jobs):
                if donor == victim or config.get(donor, r) <= 1:
                    continue
                if donor in self.node.bg_indices:
                    comfort = 0.8
                else:
                    comfort = obs.job(self.node.jobs[donor].name).qos_ratio ** 2
                move = config.with_transfer(r, donor, victim)
                if move.flat() in sampled:
                    continue
                candidates.append((sensitivity * comfort + 1e-6, move))
        if not candidates:
            return None
        return max(candidates, key=lambda pair: pair[0])[1]

    def _refine(
        self,
        records: List[SampleRecord],
        sampled: Set[Tuple[int, ...]],
    ) -> None:
        """Greedy post-BO reshuffling of leftovers toward the BG jobs.

        The paper's CLITE "does not stop after meeting QoS targets, it
        reshuffles resources to improve every job's performance".  The
        BO phase maps the feasible region; this phase walks it with real
        observations: starting from the incumbent, repeatedly donate one
        unit from the LC job with the most latency slack to a BG job,
        keep the move iff the measured Eq. 3 score improved, and stop
        after ``refine_patience`` consecutive rejected moves or when the
        move budget runs out.  Mutates ``records``/``sampled`` in place.
        """
        budget = self.config.refine_budget
        if budget <= 0 or not self.node.bg_indices:
            return
        current = max(records, key=lambda r: r.score)
        if not current.observation.all_qos_met:
            return
        failures = 0
        rejected: Set[Tuple[int, ...]] = set()
        for _ in range(budget):
            if (
                self.config.max_samples is not None
                and len(records)
                >= self.config.max_samples - self.config.confirm_top
            ):
                break
            move = self._pick_refine_move(current, rejected)
            if move is None:
                break
            observation = self.node.observe(move)
            score = self.score_fn(observation)
            self._dropout.update(move, observation, self.node)
            sampled.add(move.flat())
            record = SampleRecord(
                index=len(records),
                phase="refine",
                config=move,
                observation=observation,
                score=score,
            )
            records.append(record)
            if score > current.score and observation.all_qos_met:
                current = record
                failures = 0
                rejected.clear()
            else:
                rejected.add(move.flat())
                failures += 1
                if failures >= self.config.refine_patience:
                    break

    def _pick_refine_move(
        self,
        current: SampleRecord,
        rejected: Set[Tuple[int, ...]],
    ) -> Optional[Configuration]:
        """The most promising untried LC-to-BG single-unit donation.

        Donations are ranked by donor latency slack times the receiving
        BG job's sensitivity to the donated resource, so bandwidth goes
        to bandwidth-hungry jobs first.
        """
        candidates = []
        config = current.config
        for donor in self.node.lc_indices:
            reading = current.observation.job(self.node.jobs[donor].name)
            slack = (
                reading.qos_target_ms - reading.p95_ms
            ) / reading.qos_target_ms
            if slack <= 0:
                continue
            for r, resource in enumerate(self.node.spec.resources):
                if config.get(donor, r) <= 1:
                    continue
                for receiver in self.node.bg_indices:
                    workload = self.node.jobs[receiver].workload
                    if resource.name == CORES:
                        sensitivity = workload.core_curve.weight
                    else:
                        sensitivity = workload.profile.sensitivity(resource.name)
                    move = config.with_transfer(r, donor, receiver)
                    if move.flat() in rejected:
                        continue
                    candidates.append((slack * (sensitivity + 0.05), move))
        if not candidates:
            return None
        return max(candidates, key=lambda pair: pair[0])[1]

    def _upper_caps(self, records: List[SampleRecord]) -> Optional[np.ndarray]:
        """Per-job unit caps for constrained execution (Sec. 4).

        LC jobs are capped at one unit above their allocation in the
        best *QoS-meeting* sample so far; BG jobs are never capped.
        Using the incumbent's rows — rather than, say, each job's
        individually cheapest feasible row across different samples —
        matters: rows taken from different samples are not jointly
        feasible, and a single noisy "feasible" reading could then trap
        the whole search inside a box where every partition violates
        QoS.  The incumbent's rows are jointly feasible by construction.
        Returns ``None`` until some sample has met every QoS, or when
        the pruning is disabled.
        """
        if not self.config.constrained_execution:
            return None
        feasible = [r for r in records if r.observation.all_qos_met]
        if not feasible:
            return None
        incumbent = max(feasible, key=lambda r: r.score)
        space = self.node.space
        n_jobs = space.n_jobs
        caps = np.array(
            [
                [res.units - n_jobs + 1 for res in space.spec.resources]
                for _ in range(n_jobs)
            ],
            dtype=float,
        )
        for j, job in enumerate(self.node.jobs):
            if not job.is_lc:
                continue
            row = np.asarray(incumbent.config.job_allocation(j), dtype=float)
            caps[j] = np.minimum(caps[j], row + 1.0)
        return caps

    def _confirm_best(self, records: List[SampleRecord]) -> SampleRecord:
        """Re-observe the top configurations and pick by the worse reading.

        Appends the confirmation windows to ``records`` so they count
        toward the sampling overhead, like any other observation.
        """
        k = min(self.config.confirm_top, len(records))
        if self.config.max_samples is not None:
            k = min(k, self.config.max_samples - len(records))
        if k < 1:
            return max(records, key=lambda r: r.score)
        top = sorted(records, key=lambda r: r.score, reverse=True)[:k]
        confirmed: List[SampleRecord] = []
        for record in top:
            observation = self.node.observe(record.config)
            score = self.score_fn(observation)
            confirm = SampleRecord(
                index=len(records),
                phase="confirm",
                config=record.config,
                observation=observation,
                score=min(score, record.score),
            )
            records.append(
                SampleRecord(
                    index=confirm.index,
                    phase="confirm",
                    config=record.config,
                    observation=observation,
                    score=score,
                )
            )
            confirmed.append(confirm)
        return max(confirmed, key=lambda r: r.score)
