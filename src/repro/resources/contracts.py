"""Runtime enforcement of the resource-partition contracts (Eqs. 5-6).

Every partition that enters the system — fabricated by a constructor,
proposed by the acquisition optimizer, reported best by a policy, or
implied by a cluster placement — must satisfy three invariants:

* **integer units** — allocations live on the lattice, never fractions;
* **>= 1 unit per job** — Eq. 5's lower bound;
* **sums to capacity** — each resource column adds up to exactly that
  resource's unit count (Eq. 6).

The decorators below check those invariants on function *outputs* and
raise :class:`ContractViolation` on the first breach.  ``repro-lint``
(rules RPL301-RPL304) statically verifies the decorators are present on
every boundary function, so the two layers together make the contracts
unskippable.  Set ``REPRO_CONTRACTS=0`` to disable the runtime checks
(e.g. in production-scale sweeps where the lint gate already ran).
"""

from __future__ import annotations

import functools
import os
from typing import Any, Callable, Optional, Sequence, TypeVar

import numpy as np

F = TypeVar("F", bound=Callable[..., Any])


class ContractViolation(AssertionError):
    """A partition invariant (Eq. 5/6) was violated at runtime."""


def _env_enabled() -> bool:
    return os.environ.get("REPRO_CONTRACTS", "1").lower() not in (
        "0",
        "false",
        "off",
    )


#: Module-level switch, initialized from ``REPRO_CONTRACTS`` at import.
_ENABLED = _env_enabled()


def contracts_enabled() -> bool:
    return _ENABLED


def set_contracts_enabled(enabled: bool) -> bool:
    """Toggle runtime contract checking; returns the previous value."""
    global _ENABLED  # repro-lint: disable=RPL201
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


# ----------------------------------------------------------------------
# Core matrix check
# ----------------------------------------------------------------------
def check_partition_matrix(
    matrix: Any, capacities: Sequence[int], context: str
) -> None:
    """Validate one ``(n_jobs, n_resources)`` allocation (or a stack).

    Accepts a 2-D matrix or a 3-D ``(n, n_jobs, n_resources)`` batch.

    Raises:
        ContractViolation: on non-integer units, any unit below the
            Eq. 5 floor, or a resource column not summing to capacity.
    """
    arr = np.asarray(matrix)
    if arr.ndim == 2:
        arr = arr[None, :, :]
    if arr.ndim != 3:
        raise ContractViolation(
            f"{context}: expected a 2-D partition or 3-D batch, "
            f"got shape {arr.shape}"
        )
    if arr.size == 0:
        return
    if not np.issubdtype(arr.dtype, np.integer):
        if not np.all(np.equal(np.mod(arr, 1), 0)):
            raise ContractViolation(
                f"{context}: allocations must be integer units"
            )
        arr = arr.astype(int)
    if (arr < 1).any():
        raise ContractViolation(
            f"{context}: every job needs >= 1 unit of every resource "
            f"(Eq. 5); min was {int(arr.min())}"
        )
    caps = np.asarray(capacities, dtype=int)
    sums = arr.sum(axis=1)
    if (sums != caps[None, :]).any():
        raise ContractViolation(
            f"{context}: resource columns must sum to {caps.tolist()} "
            f"(Eq. 6); got {sums[0].tolist()}"
            + ("" if len(sums) == 1 else " (first of batch)")
        )


def _capacities_of(space: Any) -> Sequence[int]:
    return [r.units for r in space.spec.resources]


def _config_matrix(config: Any) -> Any:
    """Duck-typed accessor: Configuration-likes expose ``as_array``."""
    as_array = getattr(config, "as_array", None)
    return as_array() if as_array is not None else config


# ----------------------------------------------------------------------
# Decorators (verified present by repro-lint RPL301-RPL304)
# ----------------------------------------------------------------------
def partition_contract(fn: F) -> F:
    """For ``ConfigurationSpace`` constructors returning partitions.

    Handles both scalar constructors (returning a ``Configuration``)
    and batch constructors (returning an integer ndarray stack).
    """

    @functools.wraps(fn)
    def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
        result = fn(self, *args, **kwargs)
        if _ENABLED:
            check_partition_matrix(
                _config_matrix(result),
                _capacities_of(self),
                f"{type(self).__name__}.{fn.__name__}",
            )
        return result

    return wrapper  # type: ignore[return-value]


def proposal_contract(fn: F) -> F:
    """For acquisition ``propose``/``propose_exploit`` methods.

    Every candidate configuration in the returned proposal must be a
    valid point of the optimizer's space.
    """

    @functools.wraps(fn)
    def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
        proposal = fn(self, *args, **kwargs)
        if _ENABLED and proposal.candidates:
            stack = np.stack(
                [_config_matrix(c.config) for c in proposal.candidates]
            )
            check_partition_matrix(
                stack,
                _capacities_of(self.space),
                f"{type(self).__name__}.{fn.__name__}",
            )
        return proposal

    return wrapper  # type: ignore[return-value]


def policy_contract(fn: F) -> F:
    """For ``Policy.partition`` implementations.

    Checks that the reported best configuration is a valid point of the
    node's space, that ``qos_met`` agrees with the best observation,
    and that the online trace respected the sampling budget.
    """

    @functools.wraps(fn)
    def wrapper(self: Any, node: Any, budget: Any, *args: Any, **kwargs: Any) -> Any:
        result = fn(self, node, budget, *args, **kwargs)
        if not _ENABLED:
            return result
        context = f"{type(self).__name__}.partition"
        if result.best_config is not None:
            check_partition_matrix(
                _config_matrix(result.best_config),
                _capacities_of(node.space),
                context,
            )
        if result.best_observation is not None and (
            result.qos_met != result.best_observation.all_qos_met
        ):
            raise ContractViolation(
                f"{context}: qos_met={result.qos_met} contradicts the "
                "best observation"
            )
        if len(result.trace) > budget.max_samples:
            raise ContractViolation(
                f"{context}: trace has {len(result.trace)} samples, over "
                f"the budget of {budget.max_samples}"
            )
        return result

    return wrapper  # type: ignore[return-value]


def placement_contract(fn: F) -> F:
    """For ``PlacementPolicy.place`` implementations.

    Checks that every placement targets an existing node, that no
    request is both placed and rejected, and that the reported machine
    count is consistent with the cluster.
    """

    @functools.wraps(fn)
    def wrapper(
        self: Any, cluster: Any, requests: Any, *args: Any, **kwargs: Any
    ) -> Any:
        outcome = fn(self, cluster, requests, *args, **kwargs)
        if not _ENABLED:
            return outcome
        context = f"{type(self).__name__}.place"
        n_nodes = len(cluster.nodes)
        bad = [i for i in outcome.placements.values() if not 0 <= i < n_nodes]
        if bad:
            raise ContractViolation(
                f"{context}: placement onto nonexistent node index "
                f"{bad[0]} (cluster has {n_nodes})"
            )
        overlap = set(outcome.rejected) & set(outcome.placements)
        if overlap:
            raise ContractViolation(
                f"{context}: requests both placed and rejected: "
                f"{sorted(overlap)}"
            )
        distinct = len(set(outcome.placements.values()))
        if not distinct <= outcome.machines_used <= n_nodes:
            raise ContractViolation(
                f"{context}: machines_used={outcome.machines_used} "
                f"inconsistent with {distinct} placed nodes of {n_nodes}"
            )
        return outcome

    return wrapper  # type: ignore[return-value]


__all__ = [
    "ContractViolation",
    "check_partition_matrix",
    "contracts_enabled",
    "partition_contract",
    "placement_contract",
    "policy_contract",
    "proposal_contract",
    "set_contracts_enabled",
]
