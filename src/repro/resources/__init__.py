"""Partitionable-resource substrate: specs, configurations, isolation tools."""

from .allocation import Configuration, ConfigurationSpace
from .isolation import IsolationManager, ToolInvocation
from .spec import (
    CORES,
    DISK_BANDWIDTH,
    LLC_WAYS,
    MEMORY_BANDWIDTH,
    MEMORY_CAPACITY,
    NETWORK_BANDWIDTH,
    Resource,
    ServerSpec,
    default_server,
    full_server,
    small_server,
)

__all__ = [
    "CORES",
    "DISK_BANDWIDTH",
    "LLC_WAYS",
    "MEMORY_BANDWIDTH",
    "MEMORY_CAPACITY",
    "NETWORK_BANDWIDTH",
    "Configuration",
    "ConfigurationSpace",
    "IsolationManager",
    "Resource",
    "ServerSpec",
    "ToolInvocation",
    "default_server",
    "full_server",
    "small_server",
]
