"""Resource-partition configurations.

A *configuration* assigns an integer number of units of every shared
resource to every co-located job (e.g. "3 cores + 4 LLC ways + 30% memory
bandwidth to job 0, ...").  Configurations are the points of the search
space that CLITE's Bayesian optimizer navigates, so this module also
provides the mappings between integer configurations and the continuous
unit cube the Gaussian process operates in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

from .contracts import partition_contract
from .spec import ServerSpec


@dataclass(frozen=True)
class Configuration:
    """An immutable (n_jobs x n_resources) integer allocation matrix.

    ``units[j][r]`` is the number of units of resource ``r`` (in
    ``spec.resources`` order) held by job ``j``.
    """

    units: Tuple[Tuple[int, ...], ...]

    @staticmethod
    def from_matrix(matrix: Iterable[Iterable[int]]) -> "Configuration":
        return Configuration(tuple(tuple(int(v) for v in row) for row in matrix))

    @property
    def n_jobs(self) -> int:
        return len(self.units)

    @property
    def n_resources(self) -> int:
        return len(self.units[0]) if self.units else 0

    def get(self, job: int, resource: int) -> int:
        return self.units[job][resource]

    def as_array(self) -> np.ndarray:
        """Return a fresh ``(n_jobs, n_resources)`` int array."""
        return np.array(self.units, dtype=int)

    def flat(self) -> Tuple[int, ...]:
        """Row-major flattening, job-major: (j0r0, j0r1, ..., j1r0, ...)."""
        return tuple(v for row in self.units for v in row)

    def with_transfer(
        self, resource: int, donor: int, receiver: int, amount: int = 1
    ) -> "Configuration":
        """Move ``amount`` units of one resource between two jobs.

        Raises:
            ValueError: if the donor would drop below one unit.
        """
        if donor == receiver:
            raise ValueError("donor and receiver must differ")
        matrix = [list(row) for row in self.units]
        if matrix[donor][resource] - amount < 1:
            raise ValueError(
                f"job {donor} holds {matrix[donor][resource]} units of "
                f"resource {resource}; cannot give away {amount}"
            )
        matrix[donor][resource] -= amount
        matrix[receiver][resource] += amount
        return Configuration.from_matrix(matrix)

    def job_allocation(self, job: int) -> Tuple[int, ...]:
        """All resource units held by one job."""
        return self.units[job]

    def resource_column(self, resource: int) -> Tuple[int, ...]:
        """Units of one resource across all jobs."""
        return tuple(row[resource] for row in self.units)

    def distance(self, other: "Configuration") -> float:
        """Euclidean distance in raw unit space (used by RAND+ dedup)."""
        a = np.asarray(self.flat(), dtype=float)
        b = np.asarray(other.flat(), dtype=float)
        return float(np.linalg.norm(a - b))


def _round_column(weights: np.ndarray, total: int) -> np.ndarray:
    """Round non-negative weights to integers >= 1 summing to ``total``.

    Uses the largest-remainder method on top of a guaranteed one-unit
    floor per job, which is Eq. 5's lower bound.
    """
    weights = np.asarray(weights, dtype=float)
    return _round_columns_batch(weights[None, :], total)[0]


def _round_columns_batch(weights: np.ndarray, total: int) -> np.ndarray:
    """Vectorized :func:`_round_column` over a batch of weight rows.

    Args:
        weights: Non-negative weights, shape (batch, n_jobs).
        total: Units each output row must sum to.

    Returns:
        Integer array of shape (batch, n_jobs), every entry >= 1 and
        every row summing to ``total``, with exactly the same rounding
        (largest remainder, ties broken by job index) as the scalar
        version.
    """
    w = np.clip(np.asarray(weights, dtype=float), 0.0, None)
    if w.ndim != 2:
        raise ValueError("batch weights must be 2-D (batch, n_jobs)")
    n = w.shape[1]
    if total < n:
        raise ValueError(f"cannot give {n} jobs >=1 unit out of {total}")
    spare = total - n
    sums = w.sum(axis=1)
    degenerate = sums <= 0
    if degenerate.any():
        w[degenerate] = 1.0
        sums = np.where(degenerate, float(n), sums)
    shares = w / sums[:, None] * spare
    base = np.floor(shares).astype(int)
    remainder = spare - base.sum(axis=1)
    # Highest fractional parts get the leftover units; ties broken by
    # job index for determinism (stable sort on the negated fractions).
    order = np.argsort(-(shares - base), axis=1, kind="stable")
    ranks = np.empty_like(order)
    np.put_along_axis(
        ranks, order, np.broadcast_to(np.arange(n), order.shape), axis=1
    )
    base += ranks < remainder[:, None]
    return base + 1


class ConfigurationSpace:
    """The discrete space of all valid partitions of a server among jobs.

    Provides the combinatorics from Sec. 2 (the space has
    ``prod(C(units_r - 1, n_jobs - 1))`` points), canonical bootstrap
    points, uniform random sampling, lattice enumeration for ORACLE, and
    the [0, 1] unit-cube encoding used by the Gaussian process.
    """

    def __init__(self, spec: ServerSpec, n_jobs: int) -> None:
        if n_jobs < 1:
            raise ValueError("need at least one job")
        max_jobs = spec.max_jobs()
        if n_jobs > max_jobs:
            raise ValueError(
                f"{n_jobs} jobs cannot each get one unit of every resource "
                f"on this server (max {max_jobs})"
            )
        self.spec = spec
        self.n_jobs = n_jobs
        self._units = np.array([r.units for r in spec.resources], dtype=int)
        self._units_list = [int(r.units) for r in spec.resources]

    @property
    def n_resources(self) -> int:
        return self.spec.n_resources

    @property
    def n_dims(self) -> int:
        """Dimensionality of the (job, resource) allocation vector."""
        return self.n_jobs * self.n_resources

    # ------------------------------------------------------------------
    # Combinatorics
    # ------------------------------------------------------------------
    def size(self) -> int:
        """Total number of valid configurations (Sec. 2 formula)."""
        from math import comb

        total = 1
        for units in self._units:
            total *= comb(int(units) - 1, self.n_jobs - 1)
        return total

    def strided_size(self, stride: int) -> int:
        """Number of points :meth:`enumerate` yields for this stride."""
        total = 1
        for units in self._units:
            total *= sum(
                1 for _ in self._compositions(int(units), self.n_jobs, stride)
            )
        return total

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, config: Configuration) -> None:
        """Raise ``ValueError`` if ``config`` is not a point of this space."""
        if config.n_jobs != self.n_jobs:
            raise ValueError(
                f"expected {self.n_jobs} jobs, got {config.n_jobs}"
            )
        if config.n_resources != self.n_resources:
            raise ValueError(
                f"expected {self.n_resources} resources, got {config.n_resources}"
            )
        # Pure-Python checks: configurations are tiny (jobs x resources),
        # so tuple arithmetic beats round-tripping through numpy arrays.
        units = config.units
        if any(v < 1 for row in units for v in row):
            raise ValueError(
                f"every job needs >= 1 unit of every resource: "
                f"{[list(row) for row in units]}"
            )
        sums = [sum(col) for col in zip(*units)]
        if sums != self._units_list:
            raise ValueError(
                f"resource columns must sum to {self._units_list}, got {sums}"
            )

    def contains(self, config: Configuration) -> bool:
        try:
            self.validate(config)
        except ValueError:
            return False
        return True

    # ------------------------------------------------------------------
    # Canonical points (CLITE's bootstrap set, Sec. 4)
    # ------------------------------------------------------------------
    @partition_contract
    def equal_partition(self) -> Configuration:
        """Divide every resource as equally as possible among the jobs."""
        matrix = np.empty((self.n_jobs, self.n_resources), dtype=int)
        for r, units in enumerate(self._units):
            base, extra = divmod(int(units), self.n_jobs)
            column = np.full(self.n_jobs, base, dtype=int)
            column[:extra] += 1
            matrix[:, r] = column
        return Configuration.from_matrix(matrix)

    @partition_contract
    def max_allocation(self, job: int) -> Configuration:
        """Give ``job`` everything except the one-unit floor of the others."""
        if not 0 <= job < self.n_jobs:
            raise IndexError(f"job index {job} out of range")
        matrix = np.ones((self.n_jobs, self.n_resources), dtype=int)
        for r, units in enumerate(self._units):
            matrix[job, r] = int(units) - self.n_jobs + 1
        return Configuration.from_matrix(matrix)

    # ------------------------------------------------------------------
    # Sampling and enumeration
    # ------------------------------------------------------------------
    @partition_contract
    def random(self, rng: np.random.Generator) -> Configuration:
        """Draw a configuration uniformly at random.

        Each resource column is a uniform random composition of its units
        into ``n_jobs`` positive parts (classic stars-and-bars sampling).
        """
        matrix = np.empty((self.n_jobs, self.n_resources), dtype=int)
        for r, units in enumerate(self._units):
            units = int(units)
            if self.n_jobs == 1:
                matrix[0, r] = units
                continue
            cuts = rng.choice(units - 1, size=self.n_jobs - 1, replace=False)
            cuts.sort()
            bounds = np.concatenate(([0], cuts + 1, [units]))
            matrix[:, r] = np.diff(bounds)
        return Configuration.from_matrix(matrix)

    @partition_contract
    def random_batch(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` uniform random configurations as one integer array.

        Returns a ``(n, n_jobs, n_resources)`` array; each slice is a
        valid partition (columns sum to the resource capacity, every
        entry >= 1).  The sampler is the same stars-and-bars construction
        as :meth:`random` — each resource column is a uniformly random
        composition, here drawn as the ``n_jobs - 1`` smallest of
        ``units - 1`` iid uniforms (a uniform random cut subset) — so
        the two are distributionally identical, but the batch form
        consumes the generator stream differently and is one vectorized
        numpy pass instead of ``n`` Python-level round trips.
        """
        if n < 0:
            raise ValueError(f"batch size must be >= 0, got {n}")
        out = np.empty((n, self.n_jobs, self.n_resources), dtype=int)
        if n == 0:
            return out
        for r, units in enumerate(self._units):
            units = int(units)
            if self.n_jobs == 1:
                out[:, 0, r] = units
                continue
            u = rng.random((n, units - 1))
            # Indices of the (n_jobs - 1) smallest uniforms form a
            # uniform random (n_jobs - 1)-subset of the cut positions.
            cuts = np.argpartition(u, self.n_jobs - 2, axis=1)[
                :, : self.n_jobs - 1
            ]
            cuts.sort(axis=1)
            bounds = np.concatenate(
                [
                    np.zeros((n, 1), dtype=int),
                    cuts + 1,
                    np.full((n, 1), units, dtype=int),
                ],
                axis=1,
            )
            out[:, :, r] = np.diff(bounds, axis=1)
        return out

    def neighbor_matrices(self, config: Configuration) -> np.ndarray:
        """All single-unit-transfer neighbors as one integer array.

        Returns a ``(k, n_jobs, n_resources)`` array in the same order
        :meth:`neighbors` yields them.
        """
        base = config.as_array()
        moves = [
            (r, donor, receiver)
            for r in range(self.n_resources)
            for donor in range(self.n_jobs)
            if base[donor, r] > 1
            for receiver in range(self.n_jobs)
            if receiver != donor
        ]
        mats = np.repeat(base[None, :, :], len(moves), axis=0)
        for i, (r, donor, receiver) in enumerate(moves):
            mats[i, donor, r] -= 1
            mats[i, receiver, r] += 1
        return mats

    def enumerate(self, stride: int = 1) -> Iterable[Configuration]:
        """Yield every configuration (optionally on a coarser lattice).

        With ``stride > 1`` only allocations congruent to 1 modulo
        ``stride`` (plus the boundary maximum) are considered per job,
        shrinking the lattice for tractable ORACLE sweeps.
        """
        if stride < 1:
            raise ValueError("stride must be >= 1")
        columns = [
            list(self._compositions(int(units), self.n_jobs, stride))
            for units in self._units
        ]

        def product(idx: int, rows: list) -> Iterable[Configuration]:
            if idx == len(columns):
                matrix = np.column_stack(rows)
                yield Configuration.from_matrix(matrix)
                return
            for column in columns[idx]:
                yield from product(idx + 1, rows + [np.asarray(column)])

        yield from product(0, [])

    @staticmethod
    def _compositions(total: int, parts: int, stride: int) -> Iterable[Tuple[int, ...]]:
        """All compositions of ``total`` into ``parts`` positive integers.

        With ``stride > 1``, each part except the last is restricted to
        ``{1, 1 + stride, 1 + 2*stride, ...}``; the last part absorbs the
        remainder so column sums stay exact.
        """
        if parts == 1:
            yield (total,)
            return
        first = 1
        while total - first >= parts - 1:
            for rest in ConfigurationSpace._compositions(
                total - first, parts - 1, stride
            ):
                yield (first,) + rest
            first += stride

    def neighbors(self, config: Configuration) -> Iterable[Configuration]:
        """All configurations one single-unit transfer away."""
        for r in range(self.n_resources):
            for donor in range(self.n_jobs):
                if config.get(donor, r) <= 1:
                    continue
                for receiver in range(self.n_jobs):
                    if receiver != donor:
                        yield config.with_transfer(r, donor, receiver)

    # ------------------------------------------------------------------
    # Unit-cube encoding for the Gaussian process
    # ------------------------------------------------------------------
    def to_unit_cube(self, config: Configuration) -> np.ndarray:
        """Map a configuration to a vector in ``[0, 1]^n_dims``.

        Each (job, resource) cell is scaled by that resource's feasible
        range ``[1, units - n_jobs + 1]`` (Eq. 5).  A degenerate resource
        whose range is a single point maps to 0.
        """
        arr = config.as_array().astype(float)
        spans = (self._units - self.n_jobs).astype(float)
        scaled = np.zeros_like(arr)
        nonzero = spans > 0
        scaled[:, nonzero] = (arr[:, nonzero] - 1.0) / spans[nonzero]
        return scaled.reshape(-1)

    def to_unit_cube_batch(self, matrices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`to_unit_cube` over a stack of allocations.

        Args:
            matrices: Integer allocations, shape
                ``(n, n_jobs, n_resources)`` (as produced by
                :meth:`random_batch` / :meth:`neighbor_matrices`).

        Returns:
            ``(n, n_dims)`` float array of unit-cube encodings, row ``i``
            identical to ``to_unit_cube`` of configuration ``i``.
        """
        arr = np.asarray(matrices, dtype=float)
        if arr.ndim != 3 or arr.shape[1:] != (self.n_jobs, self.n_resources):
            raise ValueError(
                f"expected (n, {self.n_jobs}, {self.n_resources}) matrices, "
                f"got {arr.shape}"
            )
        spans = (self._units - self.n_jobs).astype(float)
        scaled = np.zeros_like(arr)
        nonzero = spans > 0
        scaled[:, :, nonzero] = (arr[:, :, nonzero] - 1.0) / spans[nonzero]
        return scaled.reshape(len(arr), -1)

    @partition_contract
    def from_unit_cube(self, x: Sequence[float]) -> Configuration:
        """Project a unit-cube vector back onto the feasible lattice.

        The continuous vector is interpreted per resource as relative
        weights of the spare units (everything above the one-unit floor)
        and rounded with the largest-remainder method, so the result
        always satisfies Eqs. 5-6 exactly.
        """
        vec = np.asarray(x, dtype=float).reshape(self.n_jobs, self.n_resources)
        matrix = np.empty((self.n_jobs, self.n_resources), dtype=int)
        for r, units in enumerate(self._units):
            matrix[:, r] = _round_column(np.clip(vec[:, r], 0.0, 1.0), int(units))
        return Configuration.from_matrix(matrix)

    @partition_contract
    def from_unit_cube_batch(self, x: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`from_unit_cube` over a batch of cube vectors.

        Args:
            x: Cube vectors, shape ``(n, n_dims)``.

        Returns:
            ``(n, n_jobs, n_resources)`` integer allocations, row ``i``
            identical to ``from_unit_cube`` of vector ``i`` (same
            largest-remainder rounding and tie-breaking).
        """
        vec = np.asarray(x, dtype=float)
        if vec.ndim != 2 or vec.shape[1] != self.n_dims:
            raise ValueError(
                f"expected (n, {self.n_dims}) cube vectors, got {vec.shape}"
            )
        vec = np.clip(
            vec.reshape(len(vec), self.n_jobs, self.n_resources), 0.0, 1.0
        )
        out = np.empty(
            (len(vec), self.n_jobs, self.n_resources), dtype=int
        )
        for r, units in enumerate(self._units):
            out[:, :, r] = _round_columns_batch(vec[:, :, r], int(units))
        return out

    def bounds(self) -> np.ndarray:
        """``(n_dims, 2)`` box bounds of the unit cube (always [0, 1])."""
        return np.tile(np.array([0.0, 1.0]), (self.n_dims, 1))
