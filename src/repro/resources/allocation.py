"""Resource-partition configurations.

A *configuration* assigns an integer number of units of every shared
resource to every co-located job (e.g. "3 cores + 4 LLC ways + 30% memory
bandwidth to job 0, ...").  Configurations are the points of the search
space that CLITE's Bayesian optimizer navigates, so this module also
provides the mappings between integer configurations and the continuous
unit cube the Gaussian process operates in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

from .spec import ServerSpec


@dataclass(frozen=True)
class Configuration:
    """An immutable (n_jobs x n_resources) integer allocation matrix.

    ``units[j][r]`` is the number of units of resource ``r`` (in
    ``spec.resources`` order) held by job ``j``.
    """

    units: Tuple[Tuple[int, ...], ...]

    @staticmethod
    def from_matrix(matrix: Iterable[Iterable[int]]) -> "Configuration":
        return Configuration(tuple(tuple(int(v) for v in row) for row in matrix))

    @property
    def n_jobs(self) -> int:
        return len(self.units)

    @property
    def n_resources(self) -> int:
        return len(self.units[0]) if self.units else 0

    def get(self, job: int, resource: int) -> int:
        return self.units[job][resource]

    def as_array(self) -> np.ndarray:
        """Return a fresh ``(n_jobs, n_resources)`` int array."""
        return np.array(self.units, dtype=int)

    def flat(self) -> Tuple[int, ...]:
        """Row-major flattening, job-major: (j0r0, j0r1, ..., j1r0, ...)."""
        return tuple(v for row in self.units for v in row)

    def with_transfer(
        self, resource: int, donor: int, receiver: int, amount: int = 1
    ) -> "Configuration":
        """Move ``amount`` units of one resource between two jobs.

        Raises:
            ValueError: if the donor would drop below one unit.
        """
        if donor == receiver:
            raise ValueError("donor and receiver must differ")
        matrix = [list(row) for row in self.units]
        if matrix[donor][resource] - amount < 1:
            raise ValueError(
                f"job {donor} holds {matrix[donor][resource]} units of "
                f"resource {resource}; cannot give away {amount}"
            )
        matrix[donor][resource] -= amount
        matrix[receiver][resource] += amount
        return Configuration.from_matrix(matrix)

    def job_allocation(self, job: int) -> Tuple[int, ...]:
        """All resource units held by one job."""
        return self.units[job]

    def resource_column(self, resource: int) -> Tuple[int, ...]:
        """Units of one resource across all jobs."""
        return tuple(row[resource] for row in self.units)

    def distance(self, other: "Configuration") -> float:
        """Euclidean distance in raw unit space (used by RAND+ dedup)."""
        a = np.asarray(self.flat(), dtype=float)
        b = np.asarray(other.flat(), dtype=float)
        return float(np.linalg.norm(a - b))


def _round_column(weights: np.ndarray, total: int) -> np.ndarray:
    """Round non-negative weights to integers >= 1 summing to ``total``.

    Uses the largest-remainder method on top of a guaranteed one-unit
    floor per job, which is Eq. 5's lower bound.
    """
    n = len(weights)
    if total < n:
        raise ValueError(f"cannot give {n} jobs >=1 unit out of {total}")
    spare = total - n
    w = np.clip(np.asarray(weights, dtype=float), 0.0, None)
    if w.sum() <= 0:
        w = np.ones(n)
    shares = w / w.sum() * spare
    base = np.floor(shares).astype(int)
    remainder = spare - int(base.sum())
    if remainder:
        # Highest fractional parts get the leftover units; ties broken by
        # job index for determinism.
        order = np.argsort(-(shares - base), kind="stable")
        base[order[:remainder]] += 1
    return base + 1


class ConfigurationSpace:
    """The discrete space of all valid partitions of a server among jobs.

    Provides the combinatorics from Sec. 2 (the space has
    ``prod(C(units_r - 1, n_jobs - 1))`` points), canonical bootstrap
    points, uniform random sampling, lattice enumeration for ORACLE, and
    the [0, 1] unit-cube encoding used by the Gaussian process.
    """

    def __init__(self, spec: ServerSpec, n_jobs: int) -> None:
        if n_jobs < 1:
            raise ValueError("need at least one job")
        if n_jobs > spec.max_jobs():
            raise ValueError(
                f"{n_jobs} jobs cannot each get one unit of every resource "
                f"on this server (max {spec.max_jobs()})"
            )
        self.spec = spec
        self.n_jobs = n_jobs
        self._units = np.array([r.units for r in spec.resources], dtype=int)

    @property
    def n_resources(self) -> int:
        return self.spec.n_resources

    @property
    def n_dims(self) -> int:
        """Dimensionality of the (job, resource) allocation vector."""
        return self.n_jobs * self.n_resources

    # ------------------------------------------------------------------
    # Combinatorics
    # ------------------------------------------------------------------
    def size(self) -> int:
        """Total number of valid configurations (Sec. 2 formula)."""
        from math import comb

        total = 1
        for units in self._units:
            total *= comb(int(units) - 1, self.n_jobs - 1)
        return total

    def strided_size(self, stride: int) -> int:
        """Number of points :meth:`enumerate` yields for this stride."""
        total = 1
        for units in self._units:
            total *= sum(
                1 for _ in self._compositions(int(units), self.n_jobs, stride)
            )
        return total

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, config: Configuration) -> None:
        """Raise ``ValueError`` if ``config`` is not a point of this space."""
        if config.n_jobs != self.n_jobs:
            raise ValueError(
                f"expected {self.n_jobs} jobs, got {config.n_jobs}"
            )
        if config.n_resources != self.n_resources:
            raise ValueError(
                f"expected {self.n_resources} resources, got {config.n_resources}"
            )
        arr = config.as_array()
        if (arr < 1).any():
            raise ValueError(f"every job needs >= 1 unit of every resource: {arr}")
        sums = arr.sum(axis=0)
        if (sums != self._units).any():
            raise ValueError(
                f"resource columns must sum to {self._units.tolist()}, "
                f"got {sums.tolist()}"
            )

    def contains(self, config: Configuration) -> bool:
        try:
            self.validate(config)
        except ValueError:
            return False
        return True

    # ------------------------------------------------------------------
    # Canonical points (CLITE's bootstrap set, Sec. 4)
    # ------------------------------------------------------------------
    def equal_partition(self) -> Configuration:
        """Divide every resource as equally as possible among the jobs."""
        matrix = np.empty((self.n_jobs, self.n_resources), dtype=int)
        for r, units in enumerate(self._units):
            base, extra = divmod(int(units), self.n_jobs)
            column = np.full(self.n_jobs, base, dtype=int)
            column[:extra] += 1
            matrix[:, r] = column
        return Configuration.from_matrix(matrix)

    def max_allocation(self, job: int) -> Configuration:
        """Give ``job`` everything except the one-unit floor of the others."""
        if not 0 <= job < self.n_jobs:
            raise IndexError(f"job index {job} out of range")
        matrix = np.ones((self.n_jobs, self.n_resources), dtype=int)
        for r, units in enumerate(self._units):
            matrix[job, r] = int(units) - self.n_jobs + 1
        return Configuration.from_matrix(matrix)

    # ------------------------------------------------------------------
    # Sampling and enumeration
    # ------------------------------------------------------------------
    def random(self, rng: np.random.Generator) -> Configuration:
        """Draw a configuration uniformly at random.

        Each resource column is a uniform random composition of its units
        into ``n_jobs`` positive parts (classic stars-and-bars sampling).
        """
        matrix = np.empty((self.n_jobs, self.n_resources), dtype=int)
        for r, units in enumerate(self._units):
            units = int(units)
            if self.n_jobs == 1:
                matrix[0, r] = units
                continue
            cuts = rng.choice(units - 1, size=self.n_jobs - 1, replace=False)
            cuts.sort()
            bounds = np.concatenate(([0], cuts + 1, [units]))
            matrix[:, r] = np.diff(bounds)
        return Configuration.from_matrix(matrix)

    def enumerate(self, stride: int = 1) -> Iterable[Configuration]:
        """Yield every configuration (optionally on a coarser lattice).

        With ``stride > 1`` only allocations congruent to 1 modulo
        ``stride`` (plus the boundary maximum) are considered per job,
        shrinking the lattice for tractable ORACLE sweeps.
        """
        if stride < 1:
            raise ValueError("stride must be >= 1")
        columns = [
            list(self._compositions(int(units), self.n_jobs, stride))
            for units in self._units
        ]

        def product(idx: int, rows: list) -> Iterable[Configuration]:
            if idx == len(columns):
                matrix = np.column_stack(rows)
                yield Configuration.from_matrix(matrix)
                return
            for column in columns[idx]:
                yield from product(idx + 1, rows + [np.asarray(column)])

        yield from product(0, [])

    @staticmethod
    def _compositions(total: int, parts: int, stride: int) -> Iterable[Tuple[int, ...]]:
        """All compositions of ``total`` into ``parts`` positive integers.

        With ``stride > 1``, each part except the last is restricted to
        ``{1, 1 + stride, 1 + 2*stride, ...}``; the last part absorbs the
        remainder so column sums stay exact.
        """
        if parts == 1:
            yield (total,)
            return
        first = 1
        while total - first >= parts - 1:
            for rest in ConfigurationSpace._compositions(
                total - first, parts - 1, stride
            ):
                yield (first,) + rest
            first += stride

    def neighbors(self, config: Configuration) -> Iterable[Configuration]:
        """All configurations one single-unit transfer away."""
        for r in range(self.n_resources):
            for donor in range(self.n_jobs):
                if config.get(donor, r) <= 1:
                    continue
                for receiver in range(self.n_jobs):
                    if receiver != donor:
                        yield config.with_transfer(r, donor, receiver)

    # ------------------------------------------------------------------
    # Unit-cube encoding for the Gaussian process
    # ------------------------------------------------------------------
    def to_unit_cube(self, config: Configuration) -> np.ndarray:
        """Map a configuration to a vector in ``[0, 1]^n_dims``.

        Each (job, resource) cell is scaled by that resource's feasible
        range ``[1, units - n_jobs + 1]`` (Eq. 5).  A degenerate resource
        whose range is a single point maps to 0.
        """
        arr = config.as_array().astype(float)
        spans = (self._units - self.n_jobs).astype(float)
        scaled = np.zeros_like(arr)
        nonzero = spans > 0
        scaled[:, nonzero] = (arr[:, nonzero] - 1.0) / spans[nonzero]
        return scaled.reshape(-1)

    def from_unit_cube(self, x: Sequence[float]) -> Configuration:
        """Project a unit-cube vector back onto the feasible lattice.

        The continuous vector is interpreted per resource as relative
        weights of the spare units (everything above the one-unit floor)
        and rounded with the largest-remainder method, so the result
        always satisfies Eqs. 5-6 exactly.
        """
        vec = np.asarray(x, dtype=float).reshape(self.n_jobs, self.n_resources)
        matrix = np.empty((self.n_jobs, self.n_resources), dtype=int)
        for r, units in enumerate(self._units):
            matrix[:, r] = _round_column(np.clip(vec[:, r], 0.0, 1.0), int(units))
        return Configuration.from_matrix(matrix)

    def bounds(self) -> np.ndarray:
        """``(n_dims, 2)`` box bounds of the unit cube (always [0, 1])."""
        return np.tile(np.array([0.0, 1.0]), (self.n_dims, 1))
