"""Simulated resource-isolation tools.

On the paper's testbed, a partition decision is *enacted* through a
per-resource isolation interface: ``taskset`` pins cores, Intel CAT masks
LLC ways, Intel MBA throttles memory bandwidth, and cgroups/qdisc handle
capacity, disk, and network.  This module is the simulator's stand-in for
that layer: it validates and applies :class:`~repro.resources.allocation.
Configuration` objects, keeps an auditable log of tool invocations, and
accounts for the (off-critical-path) enforcement overhead the paper
measures at under 100 ms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.units import Seconds
from .allocation import Configuration, ConfigurationSpace
from .spec import ServerSpec


@dataclass(frozen=True)
class ToolInvocation:
    """A record of one simulated isolation-tool call."""

    tool: str
    resource: str
    allocation: Dict[int, int]  # job index -> units

    def command_line(self) -> str:
        """A human-readable rendering, e.g. for experiment logs."""
        parts = ", ".join(f"job{j}={u}" for j, u in sorted(self.allocation.items()))
        return f"{self.tool} --{self.resource} {parts}"


@dataclass
class IsolationManager:
    """Applies partitions through simulated per-resource isolation tools.

    Attributes:
        spec: The server whose resources are being partitioned.
        enforcement_latency_s: Simulated wall-clock cost of pushing one
            full partition to all tools (paper: < 100 ms, off the
            critical path).
    """

    spec: ServerSpec
    enforcement_latency_s: Seconds = 0.1
    _current: Optional[Configuration] = field(default=None, init=False)
    _log: List[ToolInvocation] = field(default_factory=list, init=False)
    _total_enforcement_s: Seconds = field(default=0.0, init=False)
    _spaces: Dict[int, ConfigurationSpace] = field(default_factory=dict, init=False)

    @property
    def current(self) -> Optional[Configuration]:
        """The partition currently in force, or ``None`` before the first apply."""
        return self._current

    @property
    def invocations(self) -> List[ToolInvocation]:
        """All tool calls made so far (oldest first)."""
        return list(self._log)

    @property
    def total_enforcement_seconds(self) -> Seconds:
        """Accumulated simulated enforcement time."""
        return self._total_enforcement_s

    def apply(self, config: Configuration) -> List[ToolInvocation]:
        """Enact ``config``, invoking only tools whose partition changed.

        Returns the invocations issued for this apply.  Skipping
        unchanged resources mirrors how a real controller avoids
        redundant CAT/MBA writes.
        """
        current = self._current
        if current is not None and current.units == config.units:
            # Identical partition: nothing to validate (the in-force one
            # already passed) and no tool has to be touched.
            self._current = config
            return []
        space = self._spaces.get(config.n_jobs)
        if space is None:
            space = ConfigurationSpace(self.spec, config.n_jobs)
            self._spaces[config.n_jobs] = space
        space.validate(config)
        new_columns = list(zip(*config.units))
        old_columns = (
            list(zip(*current.units))
            if current is not None and current.n_jobs == config.n_jobs
            else None
        )
        issued: List[ToolInvocation] = []
        for r, resource in enumerate(self.spec.resources):
            column = new_columns[r]
            if old_columns is not None and old_columns[r] == column:
                continue
            invocation = ToolInvocation(
                tool=resource.isolation_tool,
                resource=resource.name,
                allocation=dict(enumerate(column)),
            )
            self._log.append(invocation)
            issued.append(invocation)
        if issued:
            self._total_enforcement_s += self.enforcement_latency_s
        self._current = config
        return issued

    def reset(self) -> None:
        """Forget the current partition and the invocation log."""
        self._current = None
        self._log.clear()
        self._total_enforcement_s = 0.0
