"""Specifications of partitionable shared resources and the server.

This module mirrors Tables 1 and 2 of the CLITE paper: a chip
multi-processor server exposes several shared resources (cores, LLC ways,
memory bandwidth, ...), each divisible into a fixed number of discrete
*units* that an isolation tool (taskset, Intel CAT, Intel MBA, cgroups)
can hand to individual co-located jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

#: Canonical resource names used throughout the library.
CORES = "cores"
LLC_WAYS = "llc_ways"
MEMORY_BANDWIDTH = "membw"
MEMORY_CAPACITY = "memcap"
DISK_BANDWIDTH = "diskbw"
NETWORK_BANDWIDTH = "netbw"


@dataclass(frozen=True)
class Resource:
    """One partitionable shared resource (a row of Table 1).

    Attributes:
        name: Canonical short name (e.g. ``"cores"``).
        units: Number of discrete allocation units. Every co-located job
            must receive at least one unit, and all allocations of this
            resource must sum to ``units``.
        allocation_method: How the resource is divided (documentation only).
        isolation_tool: The real-world tool the simulator stands in for.
    """

    name: str
    units: int
    allocation_method: str = "unit partitioning"
    isolation_tool: str = "simulated"

    def __post_init__(self) -> None:
        if self.units < 1:
            raise ValueError(
                f"resource {self.name!r} must have >= 1 unit, got {self.units}"
            )

    def max_units_per_job(self, n_jobs: int) -> int:
        """Maximum units one job may hold when ``n_jobs`` jobs share it.

        This is the upper bound of Eq. 5 in the paper: every other job
        must keep at least one unit.
        """
        return self.units - n_jobs + 1


@dataclass(frozen=True)
class ServerSpec:
    """A server's partitionable resources plus descriptive metadata.

    The default (:func:`default_server`) mirrors the paper's testbed
    (Table 2): an Intel Xeon Silver 4114 with 10 physical cores, an
    11-way set-associative 14 MB L3, and memory bandwidth split into
    ten 10% slices by Intel MBA.
    """

    resources: Tuple[Resource, ...]
    cpu_model: str = "Simulated Xeon Silver 4114"
    sockets: int = 1
    frequency_ghz: float = 2.2
    memory_gb: int = 46
    description: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.resources:
            raise ValueError("a server must expose at least one resource")
        names = [r.name for r in self.resources]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate resource names: {names}")

    @property
    def resource_names(self) -> Tuple[str, ...]:
        return tuple(r.name for r in self.resources)

    @property
    def n_resources(self) -> int:
        return len(self.resources)

    def resource(self, name: str) -> Resource:
        """Return the resource called ``name``.

        Raises:
            KeyError: if no resource has that name.
        """
        for res in self.resources:
            if res.name == name:
                return res
        raise KeyError(f"no resource named {name!r}; have {self.resource_names}")

    def max_jobs(self) -> int:
        """Largest number of jobs that can each get >= 1 unit of everything."""
        return min(r.units for r in self.resources)


def default_server() -> ServerSpec:
    """The three-resource server used for most of the paper's evaluation.

    Cores, LLC ways, and memory bandwidth are the resources the paper's
    figures (e.g. Fig. 9) report; the remaining Table 1 resources are
    available through :func:`full_server`.
    """
    return ServerSpec(
        resources=(
            Resource(CORES, 10, "core affinity", "taskset"),
            Resource(LLC_WAYS, 11, "way partitioning", "Intel CAT"),
            Resource(MEMORY_BANDWIDTH, 10, "bandwidth limiting", "Intel MBA"),
        ),
        description="Table 2 testbed: 10 physical cores, 11-way 14MB L3, "
        "memory bandwidth in 10% MBA slices",
    )


def full_server() -> ServerSpec:
    """A server exposing all six Table 1 resources."""
    return ServerSpec(
        resources=(
            Resource(CORES, 10, "core affinity", "taskset"),
            Resource(LLC_WAYS, 11, "way partitioning", "Intel CAT"),
            Resource(MEMORY_BANDWIDTH, 10, "bandwidth limiting", "Intel MBA"),
            Resource(MEMORY_CAPACITY, 10, "capacity division", "memory cgroups"),
            Resource(DISK_BANDWIDTH, 10, "I/O bandwidth limiting", "blkio cgroups"),
            Resource(NETWORK_BANDWIDTH, 10, "network b/w limiting", "qdisc"),
        ),
        description="All Table 1 resources",
    )


def small_server(units: int = 4, n_resources: int = 2) -> ServerSpec:
    """A deliberately tiny server for exhaustive tests and ORACLE runs."""
    catalog = (
        Resource(CORES, units, "core affinity", "taskset"),
        Resource(LLC_WAYS, units, "way partitioning", "Intel CAT"),
        Resource(MEMORY_BANDWIDTH, units, "bandwidth limiting", "Intel MBA"),
    )
    if not 1 <= n_resources <= len(catalog):
        raise ValueError(f"n_resources must be in [1, {len(catalog)}]")
    return ServerSpec(resources=catalog[:n_resources], description="test server")
