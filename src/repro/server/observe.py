"""The engine-facing observation service.

:class:`ObservationService` is the explicit seam between the BO engine
and the node.  Single observations pass straight through; batches are
the interesting case: the engine's batch mode hands over the top-k
acquisition candidates at once, and the service warms the node's truth
caches concurrently (via the side-effect-free :meth:`Node.prime`) before
running the real ``observe`` loop serially in candidate-rank order.

That split is what keeps ``batch_k > 1`` deterministic: the expensive
physics happens on pool workers in any completion order, but every
clock advance, history append, and counter-noise draw happens in the
serial loop, in rank order, exactly as a sequential engine would issue
them.  Worker scheduling can change *when* a truth gets computed, never
*what* the trajectory sees.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence

from ..resources.allocation import Configuration
from ..sanitizer.hooks import register_shared
from ..telemetry import NULL_TELEMETRY, Telemetry
from .node import Node, Observation


class ObservationService:
    """Observes configurations on one node, batched and optionally parallel.

    Args:
        node: The node to observe on.
        parallel: Warm truths for a batch concurrently on a thread pool.
            With False (the default) batches are still observed in rank
            order but the physics runs inline — useful when the store is
            already warm or the platform dislikes threads.
        workers: Pool width (default: the batch size, capped at 8).
        telemetry: Optional telemetry context for ``observe.batch.*``
            counters; defaults to the node's context.
    """

    MAX_WORKERS = 8

    def __init__(
        self,
        node: Node,
        parallel: bool = False,
        workers: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        self.node = node
        self.parallel = parallel
        self.workers = workers
        self.telemetry = telemetry if telemetry is not None else node.telemetry
        self._lock = threading.Lock()
        self._pool: Optional[ThreadPoolExecutor] = None
        register_shared(
            self, name=f"ObservationService@{id(self):x}", lock_attrs=("_lock",)
        )

    def observe(self, config: Configuration) -> Observation:
        """One observation window — identical to calling the node."""
        return self.node.observe(config)

    def observe_batch(
        self, configs: Sequence[Configuration]
    ) -> List[Observation]:
        """Observe ``configs`` in order, returning one window each.

        The serial observe loop advances the node clock by one window
        per configuration, so batch item ``i`` is observed at
        ``t0 + i * window_s`` — the same times a sequential engine would
        have used.  With ``parallel`` enabled, those exact (config,
        time) pairs are primed concurrently first, making the serial
        loop pure cache hits.
        """
        batch = list(configs)
        if not batch:
            return []
        self.telemetry.metrics.counter("observe.batch.batches").add()
        self.telemetry.metrics.counter("observe.batch.configs").add(len(batch))
        if self.parallel and len(batch) > 1:
            self._prime_concurrently(batch)
        return [self.node.observe(config) for config in batch]

    def _prime_concurrently(self, batch: Sequence[Configuration]) -> None:
        t0 = self.node.clock_s
        window = self.node.window_s
        futures = [
            self._ensure_pool(len(batch)).submit(
                self.node.prime, config, t0 + i * window
            )
            for i, config in enumerate(batch)
        ]
        computed = sum(1 for future in futures if future.result())
        if computed:
            self.telemetry.metrics.counter("observe.batch.primed").add(computed)

    def _ensure_pool(self, batch_size: int) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                width = (
                    self.workers
                    if self.workers is not None
                    else min(batch_size, self.MAX_WORKERS)
                )
                self._pool = ThreadPoolExecutor(
                    max_workers=width, thread_name_prefix="observe"
                )
            return self._pool

    def close(self) -> None:
        """Shut the priming pool down (the service stays usable)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ObservationService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
