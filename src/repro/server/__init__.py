"""Simulated co-location server: node, counters, QoS monitor, obstore."""

from .counters import DEFAULT_OBSERVATION_PERIOD_S, PerformanceCounters
from .monitor import MonitorReport, QoSMonitor, Trigger
from .node import (
    BG_ROLE,
    LC_ROLE,
    Job,
    JobObservation,
    Node,
    NodeBudget,
    Observation,
)
from .observe import ObservationService
from .obstore import ObservationStore, StoreStats, node_fingerprint

__all__ = [
    "BG_ROLE",
    "DEFAULT_OBSERVATION_PERIOD_S",
    "Job",
    "JobObservation",
    "LC_ROLE",
    "MonitorReport",
    "Node",
    "NodeBudget",
    "Observation",
    "ObservationService",
    "ObservationStore",
    "PerformanceCounters",
    "QoSMonitor",
    "StoreStats",
    "Trigger",
    "node_fingerprint",
]
