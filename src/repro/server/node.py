"""The simulated co-location server.

A :class:`Node` hosts a set of latency-critical and background jobs,
enacts resource-partition configurations through the simulated isolation
tools, and reports what the controller would see on real hardware: per-
job 95th-percentile latency (LC) and normalized throughput (BG), read
through noisy performance counters over an observation window, with a
simulated wall clock advancing as samples are taken.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.units import Fraction, Millis, Rate, Seconds
from ..resources.allocation import Configuration, ConfigurationSpace
from ..resources.isolation import IsolationManager
from ..resources.spec import CORES, ServerSpec
from ..sanitizer.hooks import register_shared
from ..telemetry import NULL_TELEMETRY, Telemetry
from ..workloads.base import BGWorkload, LCWorkload
from ..workloads.interference import co_runner_pressure, exerted_pressure
from ..workloads.latency import capacity_qps, p95_latency_ms
from ..workloads.loadgen import LoadSchedule
from ..workloads.throughput import normalized_throughput
from .counters import DEFAULT_OBSERVATION_PERIOD_S, PerformanceCounters
from .obstore import ObservationStore, node_fingerprint

LC_ROLE = "LC"
BG_ROLE = "BG"


@dataclass(frozen=True)
class Job:
    """One co-located job: a workload plus (for LC jobs) a load schedule."""

    workload: Union[LCWorkload, BGWorkload]
    load: Optional[LoadSchedule] = None

    def __post_init__(self) -> None:
        if self.is_lc:
            if self.load is None:
                raise ValueError(
                    f"LC job {self.workload.name!r} needs a load schedule"
                )
            if not self.workload.is_calibrated():
                raise ValueError(
                    f"LC job {self.workload.name!r} must be calibrated "
                    "(use repro.workloads.calibrate or the tailbench catalog)"
                )
        elif self.load is not None:
            raise ValueError("BG jobs do not take a load schedule")

    @property
    def is_lc(self) -> bool:
        return isinstance(self.workload, LCWorkload)

    @property
    def role(self) -> str:
        return LC_ROLE if self.is_lc else BG_ROLE

    @property
    def name(self) -> str:
        return self.workload.name

    @staticmethod
    def lc(workload: LCWorkload, load_fraction: Fraction) -> "Job":
        """Convenience: an LC job at a constant load fraction."""
        return Job(workload, LoadSchedule.constant(load_fraction))

    @staticmethod
    def bg(workload: BGWorkload) -> "Job":
        return Job(workload)


@dataclass(frozen=True)
class JobObservation:
    """What the counters reported for one job over one window."""

    name: str
    role: str
    load_fraction: Optional[Fraction]
    qps: Optional[Rate]
    p95_ms: Optional[Millis]
    qos_target_ms: Optional[Millis]
    throughput_norm: Optional[Fraction]

    @property
    def qos_met(self) -> bool:
        """Whether the LC job met its tail-latency target (True for BG)."""
        if self.role != LC_ROLE:
            return True
        return self.p95_ms <= self.qos_target_ms

    @property
    def qos_ratio(self) -> Fraction:
        """``min(1, target / latency)`` — the Eq. 3 per-LC-job factor."""
        if self.role != LC_ROLE:
            raise ValueError(f"{self.name} is not an LC job")
        if self.p95_ms == 0:
            return 1.0
        return min(1.0, self.qos_target_ms / self.p95_ms)

    @property
    def counter_metric(self) -> Optional[float]:
        """The one metric the hardware counters carry noise into."""
        return self.p95_ms if self.role == LC_ROLE else self.throughput_norm

    def with_counter_metric(self, value: float) -> "JobObservation":
        """Copy with the counter-borne metric replaced (p95 for LC,
        normalized throughput for BG).  Direct construction — this runs
        per job per window, where ``dataclasses.replace`` is measurably
        slow."""
        if self.role == LC_ROLE:
            return JobObservation(
                name=self.name,
                role=self.role,
                load_fraction=self.load_fraction,
                qps=self.qps,
                p95_ms=value,
                qos_target_ms=self.qos_target_ms,
                throughput_norm=self.throughput_norm,
            )
        return JobObservation(
            name=self.name,
            role=self.role,
            load_fraction=self.load_fraction,
            qps=self.qps,
            p95_ms=self.p95_ms,
            qos_target_ms=self.qos_target_ms,
            throughput_norm=value,
        )


@dataclass(frozen=True)
class Observation:
    """One observation window: the configuration and every job's reading."""

    config: Configuration
    time_s: Seconds
    window_s: Seconds
    jobs: Tuple[JobObservation, ...]

    @property
    def lc_jobs(self) -> Tuple[JobObservation, ...]:
        return tuple(j for j in self.jobs if j.role == LC_ROLE)

    @property
    def bg_jobs(self) -> Tuple[JobObservation, ...]:
        return tuple(j for j in self.jobs if j.role == BG_ROLE)

    @property
    def all_qos_met(self) -> bool:
        return all(j.qos_met for j in self.lc_jobs)

    def job(self, name: str) -> JobObservation:
        for j in self.jobs:
            if j.name == name:
                return j
        raise KeyError(f"no job named {name!r} in this observation")


class Node:
    """A server running a fixed set of co-located jobs.

    The node is the controller's entire world: it can apply a partition
    (:meth:`observe`) and read back per-job performance.  ``observe``
    advances a simulated wall clock by the observation window, so load
    schedules and convergence-time measurements behave like they would
    online.

    Args:
        spec: The server's partitionable resources.
        jobs: Co-located jobs; LC jobs first by convention, but any
            order works.  Job names must be unique.
        counters: Noise model for measurements (default: 3% log-normal).
        window_s: Observation window (paper default: 2 s).
        cache_enabled: Memoize noise-free truths per lattice point.
        store: Optional :class:`~.obstore.ObservationStore` consulted on
            in-memory cache misses before paying the physics cost, and
            fed every freshly computed truth.  Stores outlive the node,
            so grid benches and re-verification sweeps become near-free
            on warm cache; readings stay bit-identical because only
            noise-free truths are shared and counter noise is always
            drawn fresh.
        telemetry: Optional :class:`repro.telemetry.Telemetry` context;
            observation windows are then wrapped in ``node.observe``
            spans, cache traffic and QoS-violation windows are counted,
            and each violation emits a ``qos.violation`` event.  The
            attribute is public and reassignable — the engine installs
            its own context here when it has one.
    """

    #: Observation-cache entries kept before new points stop being cached
    #: (one engine run touches at most a few hundred lattice points).
    CACHE_MAX_ENTRIES = 4096

    def __init__(
        self,
        spec: ServerSpec,
        jobs: Sequence[Job],
        counters: Optional[PerformanceCounters] = None,
        window_s: Seconds = DEFAULT_OBSERVATION_PERIOD_S,
        cache_enabled: bool = True,
        store: Optional[ObservationStore] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if not jobs:
            raise ValueError("a node needs at least one job")
        names = [j.name for j in jobs]
        if len(set(names)) != len(names):
            raise ValueError(f"job names must be unique, got {names}")
        if window_s <= 0:
            raise ValueError("observation window must be positive")
        self.spec = spec
        self.jobs: Tuple[Job, ...] = tuple(jobs)
        self.space = ConfigurationSpace(spec, len(self.jobs))
        self.counters = counters if counters is not None else PerformanceCounters()
        self.window_s = window_s
        self.isolation = IsolationManager(spec)
        self.cache_enabled = cache_enabled
        self.store = store
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._fingerprint = (
            node_fingerprint(spec, self.jobs, window_s)
            if store is not None
            else None
        )
        self._clock_s = 0.0
        self._history: List[Observation] = []
        # The simulator is deterministic given a partition and the LC
        # loads, so noise-free truths are memoized per lattice point.
        # The lock covers the cache and its counters: prime() warms the
        # cache from pool workers while observe() stays serial.
        self._cache_lock = threading.RLock()
        self._obs_cache: Dict[tuple, Observation] = {}
        self._cache_hits = 0
        self._cache_misses = 0
        self._physics_count = 0
        register_shared(
            self,
            name=f"Node@{id(self):x}",
            container_attrs=("_obs_cache", "_history"),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_jobs(self) -> int:
        return len(self.jobs)

    @property
    def lc_indices(self) -> Tuple[int, ...]:
        return tuple(i for i, j in enumerate(self.jobs) if j.is_lc)

    @property
    def bg_indices(self) -> Tuple[int, ...]:
        return tuple(i for i, j in enumerate(self.jobs) if not j.is_lc)

    @property
    def clock_s(self) -> Seconds:
        """Simulated wall-clock time."""
        return self._clock_s

    @property
    def history(self) -> Tuple[Observation, ...]:
        """Every observation taken so far (oldest first)."""
        return tuple(self._history)

    @property
    def samples_taken(self) -> int:
        return len(self._history)

    def job_names(self) -> Tuple[str, ...]:
        return tuple(j.name for j in self.jobs)

    # ------------------------------------------------------------------
    # The physics: true performance of a configuration
    # ------------------------------------------------------------------
    def _shares(self, config: Configuration, job_index: int) -> Dict[str, float]:
        return {
            res.name: config.get(job_index, r) / res.units
            for r, res in enumerate(self.spec.resources)
        }

    def _pressures(self, config: Configuration, at_time: Seconds) -> List[float]:
        pressures = []
        for i, job in enumerate(self.jobs):
            if job.is_lc:
                activity = job.load.load_at(at_time)
            else:
                activity = self._shares(config, i)[CORES]
            pressures.append(exerted_pressure(job.workload, activity))
        return pressures

    def true_performance(
        self, config: Configuration, at_time: Optional[Seconds] = None
    ) -> Observation:
        """Noise-free performance of ``config`` (used by ORACLE).

        Does not touch the clock, the isolation layer, or the history.
        """
        self.space.validate(config)
        t = self._clock_s if at_time is None else at_time
        pressures = self._pressures(config, t)
        readings: List[JobObservation] = []
        for i, job in enumerate(self.jobs):
            shares = self._shares(config, i)
            contention = co_runner_pressure(pressures, i)
            if job.is_lc:
                lc = job.workload
                load = job.load.load_at(t)
                qps = load * lc.max_qps
                cores = config.get(i, self._core_index())
                latency = p95_latency_ms(lc, qps, cores, shares, contention)
                if math.isinf(latency):
                    # A saturated queue still reports a finite number
                    # over a finite window: queries that do complete
                    # waited on the order of the window, scaled by how
                    # overloaded the queue is.  This keeps the score
                    # landscape graded instead of flat-zero (Sec. 4's
                    # smoothness requirement on the objective).
                    capacity = capacity_qps(lc, cores, shares, contention)
                    overload = qps / capacity if capacity > 0 else 2.0
                    latency = 1000.0 * self.window_s * max(overload, 1.0)
                readings.append(
                    JobObservation(
                        name=job.name,
                        role=LC_ROLE,
                        load_fraction=load,
                        qps=qps,
                        p95_ms=latency,
                        qos_target_ms=lc.qos_latency_ms,
                        throughput_norm=None,
                    )
                )
            else:
                perf = normalized_throughput(job.workload, shares, contention)
                readings.append(
                    JobObservation(
                        name=job.name,
                        role=BG_ROLE,
                        load_fraction=None,
                        qps=None,
                        p95_ms=None,
                        qos_target_ms=None,
                        throughput_norm=perf,
                    )
                )
        return Observation(
            config=config, time_s=t, window_s=self.window_s, jobs=tuple(readings)
        )

    def _core_index(self) -> int:
        return self.spec.resource_names.index(CORES)

    # ------------------------------------------------------------------
    # The controller-facing interface
    # ------------------------------------------------------------------
    def cache_info(self) -> Tuple[int, int]:
        """Observation-cache ``(hits, misses)`` since construction/reset."""
        return self._cache_hits, self._cache_misses

    @property
    def physics_computations(self) -> int:
        """Full physics evaluations since construction/reset.

        Unlike :meth:`cache_info`'s miss counter, this stays zero when a
        warm :class:`~.obstore.ObservationStore` serves every in-memory
        miss — it is the number an observation actually *cost*.
        """
        return self._physics_count

    @property
    def fingerprint(self) -> Optional[str]:
        """The store fingerprint of this node's physics (None storeless)."""
        return self._fingerprint

    def _cache_key(
        self, config: Configuration, at_time: Optional[Seconds] = None
    ) -> tuple:
        """What the truth of one window depends on: partition + LC loads."""
        t = self._clock_s if at_time is None else at_time
        loads = tuple(
            job.load.load_at(t) for job in self.jobs if job.is_lc
        )
        return (config.flat(), loads)

    def _store_lookup(
        self, key: tuple
    ) -> Optional[Tuple[JobObservation, ...]]:
        if self.store is None or self._fingerprint is None:
            return None
        flat, loads = key
        return self.store.get(self._fingerprint, flat, loads)

    def _store_publish(self, key: tuple, truth: Observation) -> None:
        if self.store is None or self._fingerprint is None:
            return
        flat, loads = key
        # The sanctioned publish path: probe-side CLITE admission reaches
        # this write through verify_node -> Node.observe, but the stored
        # truth is a deterministic function of (fingerprint, config,
        # loads, seed), so publishing it is replay-invariant — any replay
        # recomputes the identical value on a miss.  RPL902 bans every
        # *other* ObservationStore.put on probe paths.
        # repro-lint: disable-next-line=RPL902
        self.store.put(self._fingerprint, flat, loads, truth.jobs)

    def _truth_for(
        self, config: Configuration, key: tuple, at_time: Seconds
    ) -> Observation:
        """Store→physics fallthrough on an in-memory miss.

        The physics run happens outside the cache lock so concurrent
        ``prime`` workers do not serialize; a racing double-compute is
        harmless because the truth is deterministic.
        """
        jobs = self._store_lookup(key)
        if jobs is not None:
            truth = Observation(
                config=config,
                time_s=at_time,
                window_s=self.window_s,
                jobs=jobs,
            )
        else:
            truth = self.true_performance(config, at_time=at_time)
            with self._cache_lock:
                self._physics_count += 1
            self._store_publish(key, truth)
        with self._cache_lock:
            if len(self._obs_cache) < self.CACHE_MAX_ENTRIES:
                self._obs_cache[key] = truth
        return truth

    def _cached_truth(
        self, config: Configuration, at_time: Optional[Seconds] = None
    ) -> Observation:
        """The noise-free truth of ``config`` now, memoized.

        The simulator is deterministic given the partition and the LC
        load fractions, so re-observing a lattice point the search has
        already visited (repair retries, refinement rejections,
        confirmation windows) skips the physics entirely.  Only the
        truth is cached — counter noise is drawn fresh for every window,
        so noisy-counter runs see exactly the same readings they would
        without the cache.  When an :class:`~.obstore.ObservationStore`
        is attached, in-memory misses fall through to it before paying
        the physics cost, and fresh truths are published back.
        """
        t = self._clock_s if at_time is None else at_time
        if not self.cache_enabled:
            with self._cache_lock:
                self._physics_count += 1
            return self.true_performance(config, at_time=t)
        key = self._cache_key(config, t)
        with self._cache_lock:
            truth = self._obs_cache.get(key)
            if truth is not None:
                self._cache_hits += 1
                self.telemetry.metrics.counter("node.cache.hits").add()
                return truth
            self._cache_misses += 1
            self.telemetry.metrics.counter("node.cache.misses").add()
        return self._truth_for(config, key, t)

    def prime(
        self, config: Configuration, at_time: Optional[Seconds] = None
    ) -> bool:
        """Warm the truth caches for ``config`` at ``at_time``.

        Side-effect-free with respect to everything a trajectory depends
        on: no clock advance, no history append, no isolation change, no
        noise draw, and no hit/miss accounting.  Thread-safe — the
        engine's batch mode calls this from pool workers for the times
        its serial observe loop is about to visit, so the subsequent
        ``observe`` calls are pure cache hits in a deterministic order.

        Returns True when the truth was not already in memory.
        """
        if not self.cache_enabled:
            return False
        t = self._clock_s if at_time is None else at_time
        key = self._cache_key(config, t)
        with self._cache_lock:
            if key in self._obs_cache:
                return False
        self._truth_for(config, key, t)
        return True

    def observe(self, config: Configuration) -> Observation:
        """Enact ``config``, run one observation window, read the counters.

        Advances the simulated clock by the window length and appends
        the (noisy) observation to the node's history.
        """
        with self.telemetry.tracer.span("node.observe") as span:
            self.isolation.apply(config)
            truth = self._cached_truth(config)
            noisy_jobs = [
                reading.with_counter_metric(
                    self.counters.read(reading.counter_metric, self.window_s)
                )
                for reading in truth.jobs
            ]
            observation = Observation(
                config=config,
                time_s=self._clock_s,
                window_s=self.window_s,
                jobs=tuple(noisy_jobs),
            )
            self._clock_s += self.window_s
            self._history.append(observation)
            span.set("node_time_s", observation.time_s)
        self._record_window(observation)
        return observation

    def _record_window(self, observation: Observation) -> None:
        """Count the window and narrate QoS violations (telemetry only)."""
        telemetry = self.telemetry
        if not telemetry.active:
            return
        telemetry.metrics.counter("node.observe.windows").add()
        for reading in observation.lc_jobs:
            if reading.qos_met:
                continue
            telemetry.metrics.counter(
                "node.qos.violations", job=reading.name
            ).add()
            telemetry.tracer.event(
                "qos.violation",
                job=reading.name,
                node_time_s=observation.time_s,
                p95_ms=round(reading.p95_ms or 0.0, 3),
                target_ms=round(reading.qos_target_ms or 0.0, 3),
            )

    def advance(self, seconds: Seconds) -> None:
        """Let simulated time pass without taking a sample."""
        if seconds < 0:
            raise ValueError("cannot advance time backwards")
        self._clock_s += seconds

    def reset(self, seed: Optional[int] = None) -> None:
        """Fresh clock, history, isolation state, and (optionally) noise.

        The observation cache's truths stay valid across resets (they do
        not depend on the noise seed), so the cache is kept; only its
        hit/miss counters start over.
        """
        self._clock_s = 0.0
        self._history.clear()
        self.isolation.reset()
        self._cache_hits = 0
        self._cache_misses = 0
        self._physics_count = 0
        if seed is not None:
            self.counters.reseed(seed)


@dataclass(frozen=True)
class NodeBudget:
    """Sampling limits shared by every policy for fair comparisons.

    Attributes:
        max_samples: Upper bound on observation windows a policy may take.
    """

    max_samples: int = 100

    def __post_init__(self) -> None:
        if self.max_samples < 1:
            raise ValueError("budget must allow at least one sample")
