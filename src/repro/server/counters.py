"""Simulated performance counters.

CLITE observes co-located jobs through hardware performance counters
over a (default two-second) observation window, so every measurement the
controller sees carries sampling noise.  This module injects that noise:
multiplicative log-normal perturbations on tail latency and throughput,
with a magnitude that shrinks for longer windows (more queries sampled,
as Sec. 4 of the paper discusses when motivating the window length).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.units import Seconds

#: The paper's default observation period (Sec. 4).
DEFAULT_OBSERVATION_PERIOD_S: Seconds = 2.0


@dataclass
class PerformanceCounters:
    """Noisy reader of true performance values.

    Attributes:
        relative_std: Relative standard deviation of a reading taken over
            the reference window.  0 disables noise entirely.
        reference_window_s: Window length the ``relative_std`` is quoted
            at; noise scales with ``sqrt(reference / window)``.
        seed: Seed of the internal generator (``None`` for fresh entropy).
    """

    relative_std: float = 0.01
    reference_window_s: Seconds = DEFAULT_OBSERVATION_PERIOD_S
    seed: Optional[int] = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.relative_std < 0:
            raise ValueError("relative_std must be >= 0")
        if self.reference_window_s <= 0:
            raise ValueError("reference window must be positive")
        self._rng = np.random.default_rng(self.seed)

    def reseed(self, seed: Optional[int]) -> None:
        """Reset the noise stream (used by repeat-trial experiments)."""
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def _sigma(self, window_s: Seconds) -> float:
        if window_s <= 0:
            raise ValueError("observation window must be positive")
        return self.relative_std * math.sqrt(self.reference_window_s / window_s)

    def read(
        self, true_value: float, window_s: Seconds = DEFAULT_OBSERVATION_PERIOD_S
    ) -> float:
        """One noisy counter reading of ``true_value`` over ``window_s``.

        Infinite values (saturated queues) pass through unchanged — a
        saturated queue looks saturated no matter the noise.
        """
        if math.isinf(true_value):
            return true_value
        if true_value < 0:
            raise ValueError(f"true value must be >= 0, got {true_value}")
        sigma = self._sigma(window_s)
        if sigma == 0 or true_value == 0:
            return true_value
        # Log-normal with unit median keeps readings positive and unbiased
        # in the median, like percentile estimates from finite samples.
        return true_value * float(np.exp(self._rng.normal(0.0, sigma)))
