"""Persistent, LRU-bounded observation store.

``node.cache.*`` counters show that repeated sweeps — grid benches,
``repro.experiments`` matrices, cluster-scale re-verification — re-pay
the full observation cost on every run because the node's in-memory
truth cache dies with the :class:`~repro.server.node.Node`.  This module
is the cross-run half of the observation service: a file-backed map from
``(workload-set fingerprint, partition, LC loads)`` to the noise-free
truth of one observation window, shared by every node whose physics
match the fingerprint.

Design points:

* **Keyed by physics, not by identity.**  The fingerprint digests the
  server spec, the ordered workload set (every calibrated parameter),
  and the window length — everything :meth:`Node.true_performance`
  depends on besides the partition and the instantaneous LC load
  fractions, which form the rest of the key.  The noise seed is
  deliberately *not* part of the key: only noise-free truths are
  stored, and counter noise is drawn fresh for every window, so
  noisy-counter runs read exactly what they would without the store.
* **Append-only JSONL with atomic compaction.**  Every ``put`` appends
  one line and flushes, so truths survive a crash without an explicit
  save step.  When the file accumulates more lines than twice the LRU
  capacity, it is compacted by writing a temp file and ``os.replace``-ing
  it over the old one — readers never see a half-written store.
* **Versioned, corruption-tolerant loads.**  The first line is a schema
  header; a missing or incompatible header discards the file, and any
  individually unparsable line is counted and skipped rather than
  poisoning the load.
* **Thread-safe.**  One store may back every worker of the cluster
  scheduler's ``verify_nodes`` pool; all state transitions happen under
  the instance lock, and the store registers itself (and its entry map)
  with ``repro-san`` so the sanitizer sees every access.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import (
    IO,
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.units import Seconds
from ..resources.spec import ServerSpec
from ..sanitizer.hooks import register_shared
from ..telemetry import NULL_TELEMETRY, Telemetry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (node imports us)
    from .node import Job, JobObservation

#: Bump when the on-disk entry layout changes; older files are ignored
#: (and rewritten from scratch) rather than misread.
SCHEMA_VERSION = 1

#: The header's magic string; anything else is not an observation store.
SCHEMA_KIND = "repro-obstore"

#: ``(fingerprint, flattened partition units, LC load fractions)``.
StoreKey = Tuple[str, Tuple[int, ...], Tuple[float, ...]]


def _workload_signature(workload: object) -> Dict[str, Any]:
    """Every calibrated parameter of one workload, as plain data."""
    return asdict(workload)  # type: ignore[call-overload]


def node_fingerprint(
    spec: ServerSpec, jobs: Sequence["Job"], window_s: Seconds
) -> str:
    """Digest of everything one node's truth depends on besides the key.

    Two nodes with equal fingerprints compute identical noise-free
    truths for any ``(partition, LC loads)`` point: same resources, same
    ordered workload set (names, roles, and every model parameter), same
    observation window (the window length enters the saturated-latency
    fallback).  Load *schedules* are deliberately excluded — the truth
    depends only on the instantaneous load fractions, which are part of
    the store key itself.
    """
    payload = {
        "version": SCHEMA_VERSION,
        "window_s": window_s,
        "resources": [[r.name, r.units] for r in spec.resources],
        "jobs": [
            {"role": job.role, "workload": _workload_signature(job.workload)}
            for job in jobs
        ],
    }
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class StoreStats:
    """Telemetry counters of one store since it was opened.

    ``loaded`` counts entries recovered from disk at open time;
    ``corrupt`` counts unparsable lines skipped during that load.
    """

    hits: int
    misses: int
    evictions: int
    loaded: int
    corrupt: int
    entries: int


class ObservationStore:
    """File-backed LRU map of noise-free observation truths.

    Args:
        path: Backing file (created, along with parent directories, on
            first use).
        max_entries: LRU capacity; the least-recently-used entry is
            evicted when a ``put`` would exceed it.
        telemetry: Optional :class:`repro.telemetry.Telemetry` context;
            hit/miss/evict/load traffic is then counted on the
            ``obstore.*`` metric series.

    Usage::

        store = ObservationStore("obs/paper-mixes.jsonl")
        node = mix.build_node(seed=0, store=store)
        # ... any number of runs, processes, or verify_nodes workers ...
        store.close()
    """

    def __init__(
        self,
        path: Union[str, Path],
        max_entries: int = 100_000,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.path = Path(path)
        self.max_entries = max_entries
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._lock = threading.RLock()
        self._entries: "OrderedDict[StoreKey, Tuple[JobObservation, ...]]" = (
            OrderedDict()
        )
        self._fh: Optional[IO[str]] = None
        self._file_lines = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._loaded = 0
        self._corrupt = 0
        self._load()
        register_shared(
            self,
            name=f"ObservationStore@{self.path.name}",
            container_attrs=("_entries",),
        )

    # ------------------------------------------------------------------
    # Loading and persistence
    # ------------------------------------------------------------------
    def _load(self) -> None:
        """Recover entries from disk; skip anything unparsable.

        Runs in ``__init__`` only, before the store is shared; it takes
        the (reentrant) lock anyway so the helper is safe from any call
        path.
        """
        if not self.path.exists():
            return
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except OSError:
            with self._lock:
                self._corrupt += 1
            return
        if not lines:
            return
        header = self._parse_header(lines[0])
        with self._lock:
            if header is None:
                # Not (a compatible version of) an observation store:
                # start fresh rather than misread someone else's file.
                self._corrupt += 1
                return
            self._file_lines = len(lines)
            for line in lines[1:]:
                entry = self._parse_entry(line)
                if entry is None:
                    self._corrupt += 1
                    continue
                key, jobs = entry
                # Later lines win and refresh recency, mirroring put
                # order.
                if key in self._entries:
                    del self._entries[key]
                self._entries[key] = jobs
                self._loaded += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
        if self._loaded:
            self.telemetry.metrics.counter("obstore.loads").add(self._loaded)
        if self._corrupt:
            self.telemetry.metrics.counter("obstore.corrupt").add(self._corrupt)

    @staticmethod
    def _parse_header(line: str) -> Optional[Dict[str, Any]]:
        try:
            header = json.loads(line)
        except (ValueError, TypeError):
            return None
        if not isinstance(header, dict):
            return None
        if header.get("schema") != SCHEMA_KIND:
            return None
        if header.get("version") != SCHEMA_VERSION:
            return None
        return header

    def _parse_entry(
        self, line: str
    ) -> Optional[Tuple[StoreKey, Tuple["JobObservation", ...]]]:
        from .node import JobObservation

        try:
            raw = json.loads(line)
            key: StoreKey = (
                str(raw["fp"]),
                tuple(int(u) for u in raw["cfg"]),
                tuple(float(l) for l in raw["loads"]),
            )
            jobs = tuple(JobObservation(**fields) for fields in raw["jobs"])
        except (ValueError, TypeError, KeyError):
            return None
        return key, jobs

    @staticmethod
    def _encode_entry(key: StoreKey, jobs: Tuple["JobObservation", ...]) -> str:
        record = {
            "fp": key[0],
            "cfg": list(key[1]),
            "loads": list(key[2]),
            "jobs": [asdict(job) for job in jobs],
        }
        return json.dumps(record)

    def _header_line(self) -> str:
        return json.dumps({"schema": SCHEMA_KIND, "version": SCHEMA_VERSION})

    def _writer(self) -> IO[str]:
        """The append handle, opening (and headering) the file lazily."""
        with self._lock:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                fresh = (
                    not self.path.exists() or self.path.stat().st_size == 0
                )
                # Durability by design: the append handle must open under
                # the lock so concurrent first-appends cannot double-write
                # the header.
                # repro-lint: disable-next-line=RPL802
                self._fh = open(self.path, "a", encoding="utf-8")
                if fresh:
                    self._fh.write(self._header_line() + "\n")
                    self._file_lines = 1
            return self._fh

    def _append(self, key: StoreKey, jobs: Tuple["JobObservation", ...]) -> None:
        with self._lock:
            fh = self._writer()
            fh.write(self._encode_entry(key, jobs) + "\n")
            fh.flush()
            self._file_lines += 1
            if self._file_lines > max(2 * self.max_entries, 64):
                self._compact()

    def _compact(self) -> None:
        """Atomically rewrite the file with only the live entries."""
        with self._lock:
            tmp = self.path.with_name(self.path.name + ".tmp")
            try:
                # Durability by design: compaction must snapshot _entries
                # and swap the file while no concurrent put can interleave;
                # the pause is the compaction cost in bench_perf.py.
                # repro-lint: disable-next-line=RPL802
                with open(tmp, "w", encoding="utf-8") as out:
                    out.write(self._header_line() + "\n")
                    for key, jobs in self._entries.items():
                        out.write(self._encode_entry(key, jobs) + "\n")
                    out.flush()
                    # Durability by design: fsync before the atomic
                    # os.replace is the crash guarantee.
                    # repro-lint: disable-next-line=RPL802
                    os.fsync(out.fileno())
                if self._fh is not None:
                    self._fh.close()
                    self._fh = None
                os.replace(tmp, self.path)
            except BaseException:
                # A failed rewrite (disk full, interrupt) must not strand
                # the tmp file; the append log is still intact, so the
                # store stays consistent and simply retries later.
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            self._file_lines = 1 + len(self._entries)
        self.telemetry.metrics.counter("obstore.compactions").add()

    # ------------------------------------------------------------------
    # The map interface
    # ------------------------------------------------------------------
    def get(
        self,
        fingerprint: str,
        config_units: Tuple[int, ...],
        loads: Tuple[float, ...],
    ) -> Optional[Tuple["JobObservation", ...]]:
        """The stored truth for one key, refreshing its LRU recency."""
        key: StoreKey = (fingerprint, config_units, loads)
        with self._lock:
            jobs = self._entries.get(key)
            if jobs is None:
                self._misses += 1
                self.telemetry.metrics.counter("obstore.misses").add()
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            self.telemetry.metrics.counter("obstore.hits").add()
            return jobs

    def put(
        self,
        fingerprint: str,
        config_units: Tuple[int, ...],
        loads: Tuple[float, ...],
        jobs: Tuple["JobObservation", ...],
    ) -> None:
        """Persist one truth (idempotent; evicts LRU entries over capacity)."""
        key: StoreKey = (fingerprint, config_units, loads)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return
            self._entries[key] = jobs
            self._append(key, jobs)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
                self.telemetry.metrics.counter("obstore.evictions").add()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> StoreStats:
        """Hit/miss/evict/load counters since the store was opened."""
        with self._lock:
            return StoreStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                loaded=self._loaded,
                corrupt=self._corrupt,
                entries=len(self._entries),
            )

    def flush(self) -> None:
        """Push buffered appends to the OS (appends already flush per put)."""
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
                # Durability by design: flush() promises the data is on
                # disk when it returns.
                # repro-lint: disable-next-line=RPL802
                os.fsync(self._fh.fileno())

    def close(self) -> None:
        """Flush and release the append handle (the store stays usable)."""
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "ObservationStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
