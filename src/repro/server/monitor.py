"""Post-convergence monitoring and re-invocation triggers.

After CLITE settles on a partition, performance is "periodically
monitored; if the observed performance or the job mix changes, CLITE can
be reinvoked to determine a new optimal resource partition" (Sec. 4).
:class:`QoSMonitor` implements that watchdog: it keeps observing the
current partition and reports when a re-optimization is warranted —
either because an LC job started violating its QoS or because a job's
offered load moved materially.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional

from ..core.units import Fraction
from ..resources.allocation import Configuration
from ..telemetry import NULL_TELEMETRY, Telemetry
from .node import LC_ROLE, Node, Observation


class Trigger(Enum):
    """Why the monitor asked for re-optimization."""

    NONE = "none"
    QOS_VIOLATION = "qos_violation"
    LOAD_CHANGE = "load_change"


@dataclass(frozen=True)
class MonitorReport:
    """One monitoring period's verdict."""

    observation: Observation
    trigger: Trigger

    @property
    def reinvoke(self) -> bool:
        return self.trigger is not Trigger.NONE


class QoSMonitor:
    """Watches a converged partition and flags when to re-run the search.

    Args:
        node: The server being monitored.
        load_change_threshold: Minimum absolute change in any LC job's
            load fraction (vs. the load when monitoring started) that
            counts as a workload change.
        violation_patience: Number of *consecutive* violating windows
            required before triggering, so a single noisy reading does
            not thrash the optimizer.
        telemetry: Optional :class:`repro.telemetry.Telemetry` context;
            checks are then wrapped in ``monitor.check`` spans, checks
            and triggers counted, and each trigger emits a
            ``monitor.trigger`` event stamped with simulated node time.
    """

    def __init__(
        self,
        node: Node,
        load_change_threshold: Fraction = 0.05,
        violation_patience: int = 2,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if load_change_threshold <= 0:
            raise ValueError("load change threshold must be positive")
        if violation_patience < 1:
            raise ValueError("violation patience must be >= 1")
        self.node = node
        self.load_change_threshold = load_change_threshold
        self.violation_patience = violation_patience
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._baseline_loads: Optional[Dict[str, float]] = None
        self._consecutive_violations = 0

    def arm(self, observation: Observation) -> None:
        """Start monitoring from a converged observation."""
        self._baseline_loads = {
            j.name: j.load_fraction for j in observation.jobs if j.role == LC_ROLE
        }
        self._consecutive_violations = 0

    def check(self, config: Configuration) -> MonitorReport:
        """Take one monitoring window and decide whether to re-invoke."""
        telemetry = self.telemetry
        with telemetry.tracer.span("monitor.check") as span:
            report = self._check(config)
            span.set("trigger", report.trigger.value)
        if telemetry.active:
            telemetry.metrics.counter("monitor.checks").add()
            if report.reinvoke:
                telemetry.metrics.counter(
                    "monitor.triggers", trigger=report.trigger.value
                ).add()
                telemetry.tracer.event(
                    "monitor.trigger",
                    trigger=report.trigger.value,
                    node_time_s=report.observation.time_s,
                )
        return report

    def _check(self, config: Configuration) -> MonitorReport:
        observation = self.node.observe(config)
        if self._baseline_loads is None:
            self.arm(observation)
            return MonitorReport(observation, Trigger.NONE)

        for job in observation.lc_jobs:
            baseline = self._baseline_loads.get(job.name)
            if (
                baseline is not None
                and abs(job.load_fraction - baseline) >= self.load_change_threshold
            ):
                self._consecutive_violations = 0
                return MonitorReport(observation, Trigger.LOAD_CHANGE)

        if not observation.all_qos_met:
            self._consecutive_violations += 1
            if self._consecutive_violations >= self.violation_patience:
                self._consecutive_violations = 0
                return MonitorReport(observation, Trigger.QOS_VIOLATION)
        else:
            self._consecutive_violations = 0
        return MonitorReport(observation, Trigger.NONE)
