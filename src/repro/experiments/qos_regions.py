"""QoS-safe regions and the coordinate-descent counterexample (Figs. 1-2).

Fig. 1 plots, for one LC workload, which (resource A, resource B)
allocations meet its QoS — the curved frontier demonstrates the
"resource equivalence class" property (16 cores with 1 way ~ 14 cores
with 6 ways).  Fig. 2 overlays two jobs' regions on complementary axes:
where the regions overlap, co-location is possible, but a coordinate-
descent walk that changes one resource at a time may never reach the
overlap from its starting point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..resources.spec import CORES, ServerSpec, default_server
from ..workloads.latency import p95_latency_ms
from ..workloads.tailbench import lc_workload


@dataclass(frozen=True)
class QoSRegion:
    """Boolean QoS feasibility over a 2-D resource grid for one job.

    ``safe[i][j]`` tells whether allocating ``axis_a_units[i]`` of
    resource A and ``axis_b_units[j]`` of resource B (everything else
    fully allocated) meets the workload's QoS at the given load.
    """

    workload: str
    load: float
    resource_a: str
    resource_b: str
    axis_a_units: Tuple[int, ...]
    axis_b_units: Tuple[int, ...]
    safe: Tuple[Tuple[bool, ...], ...]

    def frontier(self) -> List[Tuple[int, int]]:
        """Minimal B units that make each A allocation safe (the Fig. 1 curve)."""
        points = []
        for i, a_units in enumerate(self.axis_a_units):
            for j, b_units in enumerate(self.axis_b_units):
                if self.safe[i][j]:
                    points.append((a_units, b_units))
                    break
        return points


def qos_region(
    workload_name: str,
    load: float,
    resource_a: str = CORES,
    resource_b: str = "llc_ways",
    server: Optional[ServerSpec] = None,
) -> QoSRegion:
    """Compute one workload's QoS-safe region over two resources."""
    server = server or default_server()
    workload = lc_workload(workload_name, server)
    res_a = server.resource(resource_a)
    res_b = server.resource(resource_b)
    qps = load * workload.max_qps

    axis_a = tuple(range(1, res_a.units + 1))
    axis_b = tuple(range(1, res_b.units + 1))
    safe_rows = []
    for a_units in axis_a:
        row = []
        for b_units in axis_b:
            shares = {r.name: 1.0 for r in server.resources}
            shares[resource_a] = a_units / res_a.units
            shares[resource_b] = b_units / res_b.units
            cores = a_units if resource_a == CORES else server.resource(CORES).units
            if resource_b == CORES:
                cores = b_units
            latency = p95_latency_ms(workload, qps, cores, shares)
            row.append(bool(latency <= workload.qos_latency_ms))
        safe_rows.append(tuple(row))
    return QoSRegion(
        workload=workload_name,
        load=load,
        resource_a=resource_a,
        resource_b=resource_b,
        axis_a_units=axis_a,
        axis_b_units=axis_b,
        safe=tuple(safe_rows),
    )


def overlap_region(region_a: QoSRegion, region_b: QoSRegion) -> np.ndarray:
    """Fig. 2's overlap: A takes (i, j); B gets the complement.

    ``overlap[i][j]`` is True when giving job A ``i+1`` units of
    resource A and ``j+1`` of resource B leaves enough of both for job
    B to meet its own QoS (both regions safe simultaneously).
    """
    if (
        region_a.resource_a != region_b.resource_a
        or region_a.resource_b != region_b.resource_b
    ):
        raise ValueError("regions must be over the same resource pair")
    n_a = len(region_a.axis_a_units)
    n_b = len(region_a.axis_b_units)
    overlap = np.zeros((n_a, n_b), dtype=bool)
    for i in range(n_a):
        for j in range(n_b):
            rem_a = n_a - (i + 1)  # units of resource A left for job B
            rem_b = n_b - (j + 1)
            if rem_a < 1 or rem_b < 1:
                continue
            overlap[i, j] = (
                region_a.safe[i][j] and region_b.safe[rem_a - 1][rem_b - 1]
            )
    return overlap


def coordinate_descent_reaches(
    overlap: np.ndarray, start: Tuple[int, int]
) -> bool:
    """Can a one-axis-at-a-time walk from ``start`` reach the overlap?

    Models the Fig. 2 argument: the walk may only move parallel to an
    axis and only through cells where it can evaluate progress; it
    reaches the overlap iff some safe cell shares a row or column with
    the start (a single coordinate move away), or a chain of such moves
    exists through intermediate safe cells.
    """
    if overlap.dtype != bool:
        raise ValueError("overlap must be a boolean grid")
    n_a, n_b = overlap.shape
    i0, j0 = start
    if not (0 <= i0 < n_a and 0 <= j0 < n_b):
        raise IndexError(f"start {start} outside the {overlap.shape} grid")
    if not overlap.any():
        return False
    # Breadth-first search over axis-aligned moves; intermediate cells
    # must be safe for the walk to "see" progress and keep going.
    from collections import deque

    queue = deque([(i0, j0)])
    visited = {(i0, j0)}
    while queue:
        i, j = queue.popleft()
        if overlap[i, j]:
            return True
        for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            ni, nj = i + di, j + dj
            if 0 <= ni < n_a and 0 <= nj < n_b and (ni, nj) not in visited:
                visited.add((ni, nj))
                # The walk can always probe a neighbor; it continues
                # *through* it only if the neighbor is safe, but probing
                # is enough to detect an adjacent safe cell.
                if overlap[ni, nj] or (ni, nj) == (i0, j0):
                    queue.append((ni, nj))
    return False
