"""Sampling-overhead comparison across job-mix sizes (Fig. 15a).

Every scheme's cost is the number of configurations it must run before
settling: RAND+ and GENETIC spend a preset budget, PARTIES stops at the
first QoS-meeting partition, CLITE samples until its EI termination
fires, and ORACLE's offline sweep is orders of magnitude beyond all of
them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..server.node import NodeBudget
from .runner import PolicyFactory, run_trial
from .spec import MixSpec


@dataclass(frozen=True)
class OverheadRow:
    """Average sampling cost of one policy on one mix."""

    policy: str
    mix_label: str
    n_lc: int
    n_bg: int
    mean_samples: float
    mean_evaluations: float
    qos_success_rate: float


def overhead_table(
    mixes: Sequence[MixSpec],
    policies: Dict[str, PolicyFactory],
    seeds: Sequence[int] = (0, 1, 2),
    budget: Optional[NodeBudget] = None,
) -> Tuple[OverheadRow, ...]:
    """Fig. 15(a): per-policy average sample counts over several mixes."""
    rows = []
    for mix in mixes:
        for name, factory in policies.items():
            trial_seeds: Sequence[Optional[int]] = (
                seeds if name != "ORACLE" else seeds[:1]
            )
            trials = [
                run_trial(mix, factory(seed), seed=seed, budget=budget)
                for seed in trial_seeds
            ]
            rows.append(
                OverheadRow(
                    policy=name,
                    mix_label=mix.label(),
                    n_lc=len(mix.lc),
                    n_bg=len(mix.bg),
                    mean_samples=sum(t.samples for t in trials) / len(trials),
                    mean_evaluations=sum(t.evaluations for t in trials)
                    / len(trials),
                    qos_success_rate=sum(t.qos_met for t in trials) / len(trials),
                )
            )
    return tuple(rows)
