"""Sampling-overhead comparison across job-mix sizes (Fig. 15a).

Every scheme's cost is the number of configurations it must run before
settling: RAND+ and GENETIC spend a preset budget, PARTIES stops at the
first QoS-meeting partition, CLITE samples until its EI termination
fires, and ORACLE's offline sweep is orders of magnitude beyond all of
them.

With a telemetry context the table also reports *measured* overhead
(Fig. 15b's concern): per-trial wall seconds read from the context's
injectable clock and, for policies that expose internal phases (CLITE),
the mean per-phase span breakdown of one run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..server.node import NodeBudget
from ..telemetry import Telemetry
from .runner import PolicyFactory, run_trial
from .spec import MixSpec


@dataclass(frozen=True)
class OverheadRow:
    """Average sampling cost of one policy on one mix.

    ``mean_wall_seconds`` and ``phase_seconds`` are populated only when
    :func:`overhead_table` ran with a telemetry context; wall time is
    read from the context's clock (so a :class:`SimulatedClock` yields
    zeros and a :class:`WallClock` yields real seconds), and
    ``phase_seconds`` is the across-trials mean of each span phase for
    policies that report one (CLITE).
    """

    policy: str
    mix_label: str
    n_lc: int
    n_bg: int
    mean_samples: float
    mean_evaluations: float
    qos_success_rate: float
    mean_wall_seconds: Optional[float] = None
    phase_seconds: Optional[Mapping[str, float]] = None


def overhead_table(
    mixes: Sequence[MixSpec],
    policies: Dict[str, PolicyFactory],
    seeds: Sequence[int] = (0, 1, 2),
    budget: Optional[NodeBudget] = None,
    telemetry: Optional[Telemetry] = None,
) -> Tuple[OverheadRow, ...]:
    """Fig. 15(a): per-policy average sample counts over several mixes."""
    rows = []
    for mix in mixes:
        for name, factory in policies.items():
            trial_seeds: Sequence[Optional[int]] = (
                seeds if name != "ORACLE" else seeds[:1]
            )
            trials = []
            walls = []
            phase_sums: Dict[str, float] = {}
            phase_trials = 0
            for seed in trial_seeds:
                started = telemetry.clock.now() if telemetry else 0.0
                trial = run_trial(
                    mix,
                    factory(seed),
                    seed=seed,
                    budget=budget,
                    telemetry=telemetry,
                )
                if telemetry is not None:
                    walls.append(telemetry.clock.now() - started)
                trials.append(trial)
                snapshot = trial.result.telemetry
                if snapshot is not None and snapshot.phase_seconds:
                    phase_trials += 1
                    for phase, seconds in snapshot.phase_seconds.items():
                        phase_sums[phase] = phase_sums.get(phase, 0.0) + seconds
            rows.append(
                OverheadRow(
                    policy=name,
                    mix_label=mix.label(),
                    n_lc=len(mix.lc),
                    n_bg=len(mix.bg),
                    mean_samples=sum(t.samples for t in trials) / len(trials),
                    mean_evaluations=sum(t.evaluations for t in trials)
                    / len(trials),
                    qos_success_rate=sum(t.qos_met for t in trials) / len(trials),
                    mean_wall_seconds=(
                        sum(walls) / len(walls) if walls else None
                    ),
                    phase_seconds=(
                        {
                            phase: total / phase_trials
                            for phase, total in sorted(phase_sums.items())
                        }
                        if phase_trials
                        else None
                    ),
                )
            )
    return tuple(rows)
