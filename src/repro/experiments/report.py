"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows and series the paper's
tables and figures report; these helpers keep that output aligned and
consistent.  Infeasible cells render as ``X``, matching the figures.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .colocation import LoadGrid


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], pad: int = 2
) -> str:
    """Fixed-width text table; floats render with three decimals."""

    def render(value: object) -> str:
        if value is None:
            return "X"
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    cells = [[render(v) for v in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(str(headers[c])), max((len(r[c]) for r in cells), default=0))
        for c in range(len(headers))
    ]
    sep = " " * pad

    def line(values: Sequence[str]) -> str:
        return sep.join(v.ljust(widths[i]) for i, v in enumerate(values)).rstrip()

    out = [line([str(h) for h in headers])]
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def format_heatmap(grid: LoadGrid, as_percent: bool = True) -> str:
    """Render a LoadGrid the way the paper's heatmaps read.

    Rows are the row job's loads (ascending), columns the column job's
    loads; ``X`` marks infeasible cells.
    """

    def render(value: Optional[float]) -> str:
        if value is None:
            return "X"
        return f"{value:.0%}" if as_percent else f"{value:.3f}"

    headers = [f"{grid.row_job}\\{grid.col_job}"] + [
        f"{c:.0%}" for c in grid.col_loads
    ]
    rows: List[List[object]] = []
    for load, row in zip(grid.row_loads, grid.cells):
        rows.append([f"{load:.0%}"] + [render(v) for v in row])
    title = f"[{grid.policy}] max/perf for {grid.row_job} x {grid.col_job}"
    return title + "\n" + format_table(headers, rows)


def format_series(
    name: str, xs: Sequence[float], ys: Sequence[Optional[float]]
) -> str:
    """One named (x, y) series as aligned columns."""
    rows = [[x, y] for x, y in zip(xs, ys)]
    return name + "\n" + format_table(["x", "y"], rows)
