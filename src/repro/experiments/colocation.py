"""Maximum-supported-load searches — the Figs. 7, 8, and 12 protocol.

The paper's co-location heatmaps ask, for a grid of loads of two LC
jobs, how much load a third (target) job can carry without any QoS
violation under a given policy; and, for Fig. 12, how much performance
a BG job retains across a load grid.  This module implements both
sweeps on top of the trial runner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..server.node import NodeBudget
from .runner import PolicyFactory, run_trial
from .spec import MixSpec

#: The paper's 10%-step load axis.
DEFAULT_LOADS: Tuple[float, ...] = tuple(round(0.1 * i, 1) for i in range(1, 11))


@dataclass(frozen=True)
class LoadGrid:
    """A heatmap of results over a (row job load) x (col job load) grid.

    ``cells[i][j]`` corresponds to ``row_loads[i]`` and ``col_loads[j]``;
    ``None`` marks an infeasible cell (the paper's ``X``).
    """

    row_job: str
    col_job: str
    row_loads: Tuple[float, ...]
    col_loads: Tuple[float, ...]
    cells: Tuple[Tuple[Optional[float], ...], ...]
    policy: str

    def cell(self, i: int, j: int) -> Optional[float]:
        return self.cells[i][j]


def max_supported_load(
    mix: MixSpec,
    target_job: str,
    policy_factory: PolicyFactory,
    loads: Sequence[float] = DEFAULT_LOADS,
    seed: Optional[int] = 0,
    budget: Optional[NodeBudget] = None,
) -> Optional[float]:
    """Highest load of ``target_job`` the policy can support in ``mix``.

    Walks the load axis upward and stops at the first level whose trial
    violates QoS (the paper's heatmaps are built the same way: a row's
    supported load does not recover once lost).  Returns ``None`` when
    even the lowest level fails.
    """
    best: Optional[float] = None
    for load in loads:
        trial = run_trial(
            mix.with_lc_load(target_job, load),
            policy_factory(seed),
            seed=seed,
            budget=budget,
        )
        if not trial.qos_met:
            break
        best = load
    return best


def max_load_grid(
    base_mix: MixSpec,
    row_job: str,
    col_job: str,
    target_job: str,
    policy_factory: PolicyFactory,
    policy_name: str,
    row_loads: Sequence[float] = DEFAULT_LOADS,
    col_loads: Sequence[float] = DEFAULT_LOADS,
    target_loads: Sequence[float] = DEFAULT_LOADS,
    seed: Optional[int] = 0,
    budget: Optional[NodeBudget] = None,
) -> LoadGrid:
    """The Figs. 7/8 heatmap: max target-job load per (row, col) loads."""
    cells = []
    for row_load in row_loads:
        row = []
        for col_load in col_loads:
            mix = base_mix.with_lc_load(row_job, row_load).with_lc_load(
                col_job, col_load
            )
            row.append(
                max_supported_load(
                    mix,
                    target_job,
                    policy_factory,
                    loads=target_loads,
                    seed=seed,
                    budget=budget,
                )
            )
        cells.append(tuple(row))
    return LoadGrid(
        row_job=row_job,
        col_job=col_job,
        row_loads=tuple(row_loads),
        col_loads=tuple(col_loads),
        cells=tuple(cells),
        policy=policy_name,
    )


def bg_performance_grid(
    base_mix: MixSpec,
    row_job: str,
    col_job: str,
    bg_job: str,
    policy_factory: PolicyFactory,
    policy_name: str,
    row_loads: Sequence[float] = DEFAULT_LOADS,
    col_loads: Sequence[float] = DEFAULT_LOADS,
    seed: Optional[int] = 0,
    budget: Optional[NodeBudget] = None,
) -> LoadGrid:
    """The Fig. 12 heatmap: normalized BG performance per load cell.

    Cells where the policy cannot meet every LC QoS are ``None``.
    """
    cells = []
    for row_load in row_loads:
        row = []
        for col_load in col_loads:
            mix = base_mix.with_lc_load(row_job, row_load).with_lc_load(
                col_job, col_load
            )
            trial = run_trial(mix, policy_factory(seed), seed=seed, budget=budget)
            if trial.qos_met:
                row.append(trial.bg_performance[bg_job])
            else:
                row.append(None)
        cells.append(tuple(row))
    return LoadGrid(
        row_job=row_job,
        col_job=col_job,
        row_loads=tuple(row_loads),
        col_loads=tuple(col_loads),
        cells=tuple(cells),
        policy=policy_name,
    )
