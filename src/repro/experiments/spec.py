"""Declarative descriptions of co-location scenarios.

A :class:`MixSpec` names the LC jobs (with load fractions) and BG jobs
of one co-location, and can build a fresh simulated node for it — the
unit every experiment in Sec. 5 is expressed in.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple, Union

from ..server.counters import DEFAULT_OBSERVATION_PERIOD_S, PerformanceCounters
from ..server.node import Job, Node
from ..server.obstore import ObservationStore
from ..resources.spec import ServerSpec, default_server
from ..workloads.loadgen import LoadSchedule
from ..workloads.parsec import bg_workload
from ..workloads.tailbench import lc_workload


@dataclass(frozen=True)
class MixSpec:
    """One co-location scenario: LC jobs at given loads plus BG jobs.

    Attributes:
        lc: ``(workload_name, load)`` pairs; ``load`` is either a float
            load fraction or a :class:`LoadSchedule` for dynamic
            scenarios.
        bg: BG workload names.
    """

    lc: Tuple[Tuple[str, Union[float, LoadSchedule]], ...]
    bg: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.lc and not self.bg:
            raise ValueError("a mix needs at least one job")

    @staticmethod
    def of(
        lc: Sequence[Tuple[str, Union[float, LoadSchedule]]],
        bg: Sequence[str] = (),
    ) -> "MixSpec":
        return MixSpec(lc=tuple(lc), bg=tuple(bg))

    @property
    def n_jobs(self) -> int:
        return len(self.lc) + len(self.bg)

    def label(self) -> str:
        """Compact human-readable mix description."""
        parts = []
        for name, load in self.lc:
            if isinstance(load, LoadSchedule):
                parts.append(f"{name}@dyn")
            else:
                parts.append(f"{name}@{load:.0%}")
        parts.extend(self.bg)
        return " + ".join(parts)

    def with_lc_load(self, name: str, load: Union[float, LoadSchedule]) -> "MixSpec":
        """A copy with one LC job's load replaced."""
        if name not in {n for n, _ in self.lc}:
            raise KeyError(f"no LC job named {name!r} in this mix")
        new_lc = tuple(
            (n, load if n == name else current) for n, current in self.lc
        )
        return replace(self, lc=new_lc)

    def build_node(
        self,
        server: Optional[ServerSpec] = None,
        seed: Optional[int] = None,
        window_s: float = DEFAULT_OBSERVATION_PERIOD_S,
        noise: Optional[float] = None,
        store: Optional[ObservationStore] = None,
    ) -> Node:
        """Instantiate a fresh node running this mix.

        Args:
            server: Server spec (default: the Table 2 testbed).
            seed: Counter-noise seed (fresh entropy if ``None``).
            window_s: Observation window length.
            noise: Override the counters' relative noise level.
            store: Shared observation store — repeated sweeps over the
                same mix then reuse truths across nodes and processes.
        """
        server = server or default_server()
        jobs = []
        for name, load in self.lc:
            workload = lc_workload(name, server)
            if isinstance(load, LoadSchedule):
                jobs.append(Job(workload, load))
            else:
                jobs.append(Job.lc(workload, load))
        jobs.extend(Job.bg(bg_workload(name)) for name in self.bg)
        counters = (
            PerformanceCounters(relative_std=noise, seed=seed)
            if noise is not None
            else PerformanceCounters(seed=seed)
        )
        return Node(
            server, jobs, counters=counters, window_s=window_s, store=store
        )
