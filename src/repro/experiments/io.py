"""JSON persistence for experiment artifacts.

Grid sweeps and policy traces are expensive to regenerate, so the
harness can serialize them: a :class:`~repro.experiments.colocation.
LoadGrid` or a trial summary round-trips through plain JSON that other
tools (plotting notebooks, dashboards) can consume without importing
this library.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from .colocation import LoadGrid
from .runner import TrialResult

PathLike = Union[str, Path]


def grid_to_dict(grid: LoadGrid) -> dict:
    """A JSON-ready representation of a load/performance grid."""
    return {
        "kind": "load_grid",
        "policy": grid.policy,
        "row_job": grid.row_job,
        "col_job": grid.col_job,
        "row_loads": list(grid.row_loads),
        "col_loads": list(grid.col_loads),
        "cells": [list(row) for row in grid.cells],
    }


def grid_from_dict(data: dict) -> LoadGrid:
    """Rebuild a :class:`LoadGrid` from :func:`grid_to_dict` output."""
    if data.get("kind") != "load_grid":
        raise ValueError(f"not a load_grid payload: {data.get('kind')!r}")
    return LoadGrid(
        policy=data["policy"],
        row_job=data["row_job"],
        col_job=data["col_job"],
        row_loads=tuple(data["row_loads"]),
        col_loads=tuple(data["col_loads"]),
        cells=tuple(
            tuple(None if v is None else float(v) for v in row)
            for row in data["cells"]
        ),
    )


def trial_to_dict(trial: TrialResult) -> dict:
    """A JSON-ready summary of one trial (no raw observations).

    Keeps what the paper's figures consume: the mix, the chosen
    partition, ground-truth per-job metrics, and sampling costs.
    """
    best = trial.result.best_config
    return {
        "kind": "trial",
        "policy": trial.policy,
        "mix": {
            "lc": [
                [name, load if isinstance(load, float) else "dynamic"]
                for name, load in trial.mix.lc
            ],
            "bg": list(trial.mix.bg),
        },
        "seed": trial.seed,
        "qos_met": trial.qos_met,
        "lc_performance": dict(trial.lc_performance),
        "bg_performance": dict(trial.bg_performance),
        "samples": trial.samples,
        "evaluations": trial.evaluations,
        "best_config": None if best is None else [list(r) for r in best.units],
        "converged": trial.result.converged,
        "infeasible_jobs": list(trial.result.infeasible_jobs),
    }


def save_json(payload: dict, path: PathLike) -> None:
    """Write one artifact dict as pretty-printed JSON."""
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def load_json(path: PathLike) -> dict:
    """Read one artifact dict back from disk."""
    return json.loads(Path(path).read_text())


def save_grid(grid: LoadGrid, path: PathLike) -> None:
    """Serialize a :class:`LoadGrid` to a JSON file."""
    save_json(grid_to_dict(grid), path)


def load_grid(path: PathLike) -> LoadGrid:
    """Deserialize a :class:`LoadGrid` written by :func:`save_grid`."""
    return grid_from_dict(load_json(path))
