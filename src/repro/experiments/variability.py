"""Run-to-run variability of a policy's chosen partition (Fig. 11).

Every scheme has a stochastic element — RAND+'s draws, GENETIC's
mutations, PARTIES' trial-and-error ordering, CLITE's probabilistic
dropout — so the paper repeats each co-location several times and
reports the standard deviation of the observed performance as a
percentage of its mean.  CLITE's claim is the lowest variability
(< 7% vs. often > 20% for the others).
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence, Tuple

from ..server.node import NodeBudget
from .runner import PolicyFactory, TrialResult, run_trial
from .spec import MixSpec


def run_repeats(
    mix: MixSpec,
    policy_factory: PolicyFactory,
    n_trials: int = 5,
    budget: Optional[NodeBudget] = None,
    base_seed: int = 0,
) -> Tuple[TrialResult, ...]:
    """The same mix, ``n_trials`` times with different seeds."""
    if n_trials < 2:
        raise ValueError("variability needs at least 2 trials")
    return tuple(
        run_trial(mix, policy_factory(base_seed + i), seed=base_seed + i, budget=budget)
        for i in range(n_trials)
    )


def trial_performance(trial: TrialResult) -> float:
    """The scalar performance Fig. 11 tracks per run.

    Mean BG performance when the mix has BG jobs, otherwise mean LC
    performance; 0 when the trial failed to find any partition.
    """
    if trial.result.best_config is None:
        return 0.0
    if trial.bg_performance:
        return trial.mean_bg_performance
    return trial.mean_lc_performance


def variability_percent(
    trials: Sequence[TrialResult],
    metric: Callable[[TrialResult], float] = trial_performance,
) -> float:
    """Population standard deviation as % of the mean of ``metric``."""
    values = [metric(t) for t in trials]
    if len(values) < 2:
        raise ValueError("variability needs at least 2 trials")
    mean = sum(values) / len(values)
    if mean == 0:
        return float("inf")
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return 100.0 * math.sqrt(variance) / mean
