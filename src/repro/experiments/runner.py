"""Run policies on mixes and extract ground-truth metrics.

The runner gives every experiment the same shape: build a fresh node
for a :class:`~repro.experiments.spec.MixSpec`, let a policy search
within a budget, then judge the chosen partition against the
simulator's *noise-free* performance — the same way the paper judges a
controller by what the machine actually did, not by what the controller
believed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..resources.spec import ServerSpec, default_server
from ..schedulers import (
    CLITEPolicy,
    GeneticPolicy,
    HeraclesPolicy,
    OraclePolicy,
    PartiesPolicy,
    Policy,
    PolicyResult,
    RandomPlusPolicy,
)
from ..server.node import BG_ROLE, LC_ROLE, Node, NodeBudget
from ..server.obstore import ObservationStore
from ..telemetry import Telemetry
from .spec import MixSpec

#: A policy factory: seed -> fresh policy instance.
PolicyFactory = Callable[[Optional[int]], Policy]

#: The paper's head-to-head lineup (Sec. 5.1).
STANDARD_POLICIES: Dict[str, PolicyFactory] = {
    "CLITE": lambda seed: CLITEPolicy(seed=seed),
    "PARTIES": lambda seed: PartiesPolicy(),
    "Heracles": lambda seed: HeraclesPolicy(),
    "RAND+": lambda seed: RandomPlusPolicy(seed=seed),
    "GENETIC": lambda seed: GeneticPolicy(seed=seed),
    "ORACLE": lambda seed: OraclePolicy(),
}


@dataclass(frozen=True)
class TrialResult:
    """Ground-truth outcome of one (mix, policy, seed) trial.

    Attributes:
        policy: Policy name.
        mix: The scenario that ran.
        seed: Noise/search seed.
        result: The policy's own view of its search.
        qos_met: Whether the chosen partition *truly* meets every QoS.
        lc_performance: Per-LC-job ``iso_p95 / colo_p95`` (1.0 means
            as good as isolation; the Fig. 10 metric before
            ORACLE-normalization).
        bg_performance: Per-BG-job throughput normalized to isolation
            (the Figs. 12-14 metric).
        samples: Online observation windows the policy consumed.
        evaluations: Total evaluations including offline sweeps.
    """

    policy: str
    mix: MixSpec
    seed: Optional[int]
    result: PolicyResult
    qos_met: bool
    lc_performance: Dict[str, float]
    bg_performance: Dict[str, float]
    samples: int
    evaluations: int

    @property
    def mean_lc_performance(self) -> float:
        if not self.lc_performance:
            raise ValueError("mix has no LC jobs")
        return sum(self.lc_performance.values()) / len(self.lc_performance)

    @property
    def mean_bg_performance(self) -> float:
        if not self.bg_performance:
            raise ValueError("mix has no BG jobs")
        return sum(self.bg_performance.values()) / len(self.bg_performance)


def isolated_lc_latencies(node: Node) -> Dict[str, float]:
    """True p95 of each LC job under its own maximum allocation."""
    baselines: Dict[str, float] = {}
    for j, job in enumerate(node.jobs):
        if job.is_lc:
            truth = node.true_performance(node.space.max_allocation(j))
            baselines[job.name] = truth.job(job.name).p95_ms
    return baselines


def run_trial(
    mix: MixSpec,
    policy: Policy,
    seed: Optional[int] = None,
    budget: Optional[NodeBudget] = None,
    server: Optional[ServerSpec] = None,
    telemetry: Optional[Telemetry] = None,
    store: Optional["ObservationStore"] = None,
) -> TrialResult:
    """One policy run on a fresh node, judged by true performance.

    With ``telemetry``, the context is installed on the node (so every
    policy's observation windows are traced) and handed to the policy
    via :meth:`~repro.schedulers.base.Policy.instrument`.  ``store``
    attaches a persistent observation store to the node, making
    repeated trials of the same mix near-free on warm truths.
    """
    server = server or default_server()
    node = mix.build_node(server=server, seed=seed, store=store)
    budget = budget or NodeBudget()
    if telemetry is not None and telemetry.active:
        node.telemetry = telemetry
        policy = policy.instrument(telemetry)
    result = policy.partition(node, budget)

    lc_perf: Dict[str, float] = {}
    bg_perf: Dict[str, float] = {}
    qos_met = False
    if result.best_config is not None:
        truth = node.true_performance(result.best_config)
        qos_met = truth.all_qos_met
        baselines = isolated_lc_latencies(node)
        for reading in truth.jobs:
            if reading.role == LC_ROLE:
                lc_perf[reading.name] = baselines[reading.name] / reading.p95_ms
            elif reading.role == BG_ROLE:
                bg_perf[reading.name] = reading.throughput_norm
    return TrialResult(
        policy=result.policy,
        mix=mix,
        seed=seed,
        result=result,
        qos_met=qos_met,
        lc_performance=lc_perf,
        bg_performance=bg_perf,
        samples=result.samples_taken,
        evaluations=result.total_evaluations,
    )


def run_policies(
    mix: MixSpec,
    policies: Dict[str, PolicyFactory],
    seeds: Sequence[Optional[int]] = (0,),
    budget: Optional[NodeBudget] = None,
    server: Optional[ServerSpec] = None,
) -> Dict[str, Tuple[TrialResult, ...]]:
    """Run several policies (each over several seeds) on one mix."""
    outcome: Dict[str, Tuple[TrialResult, ...]] = {}
    for name, factory in policies.items():
        trials = tuple(
            run_trial(mix, factory(seed), seed=seed, budget=budget, server=server)
            for seed in seeds
        )
        outcome[name] = trials
    return outcome
