"""Reusable ablation sweeps over CLITE's design choices.

DESIGN.md calls out the Sec. 4 mechanisms worth ablating — kernel,
acquisition, bootstrap, dropout, constrained execution, refinement.
This module turns "run a set of engine variants over mixes and seeds,
aggregate ground-truth outcomes" into a first-class API, so studies
beyond the bundled bench (new mixes, new variants) are one call.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Tuple

from ..core.acquisition import ProbabilityOfImprovement, UpperConfidenceBound
from ..core.engine import CLITEConfig
from ..core.kernels import RBF
from ..schedulers.clite import CLITEPolicy
from ..server.node import NodeBudget
from .runner import run_trial
from .spec import MixSpec


@dataclass(frozen=True)
class AblationOutcome:
    """Aggregated ground truth for one engine variant.

    Attributes:
        variant: Variant label.
        qos_rate: Fraction of (mix, seed) trials whose chosen partition
            truly met every LC job's QoS.
        mean_performance: Mean of each trial's headline metric (mean BG
            performance when the mix has BG jobs, else mean LC
            performance), with QoS-violating trials scored 0.
        mean_samples: Mean observation windows consumed.
    """

    variant: str
    qos_rate: float
    mean_performance: float
    mean_samples: float


def standard_variants(base: Optional[CLITEConfig] = None) -> Dict[str, CLITEConfig]:
    """The DESIGN.md ablation set, derived from ``base``."""
    base = base if base is not None else CLITEConfig()
    return {
        "full CLITE": base,
        "RBF kernel": replace(base, kernel=RBF()),
        "PI acquisition": replace(base, acquisition=ProbabilityOfImprovement()),
        "UCB acquisition": replace(base, acquisition=UpperConfidenceBound()),
        "random bootstrap": replace(base, informed_bootstrap=False),
        "no dropout": replace(base, dropout_enabled=False),
        "no constrained execution": replace(base, constrained_execution=False),
        "no refinement": replace(base, refine_budget=0),
    }


def _trial_metric(trial) -> float:
    if not trial.qos_met:
        return 0.0
    if trial.bg_performance:
        return trial.mean_bg_performance
    return trial.mean_lc_performance


def run_ablation(
    variants: Dict[str, CLITEConfig],
    mixes: Sequence[MixSpec],
    seeds: Sequence[int] = (0, 1),
    budget: Optional[NodeBudget] = None,
) -> Tuple[AblationOutcome, ...]:
    """Run every variant on every (mix, seed) and aggregate outcomes.

    Returns outcomes in the variants' insertion order, so the first row
    is the reference configuration.
    """
    if not variants:
        raise ValueError("need at least one variant")
    if not mixes:
        raise ValueError("need at least one mix")
    if not seeds:
        raise ValueError("need at least one seed")
    budget = budget or NodeBudget()
    outcomes = []
    for name, config in variants.items():
        perfs = []
        qos = 0
        samples = 0
        for mix in mixes:
            for seed in seeds:
                trial = run_trial(
                    mix,
                    CLITEPolicy(config=replace(config, seed=seed)),
                    seed=seed,
                    budget=budget,
                )
                qos += trial.qos_met
                perfs.append(_trial_metric(trial))
                samples += trial.samples
        n = len(mixes) * len(seeds)
        outcomes.append(
            AblationOutcome(
                variant=name,
                qos_rate=qos / n,
                mean_performance=sum(perfs) / n,
                mean_samples=samples / n,
            )
        )
    return tuple(outcomes)
