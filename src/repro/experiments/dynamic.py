"""Dynamic load adaptation — the Fig. 16 scenario.

An LC job's load steps up over time; CLITE's converged partition is
monitored, the load change triggers re-invocation, and a new partition
is searched and enacted.  The trace records every observation window,
so the figure's time series — per-job allocations shifting, the BG
job's performance dipping during re-exploration and stabilizing lower
as the LC job's demand grows — can be read straight off it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from ..core.engine import CLITEConfig, CLITEEngine
from ..resources.spec import ServerSpec, default_server
from ..server.monitor import QoSMonitor, Trigger
from ..server.node import Observation
from ..telemetry import Telemetry, TelemetrySnapshot
from .spec import MixSpec


@dataclass(frozen=True)
class DynamicEvent:
    """One observation window in the dynamic timeline."""

    time_s: float
    observation: Observation
    phase: str  # "optimize", "monitor", or "reoptimize"


@dataclass(frozen=True)
class DynamicTrace:
    """Everything that happened during a dynamic-load run.

    ``telemetry`` holds the run's snapshot (monitor checks, triggers,
    re-invocation events, engine phases) when :func:`run_dynamic` ran
    with a telemetry context, else ``None``.
    """

    events: Tuple[DynamicEvent, ...]
    reinvocations: Tuple[float, ...]  # times at which re-optimization began
    telemetry: Optional[TelemetrySnapshot] = None

    def bg_series(self, bg_job: str) -> List[Tuple[float, float]]:
        """(time, normalized throughput) of one BG job."""
        return [
            (e.time_s, e.observation.job(bg_job).throughput_norm)
            for e in self.events
        ]

    def allocation_series(
        self, job_index: int, resource_index: int
    ) -> List[Tuple[float, int]]:
        """(time, units) of one job's allocation of one resource."""
        return [
            (e.time_s, e.observation.config.get(job_index, resource_index))
            for e in self.events
        ]

    def load_series(self, lc_job: str) -> List[Tuple[float, float]]:
        """(time, load fraction) of one LC job."""
        return [
            (e.time_s, e.observation.job(lc_job).load_fraction)
            for e in self.events
        ]


def run_dynamic(
    mix: MixSpec,
    total_time_s: float,
    server: Optional[ServerSpec] = None,
    engine_config: Optional[CLITEConfig] = None,
    seed: Optional[int] = 0,
    load_change_threshold: float = 0.05,
    telemetry: Optional[Telemetry] = None,
) -> DynamicTrace:
    """Run CLITE with monitoring and re-invocation until ``total_time_s``.

    The mix's LC jobs may carry :class:`LoadSchedule`s; the node's
    simulated clock advances one observation window per sample, so the
    schedule plays out in (simulated) real time.  With ``telemetry``,
    every engine run, monitor check, and observation window is traced,
    each re-invocation emits a ``dynamic.reinvocation`` event stamped
    with the simulated node time, and the returned trace carries the
    run's snapshot.
    """
    if total_time_s <= 0:
        raise ValueError("total_time_s must be positive")
    server = server or default_server()
    node = mix.build_node(server=server, seed=seed)
    config = engine_config or CLITEConfig(seed=seed)
    if telemetry is not None and telemetry.active:
        node.telemetry = telemetry
        config = replace(config, telemetry=telemetry)
    spans_before = telemetry.tracer.finished_count if telemetry else 0

    events: List[DynamicEvent] = []
    reinvocations: List[float] = []

    def record(phase: str, since_index: int) -> int:
        for obs in node.history[since_index:]:
            events.append(DynamicEvent(obs.time_s, obs, phase))
        return len(node.history)

    result = CLITEEngine(node, config).optimize()
    cursor = record("optimize", 0)
    best = result.best_config

    monitor = QoSMonitor(
        node,
        load_change_threshold=load_change_threshold,
        telemetry=telemetry,
    )
    while node.clock_s < total_time_s:
        report = monitor.check(best)
        cursor = record("monitor", cursor)
        if report.trigger is not Trigger.NONE:
            reinvocations.append(node.clock_s)
            if telemetry is not None and telemetry.active:
                telemetry.metrics.counter("dynamic.reinvocations").add()
                telemetry.tracer.event(
                    "dynamic.reinvocation",
                    trigger=report.trigger.value,
                    node_time_s=node.clock_s,
                )
            result = CLITEEngine(node, config).optimize()
            cursor = record("reoptimize", cursor)
            best = result.best_config
            monitor = QoSMonitor(
                node,
                load_change_threshold=load_change_threshold,
                telemetry=telemetry,
            )
    return DynamicTrace(
        events=tuple(events),
        reinvocations=tuple(reinvocations),
        telemetry=(
            telemetry.snapshot(spans_since=spans_before)
            if telemetry is not None and telemetry.active
            else None
        ),
    )
