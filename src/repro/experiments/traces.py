"""Search-trajectory views of a policy run (Figs. 9 and 15b).

Fig. 9(a) compares the final per-job resource split of two policies;
Fig. 9(b) shows each job's allocation over configuration samples —
PARTIES cycling without converging while CLITE stabilizes; Fig. 15(b)
shows the best-so-far BG performance over samples — PARTIES plateauing
at QoS while CLITE keeps improving.  All three views derive from the
policy traces the runner already records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..resources.spec import ServerSpec
from ..schedulers.base import PolicyResult
from ..server.node import BG_ROLE, LC_ROLE


@dataclass(frozen=True)
class AllocationSnapshot:
    """Per-job share of every resource for one configuration (Fig. 9a)."""

    policy: str
    job_names: Tuple[str, ...]
    resource_names: Tuple[str, ...]
    shares: Tuple[Tuple[float, ...], ...]  # [job][resource], fractions

    def share(self, job: str, resource: str) -> float:
        return self.shares[self.job_names.index(job)][
            self.resource_names.index(resource)
        ]


def allocation_snapshot(
    result: PolicyResult, server: ServerSpec, job_names: Sequence[str]
) -> AllocationSnapshot:
    """Fractional allocation of the policy's chosen partition."""
    if result.best_config is None:
        raise ValueError(f"{result.policy} found no configuration")
    config = result.best_config
    shares = tuple(
        tuple(
            config.get(j, r) / resource.units
            for r, resource in enumerate(server.resources)
        )
        for j in range(config.n_jobs)
    )
    return AllocationSnapshot(
        policy=result.policy,
        job_names=tuple(job_names),
        resource_names=server.resource_names,
        shares=shares,
    )


def allocation_series(
    result: PolicyResult, server: ServerSpec, job: int, resource: int
) -> List[float]:
    """One job's share of one resource across samples (Fig. 9b)."""
    units = server.resources[resource].units
    return [entry.config.get(job, resource) / units for entry in result.trace]


def qos_met_series(result: PolicyResult) -> List[bool]:
    """Whether every LC job met QoS, per sample."""
    return [entry.observation.all_qos_met for entry in result.trace]


def best_bg_performance_series(
    result: PolicyResult, bg_job: str
) -> List[Optional[float]]:
    """Best-so-far QoS-safe BG performance over samples (Fig. 15b).

    A sample only advances the series if every LC job met QoS in it —
    BG throughput achieved by starving an LC job does not count.
    """
    best: Optional[float] = None
    series: List[Optional[float]] = []
    for entry in result.trace:
        if entry.observation.all_qos_met:
            perf = entry.observation.job(bg_job).throughput_norm
            if best is None or perf > best:
                best = perf
        series.append(best)
    return series


def first_qos_met_sample(result: PolicyResult) -> Optional[int]:
    """Index of the first sample meeting every QoS (Fig. 15b marker)."""
    for entry in result.trace:
        if entry.observation.all_qos_met:
            return entry.index
    return None


def per_job_performance(
    result: PolicyResult,
) -> Dict[str, List[float]]:
    """Each job's per-sample performance (QoS ratio for LC, norm for BG)."""
    if not result.trace:
        return {}
    series: Dict[str, List[float]] = {
        reading.name: [] for reading in result.trace[0].observation.jobs
    }
    for entry in result.trace:
        for reading in entry.observation.jobs:
            if reading.role == LC_ROLE:
                series[reading.name].append(reading.qos_ratio)
            elif reading.role == BG_ROLE:
                series[reading.name].append(reading.throughput_norm)
    return series
