"""Experiment harness: mixes, runners, sweeps, traces, reports."""

from .ablation import AblationOutcome, run_ablation, standard_variants
from .colocation import (
    DEFAULT_LOADS,
    LoadGrid,
    bg_performance_grid,
    max_load_grid,
    max_supported_load,
)
from .dynamic import DynamicEvent, DynamicTrace, run_dynamic
from .io import (
    grid_from_dict,
    grid_to_dict,
    load_grid,
    load_json,
    save_grid,
    save_json,
    trial_to_dict,
)
from .overhead import OverheadRow, overhead_table
from .qos_regions import (
    QoSRegion,
    coordinate_descent_reaches,
    overlap_region,
    qos_region,
)
from .report import format_heatmap, format_series, format_table
from .runner import (
    STANDARD_POLICIES,
    PolicyFactory,
    TrialResult,
    isolated_lc_latencies,
    run_policies,
    run_trial,
)
from .spec import MixSpec
from .traces import (
    AllocationSnapshot,
    allocation_series,
    allocation_snapshot,
    best_bg_performance_series,
    first_qos_met_sample,
    per_job_performance,
    qos_met_series,
)
from .variability import run_repeats, trial_performance, variability_percent

__all__ = [
    "AblationOutcome",
    "AllocationSnapshot",
    "DEFAULT_LOADS",
    "DynamicEvent",
    "DynamicTrace",
    "LoadGrid",
    "MixSpec",
    "OverheadRow",
    "PolicyFactory",
    "QoSRegion",
    "STANDARD_POLICIES",
    "TrialResult",
    "allocation_series",
    "allocation_snapshot",
    "best_bg_performance_series",
    "bg_performance_grid",
    "coordinate_descent_reaches",
    "first_qos_met_sample",
    "format_heatmap",
    "grid_from_dict",
    "grid_to_dict",
    "load_grid",
    "load_json",
    "save_grid",
    "save_json",
    "trial_to_dict",
    "format_series",
    "format_table",
    "isolated_lc_latencies",
    "max_load_grid",
    "max_supported_load",
    "overhead_table",
    "overlap_region",
    "per_job_performance",
    "qos_met_series",
    "qos_region",
    "run_ablation",
    "run_dynamic",
    "run_policies",
    "run_repeats",
    "run_trial",
    "standard_variants",
    "trial_performance",
    "variability_percent",
]
