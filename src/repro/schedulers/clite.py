"""CLITE as a scheduling policy (thin wrapper over the core engine)."""

from __future__ import annotations

from typing import Optional

from ..core.engine import CLITEConfig, CLITEEngine
from ..resources.contracts import policy_contract
from ..server.node import Node, NodeBudget
from ..telemetry import Telemetry
from .base import Policy, PolicyResult, TraceEntry


class CLITEPolicy(Policy):
    """The paper's contribution, packaged behind the policy interface.

    Args:
        config: Engine configuration; the budget's ``max_samples`` is
            folded in at :meth:`partition` time (the tighter cap wins).
        seed: Overrides ``config.seed`` when given.
    """

    name = "CLITE"

    def __init__(
        self,
        config: Optional[CLITEConfig] = None,
        seed: Optional[int] = None,
    ) -> None:
        self._config = config if config is not None else CLITEConfig()
        if seed is not None:
            from dataclasses import replace

            self._config = replace(self._config, seed=seed)

    def instrument(self, telemetry: Telemetry) -> "CLITEPolicy":
        """Thread a telemetry context into the wrapped engine."""
        from dataclasses import replace

        self._config = replace(self._config, telemetry=telemetry)
        return self

    @policy_contract
    def partition(self, node: Node, budget: NodeBudget) -> PolicyResult:
        from dataclasses import replace

        cap = budget.max_samples
        if self._config.max_samples is not None:
            cap = min(cap, self._config.max_samples)
        engine = CLITEEngine(node, replace(self._config, max_samples=cap))
        result = engine.optimize()
        trace = tuple(
            TraceEntry(
                index=r.index,
                config=r.config,
                observation=r.observation,
                score=r.score,
            )
            for r in result.samples
        )
        return PolicyResult(
            policy=self.name,
            best_config=result.best_config,
            best_observation=result.best_observation,
            best_score=result.best_score,
            qos_met=result.qos_met,
            converged=result.converged,
            trace=trace,
            infeasible_jobs=result.infeasible_jobs,
            telemetry=result.telemetry,
        )
