"""Co-location scheduling policies: CLITE and every baseline of Sec. 5."""

from .base import Policy, PolicyResult, SearchRecorder, TraceEntry
from .clite import CLITEPolicy
from .ffd import FFDPolicy, hadamard, two_level_design
from .genetic import GeneticPolicy
from .heracles import HeraclesPolicy
from .oracle import OraclePolicy
from .parties import PartiesPolicy
from .random_plus import RandomPlusPolicy
from .rsm import (
    BOX_BEHNKEN,
    CENTRAL_COMPOSITE,
    RSMPolicy,
    box_behnken_design,
    central_composite_design,
)

__all__ = [
    "BOX_BEHNKEN",
    "CENTRAL_COMPOSITE",
    "CLITEPolicy",
    "FFDPolicy",
    "GeneticPolicy",
    "HeraclesPolicy",
    "OraclePolicy",
    "PartiesPolicy",
    "Policy",
    "PolicyResult",
    "RSMPolicy",
    "RandomPlusPolicy",
    "SearchRecorder",
    "TraceEntry",
    "box_behnken_design",
    "central_composite_design",
    "hadamard",
    "two_level_design",
]
