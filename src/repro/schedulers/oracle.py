"""ORACLE — offline brute-force search (Sec. 5.1).

The ORACLE "results are obtained offline by sampling every possible
configuration and selecting the best one ... infeasible [online] due to
the need to sample thousands/millions of configurations".  Here it
queries the simulator's noise-free performance directly, enumerating
the lattice (on a stride-coarsened grid when the space is too large to
sweep exactly) and polishing the winner with an exact single-unit-
transfer hill climb.  Because the sweep is offline, it consumes no
observation windows on the node; the evaluation count is reported
separately for the Fig. 15(a) overhead comparison.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.score import ScoreFunction
from ..resources.allocation import Configuration
from ..resources.contracts import policy_contract
from ..server.node import Node, NodeBudget, Observation
from .base import Policy, PolicyResult


class OraclePolicy(Policy):
    """Exhaustive noise-free search over the configuration lattice.

    Args:
        max_enumeration: Upper bound on the number of lattice points
            swept exactly; the stride grows until the coarsened lattice
            fits.  The stride-1 sweep is exact brute force.
        hill_climb: Polish the sweep's best points by greedy single-unit
            transfers (recovers optima the coarse lattice skips).
        climb_seeds: Number of top strided points to hill-climb from;
            climbing several seeds escapes local optima of the coarse
            sweep.
        max_climb_steps: Safety cap on hill-climb moves per seed.
    """

    name = "ORACLE"

    def __init__(
        self,
        max_enumeration: int = 50_000,
        hill_climb: bool = True,
        climb_seeds: int = 5,
        max_climb_steps: int = 200,
    ) -> None:
        if max_enumeration < 1:
            raise ValueError("max_enumeration must be >= 1")
        if climb_seeds < 1:
            raise ValueError("climb_seeds must be >= 1")
        if max_climb_steps < 0:
            raise ValueError("max_climb_steps must be >= 0")
        self.max_enumeration = max_enumeration
        self.hill_climb = hill_climb
        self.climb_seeds = climb_seeds
        self.max_climb_steps = max_climb_steps

    # ------------------------------------------------------------------
    def _pick_stride(self, node: Node) -> int:
        stride = 1
        max_units = max(r.units for r in node.spec.resources)
        while (
            node.space.strided_size(stride) > self.max_enumeration
            and stride <= max_units
        ):
            stride += 1
        return stride

    @policy_contract
    def partition(self, node: Node, budget: NodeBudget) -> PolicyResult:
        """Offline sweep; ``budget`` is ignored (ORACLE is not online)."""
        del budget
        score_fn = ScoreFunction()
        evaluations = 0
        for j, job in enumerate(node.jobs):
            truth = node.true_performance(node.space.max_allocation(j))
            score_fn.record_isolation(job.name, truth)
            evaluations += 1

        def evaluate(config: Configuration) -> Tuple[float, Observation]:
            truth = node.true_performance(config)
            return score_fn(truth), truth

        stride = self._pick_stride(node)
        leaders: List[Tuple[float, Configuration, Observation]] = []
        for config in node.space.enumerate(stride=stride):
            score, truth = evaluate(config)
            evaluations += 1
            leaders.append((score, config, truth))
            leaders.sort(key=lambda item: -item[0])
            del leaders[self.climb_seeds :]
        if not leaders:  # pragma: no cover - the lattice is never empty
            raise RuntimeError("empty configuration space")
        best = leaders[0]

        if self.hill_climb:
            for seed_score, seed_config, seed_truth in leaders:
                local = (seed_score, seed_config, seed_truth)
                for _ in range(self.max_climb_steps):
                    improved = False
                    for neighbor in node.space.neighbors(local[1]):
                        score, truth = evaluate(neighbor)
                        evaluations += 1
                        if score > local[0]:
                            local = (score, neighbor, truth)
                            improved = True
                    if not improved:
                        break
                if local[0] > best[0]:
                    best = local

        score, config, truth = best
        return PolicyResult(
            policy=self.name,
            best_config=config,
            best_observation=truth,
            best_score=score,
            qos_met=truth.all_qos_met,
            converged=True,
            trace=(),
            evaluations=evaluations,
        )
