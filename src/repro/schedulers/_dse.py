"""Shared machinery for the design-space-exploration baselines.

FFD and RSM (Sec. 5.2's comparison) both follow the same recipe the
paper describes: choose a *static* set of design points over the
factors (one factor per (job, resource) dimension), observe them, fit a
response surface — the paper tried Radial Basis Functions such as the
polyharmonic (thin-plate) spline — and interpolate the optimum, which
is then evaluated.  Their weakness is exactly what the paper found:
static sampling cannot adapt to the job mix, so they need more samples
than CLITE and still land on worse configurations.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np
from scipy.interpolate import RBFInterpolator

from ..resources.allocation import Configuration, ConfigurationSpace
from ..server.node import Node
from .base import SearchRecorder


def design_to_config(
    space: ConfigurationSpace, levels: Sequence[float]
) -> Configuration:
    """Project one design row (cube-coordinate levels) onto the lattice.

    Design rows ignore the Eq. 6 column sums; the unit-cube projection's
    largest-remainder rounding repairs them, exactly like every other
    continuous-to-lattice step in the library.
    """
    return space.from_unit_cube(np.clip(np.asarray(levels, dtype=float), 0.0, 1.0))


def evaluate_design(
    recorder: SearchRecorder,
    space: ConfigurationSpace,
    rows: Sequence[Sequence[float]],
) -> List[np.ndarray]:
    """Observe every (deduplicated) design point within budget.

    Returns the cube coordinates actually sampled; scores live in the
    recorder's trace.
    """
    sampled_cubes: List[np.ndarray] = []
    seen = set()
    for row in rows:
        if recorder.exhausted:
            break
        config = design_to_config(space, row)
        key = config.flat()
        if key in seen:
            continue
        seen.add(key)
        recorder.observe(config)
        sampled_cubes.append(space.to_unit_cube(config))
    return sampled_cubes


def fit_and_probe_surface(
    recorder: SearchRecorder,
    node: Node,
    cubes: Sequence[np.ndarray],
    candidate_pool: int,
    rng: np.random.Generator,
    smoothing: float = 1e-6,
) -> None:
    """Fit a thin-plate-spline surface and evaluate its predicted optimum.

    The surface is interpolated over a random pool of valid lattice
    points; the best predicted configuration is then actually observed
    (if budget remains), mirroring how an offline DSE method would
    deploy its model's recommendation.
    """
    if recorder.exhausted or len(cubes) < 3:
        return
    x = np.asarray(cubes, dtype=float)
    y = np.array([entry.score for entry in recorder.trace[: len(cubes)]])
    try:
        surface = RBFInterpolator(
            x, y, kernel="thin_plate_spline", smoothing=smoothing
        )
    except np.linalg.LinAlgError:  # degenerate design (tiny spaces)
        return

    seen = {entry.config.flat() for entry in recorder.trace}
    pool = [node.space.random(rng) for _ in range(candidate_pool)]
    pool = [c for c in pool if c.flat() not in seen]
    if not pool:
        return
    pool_cubes = np.array([node.space.to_unit_cube(c) for c in pool])
    predicted = surface(pool_cubes)
    order = np.argsort(-predicted)
    for i in order:
        if recorder.exhausted:
            return
        recorder.observe(pool[int(i)])
        return
