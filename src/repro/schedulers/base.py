"""Common interface for co-location scheduling policies.

Every policy — CLITE and each baseline of Sec. 5.1 — receives a
:class:`~repro.server.node.Node` and a sampling budget, explores
partition configurations by observing them, and returns the best
partition it found.  All policies are judged with the same Eq. 3 score,
computed from their own noisy observations, so comparisons are
apples-to-apples.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.score import ScoreFunction
from ..resources.allocation import Configuration
from ..server.node import Node, NodeBudget, Observation
from ..telemetry import Telemetry, TelemetrySnapshot


@dataclass(frozen=True)
class TraceEntry:
    """One sampled configuration in a policy's search trace."""

    index: int
    config: Configuration
    observation: Observation
    score: float


@dataclass(frozen=True)
class PolicyResult:
    """What a policy's search produced.

    Attributes:
        policy: Name of the policy that produced this result.
        best_config: Best partition found (``None`` if nothing sampled).
        best_observation: Observation of the best partition.
        best_score: Eq. 3 score of the best partition.
        qos_met: Whether the best partition met every LC job's QoS.
        converged: Whether the policy stopped of its own accord rather
            than exhausting the budget.
        trace: All sampled configurations, in order.
        infeasible_jobs: LC jobs the policy declared impossible to
            co-locate (CLITE's bootstrap check; empty for most).
        evaluations: Configuration evaluations performed outside the
            online trace (ORACLE's offline exhaustive sweep); ``None``
            for online policies.
        telemetry: Run-scoped telemetry snapshot, for policies that ran
            with a telemetry context (see :meth:`Policy.instrument`);
            ``None`` otherwise.
    """

    policy: str
    best_config: Optional[Configuration]
    best_observation: Optional[Observation]
    best_score: float
    qos_met: bool
    converged: bool
    trace: Tuple[TraceEntry, ...]
    infeasible_jobs: Tuple[str, ...] = ()
    evaluations: Optional[int] = None
    telemetry: Optional[TelemetrySnapshot] = None

    @property
    def samples_taken(self) -> int:
        """Online observation windows consumed (offline sweeps excluded)."""
        return len(self.trace)

    @property
    def total_evaluations(self) -> int:
        """Online samples plus any offline evaluations (Fig. 15a's metric)."""
        return len(self.trace) + (self.evaluations or 0)


class Policy(ABC):
    """A co-location resource-partitioning policy."""

    #: Human-readable name, e.g. "CLITE" or "PARTIES".
    name: str = "policy"

    @abstractmethod
    def partition(self, node: Node, budget: NodeBudget) -> PolicyResult:
        """Search for a partition of ``node`` within ``budget`` samples."""

    def instrument(self, telemetry: Telemetry) -> "Policy":
        """Attach a telemetry context; returns ``self`` for chaining.

        The default is a no-op: baselines that have no internal phases
        still get observed through the node's own instrumentation when
        the caller installs the context there (see
        :func:`repro.experiments.runner.run_trial`).  Policies with
        their own phases (CLITE) override this to thread the context
        into their engine.
        """
        return self

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class SearchRecorder:
    """Bookkeeping shared by the search-style baselines.

    Tracks the trace, the incumbent best by Eq. 3 score, and enforces
    the sample budget.
    """

    def __init__(self, node: Node, budget: NodeBudget) -> None:
        self.node = node
        self.budget = budget
        self.score_fn = ScoreFunction()
        # Isolation baselines are measured offline before any
        # co-location method runs ("not specific to the co-location
        # method being evaluated", Sec. 5.1), so every policy scores
        # against the same Iso-Perf denominators without spending
        # online windows on them.
        for j, job in enumerate(node.jobs):
            self.score_fn.record_isolation(
                job.name, node.true_performance(node.space.max_allocation(j))
            )
        self.trace: List[TraceEntry] = []
        self._best: Optional[TraceEntry] = None

    @property
    def exhausted(self) -> bool:
        return len(self.trace) >= self.budget.max_samples

    @property
    def best(self) -> Optional[TraceEntry]:
        return self._best

    def observe(self, config: Configuration) -> TraceEntry:
        """Sample one configuration, score it, and record it.

        Raises:
            RuntimeError: if the budget is already exhausted.
        """
        if self.exhausted:
            raise RuntimeError("sampling budget exhausted")
        observation = self.node.observe(config)
        entry = TraceEntry(
            index=len(self.trace),
            config=config,
            observation=observation,
            score=self.score_fn(observation),
        )
        self.trace.append(entry)
        if self._best is None or entry.score > self._best.score:
            self._best = entry
        return entry

    def result(
        self,
        policy: str,
        converged: bool,
        final: Optional[TraceEntry] = None,
    ) -> PolicyResult:
        """Package the recorded search into a :class:`PolicyResult`.

        Args:
            final: Override the Eq. 3-best entry as the reported
                partition.  Feedback controllers (Heracles) end at a
                stable state rather than an argmax; their terminal
                partition is the one that would stay enacted.
        """
        best = final if final is not None else self._best
        return PolicyResult(
            policy=policy,
            best_config=best.config if best else None,
            best_observation=best.observation if best else None,
            best_score=best.score if best else 0.0,
            qos_met=bool(best and best.observation.all_qos_met),
            converged=converged,
            trace=tuple(self.trace),
        )
