"""FFD — two-level Fractional Factorial Design baseline (Sec. 5.2).

Builds a resolution-IV two-level design over the (job, resource)
factors by folding over a Sylvester-Hadamard screening design, adds
center points, observes every design point, fits a thin-plate-spline
response surface, and evaluates the surface's predicted optimum.  For
the paper's 2-LC/1-BG scenario (9 factors) this comes to ~36 runs —
the same order as the 48 the paper quotes — and, as Sec. 5.2 reports,
"2-level FFD is not able to predict the optimal configuration" because
two levels per factor cannot capture the response's curvature.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from ..resources.contracts import policy_contract
from ..server.node import Node, NodeBudget
from .base import Policy, PolicyResult, SearchRecorder
from ._dse import evaluate_design, fit_and_probe_surface


def hadamard(order: int) -> np.ndarray:
    """Sylvester-construction Hadamard matrix; ``order`` a power of two."""
    if order < 1 or order & (order - 1):
        raise ValueError(f"order must be a positive power of two, got {order}")
    h = np.array([[1.0]])
    while h.shape[0] < order:
        h = np.block([[h, h], [h, -h]])
    return h


def two_level_design(factors: int, fold_over: bool = True) -> np.ndarray:
    """A two-level screening design in ±1 coding, shape (runs, factors).

    Takes ``factors`` non-constant columns of the smallest Sylvester-
    Hadamard matrix that fits; folding over (appending the sign-flipped
    design) raises the resolution from III to IV.
    """
    if factors < 1:
        raise ValueError("need at least one factor")
    order = 2 ** math.ceil(math.log2(factors + 1))
    design = hadamard(order)[:, 1 : factors + 1]
    if fold_over:
        design = np.vstack([design, -design])
    return design


class FFDPolicy(Policy):
    """Fractional-factorial sampling + RBF surface interpolation.

    Args:
        low: Cube coordinate the −1 level maps to.
        high: Cube coordinate the +1 level maps to.
        center_points: Replicated mid-level runs appended to the design.
        candidate_pool: Lattice points scored by the fitted surface when
            hunting its optimum.
        seed: Random seed (pool sampling only; the design is static).
    """

    name = "FFD"

    def __init__(
        self,
        low: float = 0.15,
        high: float = 0.85,
        center_points: int = 4,
        candidate_pool: int = 2000,
        seed: Optional[int] = None,
    ) -> None:
        if not 0 <= low < high <= 1:
            raise ValueError("need 0 <= low < high <= 1")
        if center_points < 0:
            raise ValueError("center_points must be >= 0")
        self.low = low
        self.high = high
        self.center_points = center_points
        self.candidate_pool = candidate_pool
        self.seed = seed

    def design_rows(self, n_dims: int) -> List[np.ndarray]:
        """The full design in cube coordinates (levels already mapped)."""
        coded = two_level_design(n_dims)
        span = self.high - self.low
        rows = [self.low + (row + 1.0) / 2.0 * span for row in coded]
        rows.extend(np.full(n_dims, 0.5) for _ in range(self.center_points))
        return rows

    @policy_contract
    def partition(self, node: Node, budget: NodeBudget) -> PolicyResult:
        rng = np.random.default_rng(self.seed)
        recorder = SearchRecorder(node, budget)
        cubes = evaluate_design(
            recorder, node.space, self.design_rows(node.space.n_dims)
        )
        fit_and_probe_surface(
            recorder, node, cubes, self.candidate_pool, rng
        )
        return recorder.result(self.name, converged=True)
