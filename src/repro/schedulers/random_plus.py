"""RAND+ — random search with Euclidean de-duplication (Sec. 5.1).

RAND+ draws configurations uniformly at random and "selectively
discards a new sample if the Euclidean distance between the selected
configuration and existing ones [is] smaller than a threshold", so its
preset sample budget is spent on well-spread points.  Like GENETIC, it
collects a fixed number of samples chosen to exceed CLITE's average
overhead, which is why both sit at the top of Fig. 15(a).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..resources.allocation import Configuration
from ..resources.contracts import policy_contract
from ..server.node import Node, NodeBudget
from .base import Policy, PolicyResult, SearchRecorder

#: Default preset sample count (set above CLITE's average, per Sec. 5.1).
DEFAULT_PRESET_SAMPLES = 80


class RandomPlusPolicy(Policy):
    """Stochastic search over the configuration lattice.

    Args:
        preset_samples: Fixed number of configurations to sample.
        min_distance: Euclidean distance (in raw units) below which a
            draw is considered a duplicate and discarded.
        max_draw_attempts: Draws attempted per accepted sample before
            the distance filter is waived (keeps small spaces from
            deadlocking the search).
        seed: Random seed.
    """

    name = "RAND+"

    def __init__(
        self,
        preset_samples: int = DEFAULT_PRESET_SAMPLES,
        min_distance: float = 2.0,
        max_draw_attempts: int = 50,
        seed: Optional[int] = None,
    ) -> None:
        if preset_samples < 1:
            raise ValueError("preset_samples must be >= 1")
        if min_distance < 0:
            raise ValueError("min_distance must be >= 0")
        if max_draw_attempts < 1:
            raise ValueError("max_draw_attempts must be >= 1")
        self.preset_samples = preset_samples
        self.min_distance = min_distance
        self.max_draw_attempts = max_draw_attempts
        self.seed = seed

    def _draw(
        self,
        node: Node,
        rng: np.random.Generator,
        accepted: List[Configuration],
    ) -> Configuration:
        for _ in range(self.max_draw_attempts):
            candidate = node.space.random(rng)
            if all(
                candidate.distance(existing) >= self.min_distance
                for existing in accepted
            ):
                return candidate
        return node.space.random(rng)

    @policy_contract
    def partition(self, node: Node, budget: NodeBudget) -> PolicyResult:
        rng = np.random.default_rng(self.seed)
        recorder = SearchRecorder(node, budget)
        accepted: List[Configuration] = []
        target = min(self.preset_samples, budget.max_samples)
        for _ in range(target):
            config = self._draw(node, rng, accepted)
            accepted.append(config)
            recorder.observe(config)
        return recorder.result(self.name, converged=True)
